#ifndef HGDB_WAVEFORM_INDEXED_WAVEFORM_H
#define HGDB_WAVEFORM_INDEXED_WAVEFORM_H

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/checked_mutex.h"
#include "obs/metrics.h"
#include "waveform/block_cache.h"
#include "waveform/block_codec.h"
#include "waveform/index_format.h"
#include "waveform/storage_backend.h"
#include "waveform/waveform_source.h"

namespace hgdb::waveform {

/// Reader-side knobs: cache size and I/O strategy.
struct WaveformOpenOptions {
  size_t cache_blocks = kDefaultCacheBlocks;
  /// kAuto maps the file when the platform supports it (hot blocks skip
  /// the read syscall; the OS page cache evicts cold ones) and falls back
  /// to buffered positional reads otherwise.
  IoMode io_mode = IoMode::kAuto;
};

/// WaveformSource over a .wvx index (v1-v4). `path` may name either a
/// single-file index or a v4 shard manifest — the constructor sniffs the
/// magic, so callers never distinguish the two. Opening reads only the
/// header and the footer of every file involved (signal table + block
/// directory); change payloads stream in on demand through an LRU block
/// cache, fetched by a pluggable StorageBackend per shard and decoded by
/// each signal's BlockCodec. A cycle seek is O(log blocks + log
/// block_capacity).
///
/// Sharded opens keep ONE BlockCache for the whole dump: `cache_blocks`
/// is a global residency budget shared by every shard, not a per-shard
/// allowance, so memory stays bounded no matter how many shard files the
/// manifest names. Cache keys are global canonical signal indexes, which
/// are unique across shards by construction.
///
/// v3+ alias dedup: signals declared as id-code aliases share one change
/// stream on disk and one set of cache entries in memory — queries on any
/// aliased name are served through the canonical signal's directory.
///
/// Thread-safe for concurrent queries (one mutex around the cache + read
/// scratch; the debugger runtime evaluates breakpoint batches from a
/// pool).
class IndexedWaveform final : public WaveformSource {
 public:
  static constexpr size_t kDefaultCacheBlocks = waveform::kDefaultCacheBlocks;

  /// Throws WvxError (a std::runtime_error) on missing file, bad
  /// magic/version, a truncated (unfinished) index, or corrupt metadata.
  explicit IndexedWaveform(const std::string& path,
                           size_t cache_blocks = kDefaultCacheBlocks);
  IndexedWaveform(const std::string& path, const WaveformOpenOptions& options);
  ~IndexedWaveform() override;

  // -- WaveformSource -----------------------------------------------------------
  [[nodiscard]] size_t signal_count() const override { return signals_.size(); }
  [[nodiscard]] const SignalInfo& signal(size_t index) const override {
    return signals_[index].info;
  }
  [[nodiscard]] std::optional<size_t> signal_index(
      const std::string& hier_name) const override;
  [[nodiscard]] size_t canonical_index(size_t index) const override {
    return signals_[index].canonical;
  }
  [[nodiscard]] uint64_t max_time() const override { return max_time_; }
  [[nodiscard]] common::BitVector value_at(size_t index,
                                           uint64_t time) const override;
  [[nodiscard]] std::vector<uint64_t> rising_edges(size_t index) const override;

  // -- introspection ------------------------------------------------------------
  [[nodiscard]] const std::string& path() const { return path_; }
  /// Directory of the signal's change stream (the canonical signal's, for
  /// aliases).
  [[nodiscard]] const std::vector<BlockInfo>& blocks(size_t index) const {
    return signals_[signals_[index].canonical].blocks;
  }
  [[nodiscard]] CacheStats cache_stats() const;
  [[nodiscard]] size_t cache_capacity() const { return cache_.capacity(); }
  [[nodiscard]] uint64_t total_blocks() const { return total_blocks_; }
  /// On-disk format version of the opened file (1..4; the max across
  /// shards for a manifest open).
  [[nodiscard]] uint32_t version() const { return version_; }
  /// File-default block encoding ("fixed" / "delta"); v4 signals may
  /// override individually — see signal_codec_name().
  [[nodiscard]] const char* codec_name() const { return codec_->name(); }
  /// Block encoding of one signal's stream ("fixed" / "delta" / "rle").
  [[nodiscard]] const char* signal_codec_name(size_t index) const {
    return signals_[signals_[index].canonical].codec->name();
  }
  /// I/O strategy actually in use ("buffered" / "mmap").
  [[nodiscard]] const char* io_kind() const { return io_kind_; }
  /// Signals that are aliases of another signal's change stream.
  [[nodiscard]] size_t alias_count() const { return alias_count_; }
  /// True when every opened file carries per-block CRC32s (v2+ flag).
  [[nodiscard]] bool has_block_checksums() const { return has_checksums_; }
  /// True when `path` named a shard manifest rather than a single file.
  [[nodiscard]] bool sharded() const { return sharded_; }
  /// Shard files backing this dump (just `path` for single-file opens).
  [[nodiscard]] const std::vector<std::string>& shard_paths() const {
    return shard_paths_;
  }
  [[nodiscard]] size_t shard_count() const { return shard_paths_.size(); }

  /// First unreadable/corrupt block, if any. Loads every block once
  /// (through the cache), verifying checksums when present.
  struct BlockFault {
    std::string signal;
    size_t block_index = 0;
    uint64_t file_offset = 0;
    WvxFault fault = WvxFault::kIo;
    std::string message;
  };
  [[nodiscard]] std::optional<BlockFault> verify_blocks() const;

 private:
  BlockCache::BlockPtr load_block(size_t signal_index, size_t block_index) const
      HGDB_REQUIRES(mutex_);
  /// Parses one shard's header + footer, appending its signals to the
  /// global table (canonical indexes rebased by the current table size).
  /// Constructor-only; takes the (uncontended) lock's annotation so the
  /// thread-safety analysis covers the guarded members it fills in.
  void load_shard(uint32_t shard_index) HGDB_REQUIRES(mutex_);

  /// Global-registry mirrors of the per-instance CacheStats, resolved
  /// once at open. Readers have no natural owner with a registry, so the
  /// `waveform.*` metrics aggregate across every open index in the
  /// process; per-instance numbers stay available via cache_stats().
  /// hits/misses/evictions are monotonic counters and add cleanly; the
  /// resident gauge aggregates via per-instance deltas (resident_reported_)
  /// so concurrent readers sharing the registry never clobber each other.
  struct ObsMetrics {
    obs::Counter* hits = nullptr;
    obs::Counter* misses = nullptr;
    obs::Counter* evictions = nullptr;
    obs::Gauge* resident = nullptr;
    obs::Histogram* load_ns = nullptr;  ///< miss-path read+decode latency
  };

  std::string path_;
  std::vector<IndexedSignal> signals_;
  std::map<std::string, size_t> by_name_;
  std::vector<std::string> shard_paths_;
  /// Per shard: does the file carry per-block CRC32s? (Shards are written
  /// together, but a reader must not trust that they agree.)
  std::vector<bool> shard_checksums_;
  uint64_t max_time_ = 0;
  uint64_t total_blocks_ = 0;
  uint32_t version_ = 0;
  size_t alias_count_ = 0;
  bool has_checksums_ = true;
  bool sharded_ = false;
  const BlockCodec* codec_ = nullptr;
  const char* io_kind_ = "buffered";

  mutable common::WaveformMutex mutex_{"waveform::reader"};
  /// One StorageBackend per shard file (exactly one for single-file
  /// opens), indexed by IndexedSignal::shard.
  mutable std::vector<std::unique_ptr<StorageBackend>> shards_
      HGDB_GUARDED_BY(mutex_);
  /// buffered-read landing zone
  mutable std::string scratch_ HGDB_GUARDED_BY(mutex_);
  mutable BlockCache cache_ HGDB_GUARDED_BY(mutex_);
  /// Last residency this instance reported into the global gauge; the
  /// gauge moves by deltas so multiple open readers aggregate instead of
  /// overwriting one another (the destructor settles the balance).
  mutable int64_t resident_reported_ HGDB_GUARDED_BY(mutex_) = 0;
  std::unique_ptr<ObsMetrics> obs_;
};

}  // namespace hgdb::waveform

#endif  // HGDB_WAVEFORM_INDEXED_WAVEFORM_H
