#include "waveform/vcd_stream_parser.h"

#include <cctype>
#include <charconv>
#include <fstream>
#include <stdexcept>

namespace hgdb::waveform {

using common::BitVector;

namespace {

bool is_vcd_space(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' ||
         c == '\v';
}

/// Maps VCD value characters to two-state bits ('x'/'z'/'u'/'-' -> 0).
bool bit_of(char c) { return c == '1'; }

bool is_scalar_value_char(char c) {
  switch (c) {
    case '0':
    case '1':
    case 'x':
    case 'X':
    case 'z':
    case 'Z':
      return true;
    default:
      return false;
  }
}

BitVector parse_vector_value(std::string_view text, uint32_t width) {
  BitVector value(width, 0);
  // Binary, MSB first, possibly shorter than width.
  uint32_t bit = 0;
  for (size_t i = text.size(); i-- > 0 && bit < width; ++bit) {
    if (bit_of(text[i])) value.set_bit(bit, true);
  }
  return value;
}

uint64_t parse_u64(std::string_view text, const char* what) {
  uint64_t out = 0;
  auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), out);
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    throw std::runtime_error(std::string("vcd: malformed ") + what + " '" +
                             std::string(text) + "'");
  }
  return out;
}

}  // namespace

BitVector parse_vcd_value(std::string_view text, bool scalar, uint32_t width) {
  if (scalar) {
    return BitVector(width, !text.empty() && bit_of(text[0]) ? 1 : 0);
  }
  return parse_vector_value(text, width);
}

void VcdStreamParser::malformed(const std::string& what) {
  throw std::runtime_error("vcd: " + what);
}

void VcdStreamParser::feed(std::string_view chunk) {
  size_t start = 0;
  const size_t size = chunk.size();
  for (size_t i = 0; i < size; ++i) {
    if (!is_vcd_space(chunk[i])) continue;
    if (i > start || !partial_.empty()) {
      if (!partial_.empty()) {
        partial_.append(chunk.substr(start, i - start));
        if (!partial_.empty()) handle_token(partial_);
        partial_.clear();
      } else if (i > start) {
        handle_token(chunk.substr(start, i - start));
      }
    }
    start = i + 1;
  }
  if (start < size) partial_.append(chunk.substr(start));
}

void VcdStreamParser::finish() {
  if (!partial_.empty()) {
    handle_token(partial_);
    partial_.clear();
  }
  if (state_ == State::kDirective) {
    malformed("unterminated directive '" + directive_ + "'");
  }
  if (state_ != State::kTop) malformed("truncated value change at end of input");
  sink_->on_finish(max_time_);
}

void VcdStreamParser::handle_token(std::string_view token) {
  switch (state_) {
    case State::kDirective:
      if (token == "$end") {
        handle_directive_end();
        state_ = State::kTop;
      } else {
        args_.emplace_back(token);
      }
      return;
    case State::kVectorCode: {
      emit_change(token, pending_vector_, /*scalar=*/false, '0');
      pending_vector_.clear();
      state_ = State::kTop;
      return;
    }
    case State::kSkipCode:
      // Id code of a real/string change: skipped, not validated (the code
      // may belong to a $var kind we never register).
      state_ = State::kTop;
      return;
    case State::kTop:
      break;
  }

  if (token[0] == '$') {
    if (token == "$end") return;  // closes a $dumpvars/$dumpall section
    if (token == "$dumpvars" || token == "$dumpall" || token == "$dumpon" ||
        token == "$dumpoff") {
      return;  // values follow; handled by normal value parsing
    }
    directive_ = std::string(token.substr(1));
    args_.clear();
    state_ = State::kDirective;
    return;
  }
  if (token[0] == '#') {
    now_ = parse_u64(token.substr(1), "timestamp");
    if (now_ > max_time_) max_time_ = now_;
    sink_->on_time(now_);
    return;
  }
  if (in_definitions_) return;  // stray tokens before $enddefinitions
  handle_value_change(token);
}

void VcdStreamParser::handle_directive_end() {
  if (directive_ == "scope") {
    if (args_.size() < 2) malformed("malformed $scope");
    scope_stack_.push_back(args_[1]);
  } else if (directive_ == "upscope") {
    if (scope_stack_.empty()) malformed("upscope underflow");
    scope_stack_.pop_back();
  } else if (directive_ == "var") {
    // $var <kind> <width> <code> <name> [<range>] $end
    if (args_.size() < 4) malformed("malformed $var");
    const std::string& kind = args_[0];
    if (kind == "real" || kind == "realtime" || kind == "string") {
      // These carry r/s value changes, which are skipped; do not register
      // a signal. `event` vars stay registered: their triggers use scalar
      // syntax ("1<code>") and must keep resolving.
      return;
    }
    SignalInfo info;
    info.width = static_cast<uint32_t>(parse_u64(args_[1], "$var width"));
    if (info.width == 0) malformed("zero-width $var '" + args_[3] + "'");
    std::string full;
    for (const auto& scope : scope_stack_) full += scope + ".";
    full += args_[3];
    info.hier_name = std::move(full);
    const size_t id = widths_.size();
    // Aliases: every $var sharing one id code names the same net. The
    // first declaration is the canonical owner of the change stream;
    // later ones with the same width are announced as aliases and never
    // receive on_change(). A re-declaration at a *different* width is not
    // a pure alias (its values re-parse at its own width), so it keeps
    // the legacy per-declaration fan-out instead of sharing the stream.
    auto& ids = code_to_ids_[args_[2]];
    ids.push_back(id);
    widths_.push_back(info.width);
    sink_->on_signal(id, info);
    if (ids.size() > 1 && info.width == widths_[ids.front()]) {
      sink_->on_alias(id, ids.front());
    }
  } else if (directive_ == "enddefinitions") {
    in_definitions_ = false;
    sink_->on_definitions_done();
  }
  // $date, $version, $timescale, $comment, ...: contents ignored.
}

void VcdStreamParser::handle_value_change(std::string_view token) {
  const char head = token[0];
  if (head == 'b' || head == 'B') {
    pending_vector_ = std::string(token.substr(1));
    state_ = State::kVectorCode;
    return;
  }
  if (head == 'r' || head == 'R') {
    state_ = State::kSkipCode;  // real value: "r<float> <code>"
    return;
  }
  if (head == 's' || head == 'S') {
    state_ = State::kSkipCode;  // string value: "s<chars> <code>"
    return;
  }
  if (is_scalar_value_char(head)) {
    if (token.size() < 2) malformed("scalar change without id code");
    emit_change(token.substr(1), {}, /*scalar=*/true, head);
    return;
  }
  malformed("unexpected token '" + std::string(token) + "'");
}

void VcdStreamParser::emit_change(std::string_view code,
                                  std::string_view value_text, bool scalar,
                                  char scalar_char) {
  auto it = code_to_ids_.find(code);
  if (it == code_to_ids_.end()) {
    malformed("unknown id code '" + std::string(code) + "'");
  }
  // One change per code for the canonical id and its same-width aliases
  // (announced at declaration time; they share the canonical stream).
  // Mismatched-width re-declarations were not grouped, so they receive
  // their own change, parsed at their own width — the legacy fan-out.
  const auto& ids = it->second;
  const uint32_t canonical_width = widths_[ids.front()];
  for (size_t i = 0; i < ids.size(); ++i) {
    const size_t id = ids[i];
    const uint32_t width = widths_[id];
    if (i != 0 && width == canonical_width) continue;  // alias: deduped
    if (text_changes_) {
      sink_->on_change_text(
          id, now_, scalar ? std::string_view(&scalar_char, 1) : value_text,
          scalar);
    } else if (scalar) {
      sink_->on_change(id, now_, BitVector(width, bit_of(scalar_char) ? 1 : 0));
    } else {
      sink_->on_change(id, now_, parse_vector_value(value_text, width));
    }
  }
}

void VcdStreamParser::parse_file(const std::string& path, VcdEventSink& sink,
                                 size_t chunk_size) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("cannot open VCD file '" + path + "'");
  }
  VcdStreamParser parser(sink);
  std::vector<char> buffer(chunk_size == 0 ? kDefaultChunkSize : chunk_size);
  while (in) {
    in.read(buffer.data(), static_cast<std::streamsize>(buffer.size()));
    const auto got = in.gcount();
    if (got > 0) parser.feed({buffer.data(), static_cast<size_t>(got)});
  }
  parser.finish();
}

void VcdStreamParser::parse_text(std::string_view text, VcdEventSink& sink) {
  VcdStreamParser parser(sink);
  parser.feed(text);
  parser.finish();
}

}  // namespace hgdb::waveform
