#ifndef HGDB_WAVEFORM_STORAGE_BACKEND_H
#define HGDB_WAVEFORM_STORAGE_BACKEND_H

#include <cstdint>
#include <memory>
#include <string>

namespace hgdb::waveform {

/// How an IndexedWaveform reads its file.
enum class IoMode : uint8_t {
  kAuto,      ///< mmap when the platform supports it, else buffered
  kBuffered,  ///< positional reads (pread) into caller buffers
  kMmap,      ///< one read-only mapping; views are pointers into it
};

[[nodiscard]] const char* to_string(IoMode mode);

/// Read-side I/O seam of the waveform store. The reader, the verifier and
/// the cache-miss path are all written against this interface, so the I/O
/// strategy can change without touching any of them:
///
///  - BufferedStorage  pread() into a caller-owned scratch buffer — one
///                     syscall per cold block, no address-space cost.
///  - MmapStorage      the whole file mapped read-only; view() is pointer
///                     arithmetic, hot blocks skip the read syscall and
///                     the OS page cache handles eviction for cold ones.
///
/// Implementations are safe for concurrent view() calls on distinct
/// scratch buffers (pread is positionless; the mapping is immutable).
class StorageBackend {
 public:
  virtual ~StorageBackend() = default;

  /// Which strategy this backend implements ("buffered" / "mmap").
  [[nodiscard]] virtual const char* kind() const = 0;
  [[nodiscard]] virtual uint64_t size() const = 0;

  /// `length` bytes starting at `offset`. Zero-copy backends return a
  /// pointer into their mapping and leave `scratch` untouched; copying
  /// backends fill `scratch` and return scratch.data(). The pointer stays
  /// valid until the backend is destroyed (mmap) or `scratch` is next
  /// modified (buffered). Throws WvxError (kTruncatedBlock / kIo) when the
  /// range extends past EOF or the read fails.
  virtual const char* view(uint64_t offset, size_t length,
                           std::string& scratch) = 0;
};

/// Opens `path` read-only with the requested strategy. kAuto resolves to
/// mmap where available (empty files fall back to buffered: mmap of zero
/// bytes is ill-defined). Throws WvxError (kNotFound / kIo).
std::unique_ptr<StorageBackend> open_storage(const std::string& path,
                                             IoMode mode = IoMode::kAuto);

/// Write-side I/O seam — the mirror of StorageBackend for producers. The
/// IndexWriter appends block payloads and the directory through this
/// interface and patches the fixed-position header at the end, so the
/// write strategy is selectable per file:
///
///  - BufferedWriteStorage  positional pwrite() per call — no address-
///                          space cost, write syscall per block.
///  - MmapWriteStorage      the file grown in chunks (ftruncate) and
///                          mapped read-write; append is a memcpy, the
///                          header patch never needs a seek, and finish()
///                          trims the file back to its logical size.
///
/// Implementations serialize internally (one annotated mutex), so a
/// producer may append from a worker while another thread polls offset().
/// Bytes are durable in page cache after finish(); like the ofstream path
/// this replaces, no fsync is issued.
class WriteBackend {
 public:
  virtual ~WriteBackend() = default;

  /// Which strategy this backend implements ("buffered" / "mmap").
  [[nodiscard]] virtual const char* kind() const = 0;
  /// Current append position == logical bytes written so far.
  [[nodiscard]] virtual uint64_t offset() const = 0;

  /// Appends `length` bytes at the current offset. Throws WvxError(kIo).
  virtual void append(const char* data, size_t length) = 0;

  /// Overwrites `length` bytes at an absolute position without moving the
  /// append offset (header back-patching). The range must lie within the
  /// bytes already appended. Throws WvxError(kIo).
  virtual void write_at(uint64_t offset, const char* data, size_t length) = 0;

  /// Flushes, trims the file to offset() bytes and closes it. Must be the
  /// last call; throws WvxError(kIo) if any write failed to land.
  virtual void finish() = 0;
};

/// Creates/truncates `path` for writing with the requested strategy.
/// kAuto resolves to mmap where available, else buffered; kMmap throws
/// WvxError(kIo) when mapping is unsupported. Throws WvxError(kIo) when
/// the file cannot be created.
std::unique_ptr<WriteBackend> open_write_storage(const std::string& path,
                                                 IoMode mode = IoMode::kAuto);

}  // namespace hgdb::waveform

#endif  // HGDB_WAVEFORM_STORAGE_BACKEND_H
