#ifndef HGDB_WAVEFORM_STORAGE_BACKEND_H
#define HGDB_WAVEFORM_STORAGE_BACKEND_H

#include <cstdint>
#include <memory>
#include <string>

namespace hgdb::waveform {

/// How an IndexedWaveform reads its file.
enum class IoMode : uint8_t {
  kAuto,      ///< mmap when the platform supports it, else buffered
  kBuffered,  ///< positional reads (pread) into caller buffers
  kMmap,      ///< one read-only mapping; views are pointers into it
};

[[nodiscard]] const char* to_string(IoMode mode);

/// Read-side I/O seam of the waveform store. The reader, the verifier and
/// the cache-miss path are all written against this interface, so the I/O
/// strategy can change without touching any of them:
///
///  - BufferedStorage  pread() into a caller-owned scratch buffer — one
///                     syscall per cold block, no address-space cost.
///  - MmapStorage      the whole file mapped read-only; view() is pointer
///                     arithmetic, hot blocks skip the read syscall and
///                     the OS page cache handles eviction for cold ones.
///
/// Implementations are safe for concurrent view() calls on distinct
/// scratch buffers (pread is positionless; the mapping is immutable).
class StorageBackend {
 public:
  virtual ~StorageBackend() = default;

  /// Which strategy this backend implements ("buffered" / "mmap").
  [[nodiscard]] virtual const char* kind() const = 0;
  [[nodiscard]] virtual uint64_t size() const = 0;

  /// `length` bytes starting at `offset`. Zero-copy backends return a
  /// pointer into their mapping and leave `scratch` untouched; copying
  /// backends fill `scratch` and return scratch.data(). The pointer stays
  /// valid until the backend is destroyed (mmap) or `scratch` is next
  /// modified (buffered). Throws WvxError (kTruncatedBlock / kIo) when the
  /// range extends past EOF or the read fails.
  virtual const char* view(uint64_t offset, size_t length,
                           std::string& scratch) = 0;
};

/// Opens `path` read-only with the requested strategy. kAuto resolves to
/// mmap where available (empty files fall back to buffered: mmap of zero
/// bytes is ill-defined). Throws WvxError (kNotFound / kIo).
std::unique_ptr<StorageBackend> open_storage(const std::string& path,
                                             IoMode mode = IoMode::kAuto);

}  // namespace hgdb::waveform

#endif  // HGDB_WAVEFORM_STORAGE_BACKEND_H
