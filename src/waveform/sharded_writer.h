#ifndef HGDB_WAVEFORM_SHARDED_WRITER_H
#define HGDB_WAVEFORM_SHARDED_WRITER_H

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/checked_mutex.h"
#include "common/spsc_queue.h"
#include "waveform/index_writer.h"
#include "waveform/manifest.h"
#include "waveform/vcd_stream_parser.h"

namespace hgdb::waveform {

/// Knobs for the sharded VCD -> .wvx conversion pipeline.
struct ShardedConvertOptions {
  /// Per-shard writer options (version, codec, block capacity, ...).
  IndexWriterOptions index;
  /// Writer worker threads. 0 means hardware_concurrency; capped at the
  /// shard count (a shard is single-writer). 1 runs fully synchronous —
  /// no threads, no queues.
  uint32_t jobs = 0;
  /// true: split the dump into per-scope shard files behind a manifest.
  /// false: write one single-file index (the classic layout).
  bool shard_by_scope = true;
};

struct ShardedConvertResult {
  size_t signals = 0;
  uint32_t shards = 0;  ///< shard files written (0 for a single-file index)
  uint32_t jobs = 1;    ///< writer workers actually used
};

/// VcdEventSink that splits a dump into per-scope shard files plus a
/// manifest at `path`. Shard k is `<stem>.shard<k>.wvx`, a complete
/// standalone index holding every signal whose *canonical* declaration's
/// top-level scope hashed to it (aliases always follow their canonical
/// signal, so a change stream never spans shards).
///
/// Conversion parallelism: with jobs > 1 the parser thread only
/// tokenizes, resolves id codes and routes — the expensive work per
/// change (digit parsing, block encoding, CRC, file writes) happens on
/// writer workers, one bounded SPSC queue each (see common::SpscQueue for
/// the backpressure and close protocol; worker failures surface through a
/// PipelineMutex-guarded slot, rank kWaveformPipeline). Each worker owns
/// the shards with index % workers == its id, so every shard stays
/// single-writer and needs no locking of its own.
///
/// Output is byte-identical for every jobs value: shard assignment
/// depends only on declaration order, each shard sees the same change
/// subsequence in the same order through its FIFO queue, and the v4 codec
/// auto-selection is a pure function of that stream.
class ShardedIndexWriter final : public VcdEventSink {
 public:
  ShardedIndexWriter(const std::string& path,
                     const ShardedConvertOptions& options);
  /// Joins any workers still running (abandoned conversion).
  ~ShardedIndexWriter() override;

  ShardedIndexWriter(const ShardedIndexWriter&) = delete;
  ShardedIndexWriter& operator=(const ShardedIndexWriter&) = delete;

  // -- VcdEventSink -------------------------------------------------------------
  void on_signal(size_t id, const SignalInfo& info) override;
  void on_alias(size_t id, size_t canonical_id) override;
  void on_definitions_done() override;
  [[nodiscard]] bool wants_text_changes() const override { return true; }
  void on_change_text(size_t id, uint64_t time, std::string_view text,
                      bool scalar) override;
  void on_change(size_t id, uint64_t time,
                 const common::BitVector& value) override;
  void on_finish(uint64_t max_time) override;

  [[nodiscard]] size_t signal_count() const { return slots_.size(); }
  [[nodiscard]] uint32_t shard_count() const {
    return static_cast<uint32_t>(writers_.size());
  }
  /// Workers the pipeline ran with (1 when synchronous).
  [[nodiscard]] uint32_t jobs() const { return jobs_; }
  [[nodiscard]] bool finished() const { return finished_; }

  /// Scopes get shards round-robin in first-appearance order, capped so a
  /// pathological scope count doesn't explode into thousands of files.
  static constexpr uint32_t kMaxShards = 64;

 private:
  /// One routed value change in flight from the parser to a worker.
  struct Change {
    uint64_t time = 0;
    uint32_t shard = 0;
    uint32_t local = 0;
    uint32_t width = 0;
    bool scalar = false;
    bool has_value = false;    ///< value already parsed (on_change path)
    std::string text;          ///< raw digits when !has_value
    common::BitVector value;
  };

  struct Def {
    SignalInfo info;
    bool is_alias = false;
    size_t canonical = 0;  ///< global id, valid when is_alias
  };

  /// Where a global signal id landed: which shard, which local id.
  struct Slot {
    uint32_t shard = 0;
    uint32_t local = 0;
  };

  void route(Change& change);
  void apply(Change& change);
  void worker_loop(uint32_t worker);
  void join_workers();
  [[noreturn]] void rethrow_worker_failure();

  std::string path_;
  ShardedConvertOptions options_;
  uint32_t jobs_ = 1;
  std::vector<Def> defs_;
  std::vector<Slot> slots_;
  std::vector<std::string> shard_names_;  ///< manifest-relative basenames
  std::vector<std::unique_ptr<IndexWriter>> writers_;
  std::vector<std::unique_ptr<common::SpscQueue<Change>>> queues_;
  std::vector<std::thread> workers_;
  /// Recycled message: pop-side std::swap donates string capacity back.
  Change scratch_;
  bool finished_ = false;

  common::PipelineMutex error_mutex_{"waveform::pipeline"};
  std::exception_ptr worker_error_ HGDB_GUARDED_BY(error_mutex_);
};

/// Streams `vcd_path` into a sharded (or single-file) index at
/// `index_path` using `options.jobs` writer workers.
ShardedConvertResult convert_vcd_to_sharded_index(
    const std::string& vcd_path, const std::string& index_path,
    const ShardedConvertOptions& options = {});

}  // namespace hgdb::waveform

#endif  // HGDB_WAVEFORM_SHARDED_WRITER_H
