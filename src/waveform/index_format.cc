#include "waveform/index_format.h"

namespace hgdb::waveform {

const char* to_string(WvxFault fault) {
  switch (fault) {
    case WvxFault::kNotFound: return "not-found";
    case WvxFault::kBadMagic: return "bad-magic";
    case WvxFault::kBadVersion: return "unsupported-version";
    case WvxFault::kNeverFinalized: return "never-finalized";
    case WvxFault::kTruncatedDirectory: return "truncated-directory";
    case WvxFault::kTruncatedBlock: return "truncated-block";
    case WvxFault::kCorrupt: return "corrupt-metadata";
    case WvxFault::kChecksum: return "checksum-mismatch";
    case WvxFault::kIo: return "io-error";
  }
  return "unknown";
}

}  // namespace hgdb::waveform
