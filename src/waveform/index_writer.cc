#include "waveform/index_writer.h"

#include <cstring>
#include <stdexcept>

#include "common/crc32.h"
#include "waveform/storage_backend.h"

namespace hgdb::waveform {

namespace {

void put_u32(WriteBackend& out, uint32_t value) {
  char bytes[4];
  for (int i = 0; i < 4; ++i) bytes[i] = static_cast<char>(value >> (8 * i));
  out.append(bytes, 4);
}

void put_u64(WriteBackend& out, uint64_t value) {
  char bytes[8];
  for (int i = 0; i < 8; ++i) bytes[i] = static_cast<char>(value >> (8 * i));
  out.append(bytes, 8);
}

void put_u64_at(char* dest, uint64_t value) {
  for (int i = 0; i < 8; ++i) dest[i] = static_cast<char>(value >> (8 * i));
}

/// v4 auto-selection: a 1-bit stream whose first flushed block is
/// dominated by toggles (>= 90% of entries flip the previous value,
/// starting from the per-block baseline 0) is clock-like — the rle codec
/// collapses it to a few bytes per block. The sample must be large enough
/// to mean something; tiny first blocks keep the file default.
constexpr size_t kAutoCodecMinSample = 16;

bool is_clock_like(const std::vector<common::BitVector>& values) {
  if (values.size() < kAutoCodecMinSample) return false;
  size_t toggles = 0;
  bool previous = false;
  for (const auto& value : values) {
    const bool current = value.to_bool();
    if (current != previous) ++toggles;
    previous = current;
  }
  return toggles * 10 >= values.size() * 9;
}

}  // namespace

IndexWriter::IndexWriter(const std::string& path, IndexWriterOptions options)
    : path_(path), options_(options) {
  if (options_.block_capacity == 0) options_.block_capacity = 1;
  if (options_.version != 2 && options_.version != 3 &&
      options_.version != kWvxVersion) {
    throw std::invalid_argument("wvx: writer supports versions 2.." +
                                std::to_string(kWvxVersion) + ", not " +
                                std::to_string(options_.version));
  }
  if (options_.version < 3) {
    // The v2 container has neither a codec flag nor an alias table.
    options_.delta_codec = false;
    options_.dedup_aliases = false;
  }
  // Per-signal codec bytes exist only in v4 footers.
  if (options_.version < 4) options_.auto_codec = false;
  codec_ = options_.delta_codec ? &delta_codec() : &fixed_codec();
  // open_write_storage throws WvxError; keep the historical error type
  // for callers that catch runtime_error on open failures (WvxError
  // derives from it).
  out_ = open_write_storage(path, options_.io_mode);
  uint32_t flags = 0;
  if (options_.block_checksums) flags |= kWvxFlagBlockChecksums;
  if (options_.delta_codec) flags |= kWvxFlagDeltaCodec;
  // Header with a placeholder footer offset; patched in on_finish().
  put_u32(*out_, kWvxMagic);
  put_u32(*out_, options_.version);
  put_u32(*out_, flags);
  put_u64(*out_, 0);  // footer_offset
  put_u64(*out_, 0);  // max_time
  put_u64(*out_, 0);  // signal_count
}

IndexWriter::~IndexWriter() {
  // Abandoned (exception unwound before on_finish): leave the truncated
  // file; readers reject it via the zero footer offset.
}

void IndexWriter::on_signal(size_t id, const SignalInfo& info) {
  if (id != signals_.size()) {
    throw std::runtime_error("wvx: non-contiguous signal id");
  }
  IndexedSignal signal;
  signal.info = info;
  signal.value_bytes = wvx_value_bytes(info.width);
  signal.canonical = id;
  // Auto-selected codecs resolve lazily at the first flush (the choice
  // needs data); everything else uses the file default from day one.
  if (!(options_.auto_codec && info.width == 1)) signal.codec = codec_;
  signals_.push_back(std::move(signal));
  pending_.emplace_back();
  fanout_.emplace_back();
}

void IndexWriter::on_alias(size_t id, size_t canonical_id) {
  if (id >= signals_.size() || canonical_id >= id) {
    throw std::runtime_error("wvx: bad alias declaration");
  }
  if (signals_[id].info.width != signals_[canonical_id].info.width) {
    // Not a pure alias: sharing a stream would serve wrong-width values.
    // Producers (the VCD parser) don't group these, but guard anyway.
    throw std::runtime_error("wvx: alias width mismatch for '" +
                             signals_[id].info.hier_name + "'");
  }
  if (options_.dedup_aliases) {
    // One change stream for the whole group: the alias points at the
    // canonical signal and owns no blocks.
    signals_[id].canonical = signals_[canonical_id].canonical;
    ++aliases_deduped_;
  } else {
    // Legacy layout: duplicate the stream per aliased name.
    fanout_[signals_[canonical_id].canonical].push_back(id);
  }
}

void IndexWriter::on_change(size_t id, uint64_t time,
                            const common::BitVector& value) {
  if (id >= signals_.size()) throw std::runtime_error("wvx: bad signal id");
  auto& pending = pending_[id];
  // Same-timestamp glitches (0->1->0 within one #time) are kept verbatim:
  // upper_bound seeks pick the last entry at a time, matching VcdTrace
  // exactly, and rising_edges must see the intermediate values so both
  // backends report identical edge grids.
  pending.times.push_back(time);
  pending.values.push_back(value);
  if (pending.times.size() >= options_.block_capacity) flush_block(id);
  for (size_t alias : fanout_[id]) on_change(alias, time, value);
}

void IndexWriter::flush_block(size_t id) {
  auto& pending = pending_[id];
  if (pending.times.empty()) return;
  auto& signal = signals_[id];
  if (signal.codec == nullptr) {
    // First flush of an auto-codec candidate: decide from this block and
    // stick with it (the directory records one codec per stream). The
    // decision is a pure function of the change data, so re-converting
    // the same dump — sharded or not, any job count — picks identically.
    signal.codec = is_clock_like(pending.values) ? &rle_codec() : codec_;
  }
  BlockInfo block;
  block.start_time = pending.times.front();
  block.end_time = pending.times.back();
  block.file_offset = out_->offset();
  block.count = static_cast<uint32_t>(pending.times.size());
  // Serialize through a buffer so the checksum covers exactly the bytes
  // that land on disk.
  buffer_.clear();
  signal.codec->encode(pending.times.data(), pending.values.data(),
                       pending.times.size(), signal.info.width, buffer_);
  block.payload_bytes = static_cast<uint32_t>(buffer_.size());
  if (options_.block_checksums) {
    block.crc32 = common::crc32(buffer_.data(), buffer_.size());
  }
  out_->append(buffer_.data(), buffer_.size());
  signal.blocks.push_back(block);
  pending.times.clear();
  pending.values.clear();
  ++blocks_written_;
}

void IndexWriter::on_finish(uint64_t max_time) {
  for (size_t id = 0; id < signals_.size(); ++id) flush_block(id);
  const uint64_t footer_offset = out_->offset();
  const bool v3 = options_.version >= 3;
  const bool v4 = options_.version >= 4;
  for (size_t id = 0; id < signals_.size(); ++id) {
    auto& signal = signals_[id];
    put_u32(*out_, static_cast<uint32_t>(signal.info.hier_name.size()));
    out_->append(signal.info.hier_name.data(), signal.info.hier_name.size());
    put_u32(*out_, signal.info.width);
    if (v3) {
      put_u32(*out_, static_cast<uint32_t>(signal.canonical));
      if (signal.canonical != id) continue;  // aliases carry no directory
    }
    if (v4) {
      // A stream that never changed had no flush to decide its codec.
      if (signal.codec == nullptr) signal.codec = codec_;
      const char id_byte = static_cast<char>(codec_id(*signal.codec));
      out_->append(&id_byte, 1);
    }
    put_u64(*out_, signal.blocks.size());
    for (const auto& block : signal.blocks) {
      put_u64(*out_, block.start_time);
      put_u64(*out_, block.end_time);
      put_u64(*out_, block.file_offset);
      put_u32(*out_, block.count);
      if (v3) put_u32(*out_, block.payload_bytes);
      if (options_.block_checksums) put_u32(*out_, block.crc32);
    }
  }
  // Patch the header (footer offset lives after magic+version+flags) in
  // one positional write; the backend never moves its append cursor.
  char patch[24];
  put_u64_at(patch, footer_offset);
  put_u64_at(patch + 8, max_time);
  put_u64_at(patch + 16, signals_.size());
  out_->write_at(12, patch, sizeof(patch));
  out_->finish();  // throws WvxError(kIo) if anything failed to land
  finished_ = true;
}

size_t convert_vcd_to_index(const std::string& vcd_path,
                            const std::string& index_path,
                            IndexWriterOptions options) {
  IndexWriter writer(index_path, options);
  VcdStreamParser::parse_file(vcd_path, writer);
  return writer.signal_count();
}

}  // namespace hgdb::waveform
