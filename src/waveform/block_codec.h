#ifndef HGDB_WAVEFORM_BLOCK_CODEC_H
#define HGDB_WAVEFORM_BLOCK_CODEC_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/bitvector.h"

namespace hgdb::waveform {

/// A decoded change block: (time, value), sorted by time. Identical to
/// BlockCache::Block — the codec produces exactly what the cache stores.
using DecodedBlock = std::vector<std::pair<uint64_t, common::BitVector>>;

// -- varint (unsigned LEB128) -------------------------------------------------
void append_varint(std::string& out, uint64_t value);
/// Bytes append_varint would emit (1..10).
[[nodiscard]] uint32_t varint_size(uint64_t value);
/// Reads one varint, advancing *cursor. Throws WvxError(kTruncatedBlock)
/// past `end` or on an overlong (> 10 byte) encoding.
[[nodiscard]] uint64_t read_varint(const uint8_t** cursor, const uint8_t* end);

/// The block-payload encoding seam of the waveform store. The writer, the
/// reader and the verifier all serialize/deserialize change blocks through
/// this interface, so an encoding can change without touching any of them.
///
/// Implementations must be stateless across blocks: every block decodes
/// independently of its neighbours (random access through the directory).
class BlockCodec {
 public:
  virtual ~BlockCodec() = default;

  [[nodiscard]] virtual const char* name() const = 0;

  /// Appends the encoding of `count` (time, value) changes of a
  /// `width`-bit signal onto `out`. Times are nondecreasing.
  virtual void encode(const uint64_t* times, const common::BitVector* values,
                      size_t count, uint32_t width,
                      std::string& out) const = 0;

  /// Decodes exactly `count` entries from `payload` into `out`
  /// (cleared first). Throws WvxError(kTruncatedBlock / kCorrupt) when the
  /// payload is shorter than the entries claim or trailing bytes remain.
  virtual void decode(const char* payload, size_t payload_bytes,
                      uint32_t count, uint32_t width,
                      DecodedBlock& out) const = 0;
};

/// v1/v2 layout (and v3 without kWvxFlagDeltaCodec): `count` fixed-stride
/// entries of u64 time + ceil(width/8) little-endian value bytes.
[[nodiscard]] const BlockCodec& fixed_codec();

/// v3 layout: per entry a varint time delta (absolute for the first
/// entry), then a value tag byte and its payload:
///   0  repeat — same value as the previous entry (zero for the first)
///   1  varint of value XOR previous (widths <= 64 only)
///   2  raw ceil(width/8) little-endian bytes
/// Near-sequential times collapse to 1-byte deltas and small bit flips to
/// 2-3 byte entries, which is where the v3 size win comes from.
[[nodiscard]] const BlockCodec& delta_codec();

/// Run-length toggle codec for width-1 signals (v4 per-signal selection;
/// the writer auto-picks it for clock-like streams). Entries are grouped:
///   varint run_len >= 1: run_len entries, each toggling the previous
///     value, spaced by one shared varint time delta — a whole block of a
///     pure clock collapses to ~3 bytes.
///   varint 0 (literal escape): one entry at varint delta with an explicit
///     u8 value (0/1) — covers the initial 0 at #0, glitches, and
///     irregular spacing.
/// "Previous value" starts at 0 per block, so blocks decode independently.
/// encode()/decode() reject widths other than 1.
[[nodiscard]] const BlockCodec& rle_codec();

/// Codec selection for a file: delta when the flag says so, else fixed.
/// v4 files may override per signal via the footer codec id.
[[nodiscard]] const BlockCodec& codec_for_flags(uint32_t flags);

/// On-disk codec ids, written per canonical signal in v4 footers:
/// 0 = fixed, 1 = delta, 2 = rle.
[[nodiscard]] uint8_t codec_id(const BlockCodec& codec);
/// The codec for an id, or nullptr when the id is unknown (corrupt or
/// future file — the reader reports a typed fault with path context).
[[nodiscard]] const BlockCodec* codec_by_id(uint8_t id);

}  // namespace hgdb::waveform

#endif  // HGDB_WAVEFORM_BLOCK_CODEC_H
