#include "waveform/wvx_verify.h"

#include "waveform/indexed_waveform.h"

namespace hgdb::waveform {

VerifyResult verify_index(const std::string& path) {
  VerifyResult result;
  try {
    // A small cache: verification touches every block exactly once, so
    // residency would only waste memory.
    IndexedWaveform waveform(path,
                             WaveformOpenOptions{/*cache_blocks=*/8,
                                                 IoMode::kAuto});
    result.checksummed = waveform.has_block_checksums();
    result.version = waveform.version();
    result.codec = waveform.codec_name();
    result.signals = waveform.signal_count();
    result.blocks = waveform.total_blocks();
    result.aliases = waveform.alias_count();
    if (waveform.sharded()) result.shards = waveform.shard_count();
    if (auto fault = waveform.verify_blocks()) {
      result.fault = fault->fault;
      result.error = fault->message;
      result.signal = fault->signal;
      result.block_index = fault->block_index;
      result.file_offset = fault->file_offset;
      return result;
    }
    result.ok = true;
  } catch (const WvxError& error) {
    result.fault = error.fault();
    result.error = error.what();
  } catch (const std::exception& error) {
    result.fault = WvxFault::kIo;
    result.error = error.what();
  }
  return result;
}

std::string describe(const VerifyResult& result, const std::string& path) {
  if (result.ok) {
    std::string text = path + ": OK — format v" +
                       std::to_string(result.version) + ", " + result.codec +
                       " codec, " + std::to_string(result.signals) +
                       " signal(s), " + std::to_string(result.blocks) +
                       " block(s)";
    if (result.shards != 0) {
      text += ", " + std::to_string(result.shards) + " shard(s)";
    }
    if (result.aliases != 0) {
      text += ", " + std::to_string(result.aliases) + " alias(es) deduped";
    }
    text += result.checksummed ? ", all checksums verified"
                               : " (no checksums; legacy index)";
    return text;
  }
  std::string text = path + ": CORRUPT [" + to_string(result.fault) + "] — " +
                     result.error;
  if (result.version != 0) {
    text += "\nformat v" + std::to_string(result.version) +
            (result.codec.empty() ? "" : ", " + result.codec + " codec");
  }
  if (!result.signal.empty()) {
    text += "\nfirst corrupt block: signal '" + result.signal + "', block " +
            std::to_string(result.block_index) + ", file offset " +
            std::to_string(result.file_offset);
  }
  return text;
}

}  // namespace hgdb::waveform
