#include "waveform/wvx_verify.h"

#include "waveform/indexed_waveform.h"

namespace hgdb::waveform {

VerifyResult verify_index(const std::string& path) {
  VerifyResult result;
  try {
    // A small cache: verification touches every block exactly once, so
    // residency would only waste memory.
    IndexedWaveform waveform(path, /*cache_blocks=*/8);
    result.checksummed = waveform.has_block_checksums();
    result.signals = waveform.signal_count();
    result.blocks = waveform.total_blocks();
    if (auto fault = waveform.verify_blocks()) {
      result.error = fault->message;
      result.signal = fault->signal;
      result.block_index = fault->block_index;
      result.file_offset = fault->file_offset;
      return result;
    }
    result.ok = true;
  } catch (const std::exception& error) {
    result.error = error.what();
  }
  return result;
}

std::string describe(const VerifyResult& result, const std::string& path) {
  if (result.ok) {
    std::string text = path + ": OK — " + std::to_string(result.signals) +
                       " signal(s), " + std::to_string(result.blocks) +
                       " block(s)";
    text += result.checksummed ? ", all checksums verified"
                               : " (no checksums; legacy v1 index)";
    return text;
  }
  std::string text = path + ": CORRUPT — " + result.error;
  if (!result.signal.empty()) {
    text += "\nfirst corrupt block: signal '" + result.signal + "', block " +
            std::to_string(result.block_index) + ", file offset " +
            std::to_string(result.file_offset);
  }
  return text;
}

}  // namespace hgdb::waveform
