#include "waveform/sharded_writer.h"

#include <algorithm>
#include <map>
#include <stdexcept>

namespace hgdb::waveform {

namespace {

/// Top-level scope of a hierarchical name ("top.u0.clk" -> "top"); the
/// empty view for unscoped names, which form a scope of their own.
std::string_view top_scope(const std::string& hier_name) {
  const size_t dot = hier_name.find('.');
  if (dot == std::string::npos) return {};
  return std::string_view(hier_name).substr(0, dot);
}

}  // namespace

ShardedIndexWriter::ShardedIndexWriter(const std::string& path,
                                       const ShardedConvertOptions& options)
    : path_(path), options_(options) {}

ShardedIndexWriter::~ShardedIndexWriter() {
  // Abandoned conversion (exception unwound through the parser): stop the
  // pipeline without finalizing anything. Truncated shards keep their
  // zero footer offset, so readers reject them.
  for (auto& queue : queues_) queue->close();
  join_workers();
}

void ShardedIndexWriter::on_signal(size_t id, const SignalInfo& info) {
  if (id != defs_.size()) {
    throw std::runtime_error("wvx: non-contiguous signal id");
  }
  defs_.push_back(Def{info, false, 0});
}

void ShardedIndexWriter::on_alias(size_t id, size_t canonical_id) {
  if (id >= defs_.size() || canonical_id >= id) {
    throw std::runtime_error("wvx: bad alias declaration");
  }
  defs_[id].is_alias = true;
  defs_[id].canonical = canonical_id;
}

void ShardedIndexWriter::on_definitions_done() {
  // Scope -> shard: first-appearance order over *canonical* declarations,
  // round-robin over min(#scopes, kMaxShards) shards. Declaration order
  // is a property of the dump, not of the pipeline, so the layout — and
  // therefore every shard's byte content — is identical for any jobs.
  std::map<std::string_view, uint32_t> scope_shard;
  std::vector<std::string_view> scopes;
  for (const auto& def : defs_) {
    if (def.is_alias) continue;
    const auto scope = top_scope(def.info.hier_name);
    if (scope_shard.emplace(scope, 0).second) scopes.push_back(scope);
  }
  const auto shard_count = static_cast<uint32_t>(
      std::min<size_t>(std::max<size_t>(scopes.size(), 1), kMaxShards));
  for (uint32_t i = 0; i < scopes.size(); ++i) {
    scope_shard[scopes[i]] = i % shard_count;
  }

  const std::string stem =
      is_wvx_path(path_) ? path_.substr(0, path_.size() - 4) : path_;
  const size_t slash = stem.find_last_of('/');
  const std::string base =
      slash == std::string::npos ? stem : stem.substr(slash + 1);
  writers_.reserve(shard_count);
  for (uint32_t k = 0; k < shard_count; ++k) {
    const std::string suffix = ".shard" + std::to_string(k) + ".wvx";
    shard_names_.push_back(base + suffix);
    writers_.push_back(
        std::make_unique<IndexWriter>(stem + suffix, options_.index));
  }

  // Replay the buffered definitions into the shard writers: locals are
  // dense per shard in declaration order, aliases land on their canonical
  // signal's shard (a change stream never spans files).
  std::vector<uint32_t> next_local(shard_count, 0);
  slots_.resize(defs_.size());
  for (size_t id = 0; id < defs_.size(); ++id) {
    const auto& def = defs_[id];
    const uint32_t shard = def.is_alias
                               ? slots_[def.canonical].shard
                               : scope_shard[top_scope(def.info.hier_name)];
    const uint32_t local = next_local[shard]++;
    slots_[id] = Slot{shard, local};
    writers_[shard]->on_signal(local, def.info);
    if (def.is_alias) {
      writers_[shard]->on_alias(local, slots_[def.canonical].local);
    }
  }

  const uint32_t requested =
      options_.jobs != 0
          ? options_.jobs
          : std::max(1u, std::thread::hardware_concurrency());
  jobs_ = std::min(requested, shard_count);
  if (jobs_ <= 1) return;
  // Worker w owns shards with shard % jobs == w: single consumer per
  // queue, single writer per shard, so the only synchronization in the
  // hot path is the ring's acquire/release pair.
  queues_.reserve(jobs_);
  workers_.reserve(jobs_);
  for (uint32_t w = 0; w < jobs_; ++w) {
    queues_.push_back(std::make_unique<common::SpscQueue<Change>>(4096));
  }
  for (uint32_t w = 0; w < jobs_; ++w) {
    workers_.emplace_back([this, w] { worker_loop(w); });
  }
}

void ShardedIndexWriter::apply(Change& change) {
  IndexWriter& writer = *writers_[change.shard];
  if (change.has_value) {
    writer.on_change(change.local, change.time, change.value);
  } else {
    writer.on_change(change.local, change.time,
                     parse_vcd_value(change.text, change.scalar, change.width));
  }
}

void ShardedIndexWriter::worker_loop(uint32_t worker) {
  auto& queue = *queues_[worker];
  Change change;
  try {
    while (queue.pop(change)) apply(change);
  } catch (...) {
    {
      common::LockGuard lock(error_mutex_);
      if (!worker_error_) worker_error_ = std::current_exception();
    }
    // Refuse further work; the producer's next push to this queue fails
    // and surfaces the stored error instead of deadlocking on a ring that
    // will never drain.
    queue.close();
  }
}

void ShardedIndexWriter::rethrow_worker_failure() {
  for (auto& queue : queues_) queue->close();
  join_workers();
  {
    common::LockGuard lock(error_mutex_);
    if (worker_error_) std::rethrow_exception(worker_error_);
  }
  throw std::runtime_error("wvx: convert pipeline stopped unexpectedly");
}

void ShardedIndexWriter::join_workers() {
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
}

void ShardedIndexWriter::route(Change& change) {
  if (jobs_ <= 1) {
    apply(change);
    return;
  }
  auto& queue = *queues_[change.shard % jobs_];
  if (!queue.push(change)) rethrow_worker_failure();
}

void ShardedIndexWriter::on_change_text(size_t id, uint64_t time,
                                        std::string_view text, bool scalar) {
  if (id >= slots_.size()) throw std::runtime_error("wvx: bad signal id");
  scratch_.time = time;
  scratch_.shard = slots_[id].shard;
  scratch_.local = slots_[id].local;
  scratch_.width = defs_[id].info.width;
  scratch_.scalar = scalar;
  scratch_.has_value = false;
  scratch_.text.assign(text);
  route(scratch_);
}

void ShardedIndexWriter::on_change(size_t id, uint64_t time,
                                   const common::BitVector& value) {
  // Pre-parsed producers (the direct write path): same routing, payload
  // already a BitVector.
  if (id >= slots_.size()) throw std::runtime_error("wvx: bad signal id");
  scratch_.time = time;
  scratch_.shard = slots_[id].shard;
  scratch_.local = slots_[id].local;
  scratch_.width = defs_[id].info.width;
  scratch_.scalar = false;
  scratch_.has_value = true;
  scratch_.value = value;
  route(scratch_);
}

void ShardedIndexWriter::on_finish(uint64_t max_time) {
  // End of stream: drain the pipeline, then finalize shards and write the
  // manifest last — a crash mid-finalize leaves no manifest pointing at
  // complete-looking shards.
  for (auto& queue : queues_) queue->close();
  join_workers();
  {
    common::LockGuard lock(error_mutex_);
    if (worker_error_) std::rethrow_exception(worker_error_);
  }
  for (auto& writer : writers_) writer->on_finish(max_time);
  Manifest manifest;
  manifest.max_time = max_time;
  manifest.signal_count = defs_.size();
  manifest.shards = shard_names_;
  write_manifest(path_, manifest);
  finished_ = true;
}

ShardedConvertResult convert_vcd_to_sharded_index(
    const std::string& vcd_path, const std::string& index_path,
    const ShardedConvertOptions& options) {
  if (!options.shard_by_scope) {
    IndexWriter writer(index_path, options.index);
    VcdStreamParser::parse_file(vcd_path, writer);
    return ShardedConvertResult{writer.signal_count(), 0, 1};
  }
  ShardedIndexWriter writer(index_path, options);
  VcdStreamParser::parse_file(vcd_path, writer);
  return ShardedConvertResult{writer.signal_count(), writer.shard_count(),
                              writer.jobs()};
}

}  // namespace hgdb::waveform
