#ifndef HGDB_WAVEFORM_WAVEFORM_SOURCE_H
#define HGDB_WAVEFORM_WAVEFORM_SOURCE_H

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/bitvector.h"

namespace hgdb::waveform {

/// One traced signal (dotted hierarchical name + bit width).
struct SignalInfo {
  std::string hier_name;
  uint32_t width = 1;
};

/// Default LRU capacity (in blocks) for indexed backends; shared by every
/// opener so the documented default cannot drift.
inline constexpr size_t kDefaultCacheBlocks = 64;

/// Abstract waveform store: the query interface the replay path is written
/// against (trace::ReplayEngine, vpi::ReplayBackend and the debugger runtime
/// above them). Two interchangeable backends exist:
///
///  - trace::VcdTrace          in-memory change lists, parsed from VCD text;
///                             fastest for small traces, O(trace) resident.
///  - waveform::IndexedWaveform on-disk columnar block index (.wvx) with an
///                             LRU block cache; O(log n) seeks, residency
///                             bounded by the cache capacity — the
///                             production-scale backend.
///
/// Implementations must be safe for concurrent value_at() calls: the
/// runtime's breakpoint batches evaluate conditions from a thread pool.
class WaveformSource {
 public:
  virtual ~WaveformSource() = default;

  [[nodiscard]] virtual size_t signal_count() const = 0;
  [[nodiscard]] virtual const SignalInfo& signal(size_t index) const = 0;
  [[nodiscard]] virtual std::optional<size_t> signal_index(
      const std::string& hier_name) const = 0;
  /// Index of the signal owning `index`'s change stream. Aliased names
  /// (several $var declarations sharing one net) map to one canonical
  /// index so callers caching per-signal state (replay fetch plans, block
  /// caches) dedupe storage; non-aliased signals return themselves.
  [[nodiscard]] virtual size_t canonical_index(size_t index) const {
    return index;
  }
  [[nodiscard]] virtual uint64_t max_time() const = 0;

  /// Value of signal `index` at `time`: last change at or before `time`,
  /// zero before the first change.
  [[nodiscard]] virtual common::BitVector value_at(size_t index,
                                                   uint64_t time) const = 0;

  /// Times at which the signal transitions 0 -> nonzero.
  [[nodiscard]] virtual std::vector<uint64_t> rising_edges(size_t index) const = 0;
};

/// True for leaf names that look like a clock ("clock"/"clk", any case).
[[nodiscard]] bool is_clock_leaf(std::string_view leaf);

/// Hierarchical names of 1-bit signals whose leaf looks like a clock.
[[nodiscard]] std::vector<std::string> clock_signal_names(
    const WaveformSource& source);

/// Resolves the clock that defines the replay cycle grid. With an explicit
/// `clock_name` it tries an exact match, then a dotted-suffix match. With an
/// empty name it auto-detects via is_clock_leaf() over 1-bit signals. Throws
/// std::runtime_error with a diagnosable message when nothing matches.
[[nodiscard]] size_t resolve_clock(const WaveformSource& source,
                                   const std::string& clock_name);

}  // namespace hgdb::waveform

#endif  // HGDB_WAVEFORM_WAVEFORM_SOURCE_H
