#ifndef HGDB_WAVEFORM_BLOCK_CACHE_H
#define HGDB_WAVEFORM_BLOCK_CACHE_H

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "common/bitvector.h"

namespace hgdb::waveform {

/// Cache effectiveness counters, split by lifetime semantics:
///
///  - *monotonic* (never reset, survive clear()): `hits`, `misses`,
///    `evictions` count lifetime events; `peak_resident` is the lifetime
///    residency high-water mark (the bench's residency proxy: it must
///    never exceed the configured capacity). These feed monotonic
///    counters in the obs::MetricsRegistry.
///  - *instantaneous* (snapshot of now): `resident` is the current block
///    count; clear() resets it to 0. It maps to a registry gauge.
///
/// clear() drops residency without touching the monotonic fields —
/// dropping N blocks in a reset is deliberately *not* counted as N
/// evictions, because `evictions` measures capacity pressure, which a
/// reset is not.
struct CacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  size_t resident = 0;
  size_t peak_resident = 0;
};

/// LRU cache of decoded change blocks, keyed by (signal, block) index.
/// This is what bounds the resident set of an IndexedWaveform: only the
/// `capacity` most recently touched blocks stay decoded, everything else
/// lives on disk until re-read.
class BlockCache {
 public:
  using Key = std::pair<uint32_t, uint32_t>;  // (signal index, block index)
  using Block = std::vector<std::pair<uint64_t, common::BitVector>>;
  using BlockPtr = std::shared_ptr<const Block>;

  explicit BlockCache(size_t capacity) : capacity_(capacity ? capacity : 1) {}

  /// Returns the cached block (bumping it to most-recent) or nullptr.
  BlockPtr lookup(const Key& key) {
    auto it = index_.find(key);
    if (it == index_.end()) {
      ++stats_.misses;
      return nullptr;
    }
    ++stats_.hits;
    lru_.splice(lru_.begin(), lru_, it->second);
    return it->second->second;
  }

  /// Inserts a freshly decoded block, evicting least-recently-used entries
  /// beyond capacity.
  void insert(const Key& key, BlockPtr block) {
    auto it = index_.find(key);
    if (it != index_.end()) {  // raced decode: keep the existing entry fresh
      lru_.splice(lru_.begin(), lru_, it->second);
      return;
    }
    lru_.emplace_front(key, std::move(block));
    index_[key] = lru_.begin();
    while (lru_.size() > capacity_) {
      index_.erase(lru_.back().first);
      lru_.pop_back();
      ++stats_.evictions;
    }
    stats_.resident = lru_.size();
    if (stats_.resident > stats_.peak_resident) {
      stats_.peak_resident = stats_.resident;
    }
  }

  /// Drops every resident block. Lifetime counters (hits/misses/
  /// evictions/peak_resident) are left intact — only the instantaneous
  /// `resident` resets; see CacheStats for the monotonic/instantaneous
  /// split.
  void clear() {
    lru_.clear();
    index_.clear();
    stats_.resident = 0;
  }

  [[nodiscard]] size_t capacity() const { return capacity_; }
  [[nodiscard]] size_t resident() const { return lru_.size(); }
  [[nodiscard]] const CacheStats& stats() const { return stats_; }

 private:
  size_t capacity_;
  std::list<std::pair<Key, BlockPtr>> lru_;
  std::map<Key, std::list<std::pair<Key, BlockPtr>>::iterator> index_;
  CacheStats stats_;
};

}  // namespace hgdb::waveform

#endif  // HGDB_WAVEFORM_BLOCK_CACHE_H
