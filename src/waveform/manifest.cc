#include "waveform/manifest.h"

#include <fstream>
#include <sstream>

#include "common/crc32.h"

namespace hgdb::waveform {

namespace {

[[noreturn]] void corrupt(const std::string& what) {
  throw WvxError(WvxFault::kCorrupt, "wvx: corrupt manifest: " + what);
}

class Reader {
 public:
  Reader(const char* data, size_t size)
      : p_(reinterpret_cast<const uint8_t*>(data)), end_(p_ + size) {}

  uint32_t u32() {
    need(4);
    uint32_t out = 0;
    for (int i = 3; i >= 0; --i) out = (out << 8) | p_[i];
    p_ += 4;
    return out;
  }

  uint64_t u64() {
    need(8);
    uint64_t out = 0;
    for (int i = 7; i >= 0; --i) out = (out << 8) | p_[i];
    p_ += 8;
    return out;
  }

  std::string str(size_t length) {
    need(length);
    std::string out(reinterpret_cast<const char*>(p_), length);
    p_ += length;
    return out;
  }

  [[nodiscard]] size_t remaining() const {
    return static_cast<size_t>(end_ - p_);
  }

 private:
  void need(size_t bytes) {
    if (remaining() < bytes) {
      throw WvxError(WvxFault::kTruncatedDirectory,
                     "wvx: truncated manifest (ends mid-entry)");
    }
  }

  const uint8_t* p_;
  const uint8_t* end_;
};

/// A shard name must stay inside the manifest's directory: no separators,
/// no traversal, no empty or hidden-relative names. The manifest is the
/// fourth untrusted-byte parser in the tree — treat every field as hostile.
bool shard_name_ok(const std::string& name) {
  if (name.empty() || name == "." || name == "..") return false;
  for (const char c : name) {
    if (c == '/' || c == '\\' || c == '\0') return false;
  }
  return true;
}

void put_u32(std::string& out, uint32_t value) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>(value >> (8 * i)));
}

void put_u64(std::string& out, uint64_t value) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>(value >> (8 * i)));
}

}  // namespace

bool is_manifest_bytes(const char* data, size_t size) {
  if (size < 4) return false;
  uint32_t magic = 0;
  for (int i = 3; i >= 0; --i) {
    magic = (magic << 8) | static_cast<uint8_t>(data[i]);
  }
  return magic == kWvxManifestMagic;
}

Manifest parse_manifest(const char* data, size_t size) {
  Reader in(data, size);
  if (in.u32() != kWvxManifestMagic) {
    throw WvxError(WvxFault::kBadMagic, "wvx: not a shard manifest");
  }
  Manifest manifest;
  manifest.version = in.u32();
  if (manifest.version != kWvxManifestVersion) {
    throw WvxError(WvxFault::kBadVersion,
                   "wvx: unsupported manifest version " +
                       std::to_string(manifest.version));
  }
  const uint32_t shard_count = in.u32();
  if (shard_count == 0) corrupt("zero shards");
  if (shard_count > kWvxMaxShards) corrupt("implausible shard count");
  if (in.u32() != 0) corrupt("nonzero reserved flags");
  manifest.max_time = in.u64();
  manifest.signal_count = in.u64();
  manifest.shards.reserve(shard_count);
  for (uint32_t i = 0; i < shard_count; ++i) {
    const uint32_t name_len = in.u32();
    if (name_len > kWvxMaxShardNameLength) corrupt("oversized shard name");
    std::string name = in.str(name_len);
    if (!shard_name_ok(name)) {
      corrupt("shard name '" + name + "' escapes the manifest directory");
    }
    manifest.shards.push_back(std::move(name));
  }
  if (in.remaining() != 4) {
    if (in.remaining() < 4) {
      throw WvxError(WvxFault::kTruncatedDirectory,
                     "wvx: truncated manifest (missing checksum)");
    }
    corrupt("trailing bytes after the checksum");
  }
  const uint32_t expected = in.u32();
  const uint32_t actual = common::crc32(data, size - 4);
  if (expected != actual) {
    throw WvxError(WvxFault::kChecksum, "wvx: manifest checksum mismatch");
  }
  return manifest;
}

std::string encode_manifest(const Manifest& manifest) {
  std::string out;
  put_u32(out, kWvxManifestMagic);
  put_u32(out, kWvxManifestVersion);
  put_u32(out, static_cast<uint32_t>(manifest.shards.size()));
  put_u32(out, 0);  // reserved flags
  put_u64(out, manifest.max_time);
  put_u64(out, manifest.signal_count);
  for (const auto& name : manifest.shards) {
    put_u32(out, static_cast<uint32_t>(name.size()));
    out.append(name);
  }
  put_u32(out, common::crc32(out.data(), out.size()));
  return out;
}

void write_manifest(const std::string& path, const Manifest& manifest) {
  const std::string bytes = encode_manifest(manifest);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!out) {
    throw WvxError(WvxFault::kIo, "wvx: cannot write manifest '" + path + "'");
  }
}

Manifest read_manifest(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw WvxError(WvxFault::kNotFound,
                   "wvx: cannot open manifest '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string bytes = buffer.str();
  return parse_manifest(bytes.data(), bytes.size());
}

}  // namespace hgdb::waveform
