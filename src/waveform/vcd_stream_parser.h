#ifndef HGDB_WAVEFORM_VCD_STREAM_PARSER_H
#define HGDB_WAVEFORM_VCD_STREAM_PARSER_H

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/bitvector.h"
#include "waveform/index_sink.h"
#include "waveform/waveform_source.h"

namespace hgdb::waveform {

/// Receives parse events from VcdStreamParser. Signal ids are dense,
/// 0-based, in declaration order. Identifier-code aliases (multiple $var
/// declarations sharing one id code) are announced via on_alias(); one VCD
/// value change is reported exactly once, against the canonical
/// (first-declared) id of its code — sinks that store per-signal streams
/// dedupe by construction instead of materializing N copies.
///
/// Adds the VCD-specific structural events (definitions boundary, #time
/// markers) on top of the transport-agnostic IndexSink consumer that the
/// direct simulator write path also feeds. X/Z value digits map to 0 (the
/// runtime is two-state); real (`r`) and string (`s`) changes are skipped,
/// never reported.
class VcdEventSink : public IndexSink {
 public:
  /// $enddefinitions reached.
  virtual void on_definitions_done() {}
  /// A #<time> marker (monotonically nondecreasing in well-formed dumps).
  virtual void on_time(uint64_t /*time*/) {}

  /// Sinks that parse value text themselves return true; the parser then
  /// delivers on_change_text() instead of on_change() and never builds a
  /// BitVector. This is the convert pipeline's seam: digit parsing is the
  /// bulk of single-thread convert time, so the sharded sink defers it to
  /// its writer workers. Sampled once at parser construction.
  [[nodiscard]] virtual bool wants_text_changes() const { return false; }
  /// Raw value change for text-mode sinks: `text` is the value portion of
  /// the token (MSB-first binary digits for a vector, one value char for
  /// a scalar) and is valid only for the duration of the call. Same
  /// dedup/canonical-id contract as on_change().
  virtual void on_change_text(size_t /*id*/, uint64_t /*time*/,
                              std::string_view /*text*/, bool /*scalar*/) {}
};

/// Parses a VCD value token body at `width`: one scalar value char, or
/// MSB-first binary vector digits, possibly shorter than the width
/// (X/Z/U/'-' map to 0 — the runtime is two-state). The one parsing
/// routine behind on_change() and text-mode sinks' deferred parsing.
[[nodiscard]] common::BitVector parse_vcd_value(std::string_view text,
                                                bool scalar, uint32_t width);

/// Incremental VCD parser: feed() accepts arbitrary chunk boundaries (mid
/// token, mid directive) so a multi-gigabyte dump streams through a small
/// constant-size buffer instead of being materialized like the legacy
/// whole-text parse. trace::parse_vcd and waveform::IndexWriter are both
/// built on this one tokenizer.
///
/// Throws std::runtime_error on malformed input (unknown id codes,
/// unterminated directives, bad $var headers, $upscope underflow).
class VcdStreamParser {
 public:
  explicit VcdStreamParser(VcdEventSink& sink)
      : sink_(&sink), text_changes_(sink.wants_text_changes()) {}

  /// Consumes the next chunk of VCD text.
  void feed(std::string_view chunk);
  /// Flushes the final token and validates terminal state.
  void finish();

  [[nodiscard]] uint64_t max_time() const { return max_time_; }
  [[nodiscard]] size_t signal_count() const { return widths_.size(); }

  static constexpr size_t kDefaultChunkSize = 64 * 1024;

  /// Streams `path` through the parser chunk-by-chunk.
  static void parse_file(const std::string& path, VcdEventSink& sink,
                         size_t chunk_size = kDefaultChunkSize);
  /// Parses in-memory text (single feed + finish).
  static void parse_text(std::string_view text, VcdEventSink& sink);

 private:
  enum class State : uint8_t {
    kTop,         ///< expecting a directive, #time, or value change
    kDirective,   ///< inside $...; collecting args until $end
    kVectorCode,  ///< previous token was b<binary>; expecting the id code
    kSkipCode,    ///< previous token was r/s value; id code is discarded
  };

  void handle_token(std::string_view token);
  void handle_directive_end();
  void handle_value_change(std::string_view token);
  void emit_change(std::string_view code, std::string_view value_text,
                   bool scalar, char scalar_char);
  [[noreturn]] static void malformed(const std::string& what);

  VcdEventSink* sink_;
  const bool text_changes_;
  State state_ = State::kTop;
  bool in_definitions_ = true;
  uint64_t now_ = 0;
  uint64_t max_time_ = 0;

  std::string partial_;  ///< token split across feed() boundaries
  std::string directive_;
  std::vector<std::string> args_;
  std::string pending_vector_;  ///< binary digits awaiting their id code

  std::vector<std::string> scope_stack_;
  std::map<std::string, std::vector<size_t>, std::less<>> code_to_ids_;
  std::vector<uint32_t> widths_;
};

}  // namespace hgdb::waveform

#endif  // HGDB_WAVEFORM_VCD_STREAM_PARSER_H
