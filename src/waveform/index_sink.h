#ifndef HGDB_WAVEFORM_INDEX_SINK_H
#define HGDB_WAVEFORM_INDEX_SINK_H

#include <cstddef>
#include <cstdint>

#include "common/bitvector.h"
#include "waveform/waveform_source.h"

namespace hgdb::waveform {

/// Consumer of an ordered trace-event stream: the write-path seam of the
/// waveform subsystem. Two producers feed it — the chunked VCD parser
/// (VcdEventSink extends this interface) and sim::VcdWriter, which emits
/// native-simulator dumps straight into an IndexWriter, skipping the
/// intermediate VCD text round-trip entirely.
///
/// Contract: signal ids are dense, 0-based, in declaration order, and all
/// on_signal()/on_alias() calls precede the first on_change(). Change
/// times are nondecreasing per signal. Aliased declarations (several names
/// sharing one change stream) are announced via on_alias(); changes are
/// reported once, against the canonical (first-declared) id only.
class IndexSink {
 public:
  virtual ~IndexSink() = default;

  /// A signal declaration.
  virtual void on_signal(size_t /*id*/, const SignalInfo& /*info*/) {}
  /// `id` shares `canonical_id`'s change stream (id > canonical_id; both
  /// already declared via on_signal). No on_change() ever names `id`.
  virtual void on_alias(size_t /*id*/, size_t /*canonical_id*/) {}
  /// One value change of a canonical signal.
  virtual void on_change(size_t id, uint64_t time,
                         const common::BitVector& value) = 0;
  /// End of input; `max_time` is the largest time seen.
  virtual void on_finish(uint64_t /*max_time*/) {}
};

}  // namespace hgdb::waveform

#endif  // HGDB_WAVEFORM_INDEX_SINK_H
