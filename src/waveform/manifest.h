#ifndef HGDB_WAVEFORM_MANIFEST_H
#define HGDB_WAVEFORM_MANIFEST_H

#include <cstdint>
#include <string>
#include <vector>

#include "waveform/index_format.h"

namespace hgdb::waveform {

/// The .wvx shard manifest: the small file a sharded dump is opened by.
/// It names the shard files (each a complete single-file index holding a
/// disjoint subset of the signals) and carries the merged dump metadata.
///
/// Layout (all integers little-endian):
///
///   u32 magic          "WVXM" (0x4D585657)
///   u32 version        1
///   u32 shard_count    >= 1
///   u32 flags          reserved, must be 0
///   u64 max_time       largest change time across every shard
///   u64 signal_count   total signals across every shard (informational)
///   per shard: u32 name_len, name bytes — the shard's file name,
///     *relative* to the manifest's directory. Path separators and ".."
///     are rejected: a manifest is untrusted input and must not be able
///     to point a reader outside its own directory.
///   u32 crc32          IEEE CRC-32 of every preceding byte
///
/// Manifests use the same .wvx extension as single-file indexes; readers
/// tell them apart by magic, so `open_waveform` and `--replay` accept a
/// manifest path transparently.
constexpr uint32_t kWvxManifestMagic = 0x4D585657;  // "WVXM"
constexpr uint32_t kWvxManifestVersion = 1;
/// A-priori cap on shard_count: a manifest is a handful of file names,
/// so anything larger is corrupt metadata, not a big dump.
constexpr uint32_t kWvxMaxShards = 4096;
constexpr uint32_t kWvxMaxShardNameLength = 4096;

struct Manifest {
  uint32_t version = kWvxManifestVersion;
  uint64_t max_time = 0;
  uint64_t signal_count = 0;
  std::vector<std::string> shards;  ///< file names relative to the manifest
};

/// True when `data` starts with the manifest magic — the sniff readers
/// use to route a .wvx path to the sharded or the single-file open path.
[[nodiscard]] bool is_manifest_bytes(const char* data, size_t size);

/// Parses a complete manifest image. Pure function over untrusted bytes:
/// throws WvxError (kBadMagic / kBadVersion / kTruncatedDirectory /
/// kCorrupt / kChecksum) and never reads outside [data, data+size).
[[nodiscard]] Manifest parse_manifest(const char* data, size_t size);

/// Serializes `manifest` (including the trailing CRC).
[[nodiscard]] std::string encode_manifest(const Manifest& manifest);

/// Writes `manifest` to `path`. Throws WvxError(kIo) on failure.
void write_manifest(const std::string& path, const Manifest& manifest);

/// Reads and parses the manifest at `path` (same faults as
/// parse_manifest, plus kNotFound).
[[nodiscard]] Manifest read_manifest(const std::string& path);

}  // namespace hgdb::waveform

#endif  // HGDB_WAVEFORM_MANIFEST_H
