#include "waveform/block_codec.h"

#include "waveform/index_format.h"

namespace hgdb::waveform {

using common::BitVector;

void append_varint(std::string& out, uint64_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<char>((value & 0x7f) | 0x80));
    value >>= 7;
  }
  out.push_back(static_cast<char>(value));
}

uint32_t varint_size(uint64_t value) {
  uint32_t bytes = 1;
  while (value >= 0x80) {
    value >>= 7;
    ++bytes;
  }
  return bytes;
}

uint64_t read_varint(const uint8_t** cursor, const uint8_t* end) {
  uint64_t out = 0;
  const uint8_t* p = *cursor;
  // Bounded shifts: a u64 spans at most 10 LEB128 bytes, and the 10th may
  // carry only bit 0 with no continuation — anything else is rejected
  // before the shift, so corrupt payloads can never reach UB territory.
  for (uint32_t shift = 0; shift < 64; shift += 7) {
    if (p >= end) {
      throw WvxError(WvxFault::kTruncatedBlock,
                     "wvx: truncated varint in block payload");
    }
    const uint8_t byte = *p++;
    if (shift == 63 && (byte & 0xfe) != 0) {
      throw WvxError(WvxFault::kCorrupt, "wvx: overlong varint in block");
    }
    out |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      *cursor = p;
      return out;
    }
  }
  throw WvxError(WvxFault::kCorrupt, "wvx: overlong varint in block");
}

namespace {

/// Little-endian value bytes of a BitVector, `value_bytes` wide.
void append_value_bytes(std::string& out, const BitVector& value,
                        uint32_t value_bytes) {
  const auto& words = value.words();
  for (uint32_t byte = 0; byte < value_bytes; ++byte) {
    const size_t word = byte / 8;
    const uint64_t shifted =
        word < words.size() ? words[word] >> (8 * (byte % 8)) : 0;
    out.push_back(static_cast<char>(shifted & 0xff));
  }
}

BitVector value_from_bytes(const uint8_t* bytes, uint32_t value_bytes,
                           uint32_t width) {
  std::vector<uint64_t> words((width + 63) / 64, 0);
  for (uint32_t byte = 0; byte < value_bytes; ++byte) {
    words[byte / 8] |= static_cast<uint64_t>(bytes[byte]) << (8 * (byte % 8));
  }
  return BitVector::from_words(width, std::move(words));
}

[[noreturn]] void truncated() {
  throw WvxError(WvxFault::kTruncatedBlock,
                 "wvx: block payload shorter than its entry count");
}

// ---------------------------------------------------------------------------
// fixed codec (v1/v2)
// ---------------------------------------------------------------------------

class FixedBlockCodec final : public BlockCodec {
 public:
  [[nodiscard]] const char* name() const override { return "fixed"; }

  void encode(const uint64_t* times, const BitVector* values, size_t count,
              uint32_t width, std::string& out) const override {
    const uint32_t value_bytes = wvx_value_bytes(width);
    for (size_t i = 0; i < count; ++i) {
      uint64_t time = times[i];
      for (int b = 0; b < 8; ++b) {
        out.push_back(static_cast<char>(time & 0xff));
        time >>= 8;
      }
      append_value_bytes(out, values[i], value_bytes);
    }
  }

  void decode(const char* payload, size_t payload_bytes, uint32_t count,
              uint32_t width, DecodedBlock& out) const override {
    out.clear();
    out.reserve(count);
    const uint32_t value_bytes = wvx_value_bytes(width);
    const uint64_t stride = wvx_entry_stride(width);
    if (payload_bytes < stride * count) truncated();
    if (payload_bytes > stride * count) {
      throw WvxError(WvxFault::kCorrupt,
                     "wvx: block payload larger than its entry count");
    }
    const auto* base = reinterpret_cast<const uint8_t*>(payload);
    for (uint32_t entry = 0; entry < count; ++entry) {
      const uint8_t* p = base + entry * stride;
      uint64_t time = 0;
      for (int b = 7; b >= 0; --b) time = (time << 8) | p[b];
      out.emplace_back(time, value_from_bytes(p + 8, value_bytes, width));
    }
  }
};

// ---------------------------------------------------------------------------
// delta codec (v3)
// ---------------------------------------------------------------------------

enum : uint8_t {
  kTagRepeat = 0,  ///< value equals the previous entry's
  kTagXor = 1,     ///< varint of value XOR previous (width <= 64)
  kTagRaw = 2,     ///< raw little-endian value bytes
};

class DeltaBlockCodec final : public BlockCodec {
 public:
  [[nodiscard]] const char* name() const override { return "delta"; }

  void encode(const uint64_t* times, const BitVector* values, size_t count,
              uint32_t width, std::string& out) const override {
    const uint32_t value_bytes = wvx_value_bytes(width);
    const bool narrow = width <= 64;
    uint64_t prev_time = 0;
    uint64_t prev_word = 0;       // narrow: previous value as a word
    const BitVector* prev = nullptr;  // wide: previous value
    for (size_t i = 0; i < count; ++i) {
      append_varint(out, times[i] - prev_time);
      prev_time = times[i];
      const BitVector& value = values[i];
      if (narrow) {
        const uint64_t word = value.to_uint64();
        const uint64_t diff = word ^ prev_word;
        if (diff == 0) {
          out.push_back(static_cast<char>(kTagRepeat));
        } else if (varint_size(diff) <= value_bytes) {
          out.push_back(static_cast<char>(kTagXor));
          append_varint(out, diff);
        } else {
          out.push_back(static_cast<char>(kTagRaw));
          append_value_bytes(out, value, value_bytes);
        }
        prev_word = word;
      } else {
        if (prev != nullptr ? value == *prev : value.is_zero()) {
          out.push_back(static_cast<char>(kTagRepeat));
        } else {
          out.push_back(static_cast<char>(kTagRaw));
          append_value_bytes(out, value, value_bytes);
        }
        prev = &value;
      }
    }
  }

  void decode(const char* payload, size_t payload_bytes, uint32_t count,
              uint32_t width, DecodedBlock& out) const override {
    out.clear();
    out.reserve(count);
    const uint32_t value_bytes = wvx_value_bytes(width);
    const bool narrow = width <= 64;
    const auto* p = reinterpret_cast<const uint8_t*>(payload);
    const uint8_t* end = p + payload_bytes;
    uint64_t time = 0;
    uint64_t prev_word = 0;
    BitVector prev(width, 0);
    for (uint32_t entry = 0; entry < count; ++entry) {
      time += read_varint(&p, end);
      if (p >= end) truncated();
      const uint8_t tag = *p++;
      switch (tag) {
        case kTagRepeat:
          break;
        case kTagXor: {
          if (!narrow) {
            throw WvxError(WvxFault::kCorrupt,
                           "wvx: xor-tagged entry on a wide signal");
          }
          prev_word ^= read_varint(&p, end);
          prev.assign_uint64(prev_word);
          break;
        }
        case kTagRaw: {
          if (static_cast<size_t>(end - p) < value_bytes) truncated();
          prev = value_from_bytes(p, value_bytes, width);
          if (narrow) prev_word = prev.to_uint64();
          p += value_bytes;
          break;
        }
        default:
          throw WvxError(WvxFault::kCorrupt,
                         "wvx: unknown value tag " + std::to_string(tag) +
                             " in block payload");
      }
      out.emplace_back(time, prev);
    }
    if (p != end) {
      throw WvxError(WvxFault::kCorrupt,
                     "wvx: trailing bytes after the last block entry");
    }
  }
};

// ---------------------------------------------------------------------------
// rle toggle codec (v4, width-1 signals)
// ---------------------------------------------------------------------------

class RleBlockCodec final : public BlockCodec {
 public:
  [[nodiscard]] const char* name() const override { return "rle"; }

  void encode(const uint64_t* times, const BitVector* values, size_t count,
              uint32_t width, std::string& out) const override {
    if (width != 1) {
      throw std::invalid_argument("wvx: rle codec requires a 1-bit signal");
    }
    uint64_t prev_time = 0;
    bool prev_value = false;  // per-block baseline, same as delta's zero
    size_t i = 0;
    while (i < count) {
      const bool value = values[i].to_bool();
      const uint64_t delta = times[i] - prev_time;
      if (value != prev_value) {
        // Greedy maximal run: consecutive toggles at one uniform spacing.
        size_t j = i + 1;
        while (j < count && values[j].to_bool() != values[j - 1].to_bool() &&
               times[j] - times[j - 1] == delta) {
          ++j;
        }
        append_varint(out, j - i);  // run_len >= 1
        append_varint(out, delta);
        prev_time = times[j - 1];
        prev_value = values[j - 1].to_bool();
        i = j;
      } else {
        append_varint(out, 0);  // literal escape
        append_varint(out, delta);
        out.push_back(static_cast<char>(value ? 1 : 0));
        prev_time = times[i];
        prev_value = value;
        ++i;
      }
    }
  }

  void decode(const char* payload, size_t payload_bytes, uint32_t count,
              uint32_t width, DecodedBlock& out) const override {
    if (width != 1) {
      throw WvxError(WvxFault::kCorrupt, "wvx: rle block on a wide signal");
    }
    out.clear();
    out.reserve(count);
    const auto* p = reinterpret_cast<const uint8_t*>(payload);
    const uint8_t* end = p + payload_bytes;
    uint64_t time = 0;
    bool value = false;
    while (out.size() < count) {
      const uint64_t run = read_varint(&p, end);
      if (run == 0) {  // literal: explicit value byte
        time += read_varint(&p, end);
        if (p >= end) truncated();
        const uint8_t byte = *p++;
        if (byte > 1) {
          throw WvxError(WvxFault::kCorrupt,
                         "wvx: rle literal value byte out of range");
        }
        value = byte != 0;
        out.emplace_back(time, BitVector(1, value ? 1 : 0));
      } else {
        if (run > count - out.size()) {
          throw WvxError(WvxFault::kCorrupt,
                         "wvx: rle run overflows its block entry count");
        }
        const uint64_t delta = read_varint(&p, end);
        for (uint64_t k = 0; k < run; ++k) {
          time += delta;
          value = !value;
          out.emplace_back(time, BitVector(1, value ? 1 : 0));
        }
      }
    }
    if (p != end) {
      throw WvxError(WvxFault::kCorrupt,
                     "wvx: trailing bytes after the last block entry");
    }
  }
};

}  // namespace

const BlockCodec& fixed_codec() {
  static const FixedBlockCodec codec;
  return codec;
}

const BlockCodec& delta_codec() {
  static const DeltaBlockCodec codec;
  return codec;
}

const BlockCodec& rle_codec() {
  static const RleBlockCodec codec;
  return codec;
}

const BlockCodec& codec_for_flags(uint32_t flags) {
  return (flags & kWvxFlagDeltaCodec) != 0 ? delta_codec() : fixed_codec();
}

uint8_t codec_id(const BlockCodec& codec) {
  if (&codec == &fixed_codec()) return 0;
  if (&codec == &delta_codec()) return 1;
  if (&codec == &rle_codec()) return 2;
  throw std::invalid_argument("wvx: unregistered block codec");
}

const BlockCodec* codec_by_id(uint8_t id) {
  switch (id) {
    case 0: return &fixed_codec();
    case 1: return &delta_codec();
    case 2: return &rle_codec();
    default: return nullptr;
  }
}

}  // namespace hgdb::waveform
