#include "waveform/indexed_waveform.h"

#include <algorithm>
#include <chrono>

#include "common/crc32.h"
#include "obs/trace.h"

namespace hgdb::waveform {

using common::BitVector;

namespace {

/// Bounds-checked little-endian parser over an in-memory footer image.
/// Running past the end means the writer died mid-footer (or the file was
/// cut): a typed truncated-directory fault, not a generic parse error.
class MemReader {
 public:
  MemReader(const uint8_t* data, size_t size, const std::string& path)
      : p_(data), end_(data + size), path_(path) {}

  uint32_t u32() {
    need(4);
    uint32_t out = 0;
    for (int i = 3; i >= 0; --i) out = (out << 8) | p_[i];
    p_ += 4;
    return out;
  }

  uint64_t u64() {
    need(8);
    uint64_t out = 0;
    for (int i = 7; i >= 0; --i) out = (out << 8) | p_[i];
    p_ += 8;
    return out;
  }

  std::string str(size_t length) {
    need(length);
    std::string out(reinterpret_cast<const char*>(p_), length);
    p_ += length;
    return out;
  }

 private:
  void need(size_t bytes) {
    if (static_cast<size_t>(end_ - p_) < bytes) {
      throw WvxError(WvxFault::kTruncatedDirectory,
                     "wvx: truncated signal directory in '" + path_ +
                         "' (footer ends mid-entry)");
    }
  }

  const uint8_t* p_;
  const uint8_t* end_;
  const std::string& path_;
};

/// Sanity bounds for untrusted on-disk metadata: a corrupt or crafted
/// index must fail with a clean error, not an unchecked huge allocation.
constexpr uint32_t kMaxSignalWidth = 1u << 20;   // 1M bits
constexpr uint32_t kMaxNameLength = 1u << 16;

[[noreturn]] void corrupt(const std::string& path, const std::string& what) {
  throw WvxError(WvxFault::kCorrupt,
                 "wvx: corrupt index '" + path + "': " + what);
}

}  // namespace

IndexedWaveform::IndexedWaveform(const std::string& path, size_t cache_blocks)
    : IndexedWaveform(path, WaveformOpenOptions{cache_blocks, IoMode::kAuto}) {}

IndexedWaveform::IndexedWaveform(const std::string& path,
                                 const WaveformOpenOptions& options)
    : path_(path),
      storage_(open_storage(path, options.io_mode)),
      cache_(options.cache_blocks),
      obs_(std::make_unique<ObsMetrics>()) {
  auto& registry = obs::MetricsRegistry::global();
  obs_->hits = &registry.counter("waveform.block_cache.hits");
  obs_->misses = &registry.counter("waveform.block_cache.misses");
  obs_->evictions = &registry.counter("waveform.block_cache.evictions");
  obs_->resident = &registry.gauge("waveform.block_cache.resident");
  obs_->load_ns = &registry.histogram("waveform.block_load_ns");
  const uint64_t file_size = storage_->size();
  if (file_size < kWvxHeaderSizeV1) {
    throw WvxError(WvxFault::kBadMagic,
                   "wvx: '" + path + "' is not a waveform index (too small)");
  }
  // Header: magic + version first, the rest depends on the version.
  std::string scratch;
  {
    const auto* head = reinterpret_cast<const uint8_t*>(
        storage_->view(0, kWvxHeaderSizeV1, scratch));
    MemReader reader(head, kWvxHeaderSizeV1, path_);
    if (reader.u32() != kWvxMagic) {
      throw WvxError(WvxFault::kBadMagic,
                     "wvx: '" + path + "' is not a waveform index (bad magic)");
    }
    version_ = reader.u32();
  }
  if (version_ < kWvxMinVersion || version_ > kWvxVersion) {
    throw WvxError(WvxFault::kBadVersion,
                   "wvx: unsupported index version " +
                       std::to_string(version_) + " in '" + path + "'");
  }
  // v2+ adds a flags word after the version; v1 files have none, no
  // per-block checksums and the fixed codec.
  const uint64_t header_size =
      version_ >= 2 ? kWvxHeaderSizeV2 : kWvxHeaderSizeV1;
  if (file_size < header_size) {
    throw WvxError(WvxFault::kTruncatedDirectory,
                   "wvx: '" + path + "' ends inside the header");
  }
  const auto* head = reinterpret_cast<const uint8_t*>(
      storage_->view(8, header_size - 8, scratch));
  MemReader reader(head, header_size - 8, path_);
  const uint32_t flags = version_ >= 2 ? reader.u32() : 0;
  has_checksums_ = (flags & kWvxFlagBlockChecksums) != 0;
  codec_ = &codec_for_flags(flags);
  const uint64_t footer_offset = reader.u64();
  max_time_ = reader.u64();
  const uint64_t signal_count = reader.u64();
  if (footer_offset == 0) {
    throw WvxError(WvxFault::kNeverFinalized,
                   "wvx: '" + path +
                       "' was never finalized (missing footer)");
  }
  if (footer_offset < header_size || footer_offset > file_size) {
    corrupt(path_, "footer offset outside the file");
  }

  // The footer is small (O(signals + blocks)): read it whole, parse from
  // memory. Cheap a-priori caps so corrupt counts fail before any
  // allocation: every v1/v2 signal entry needs >= 16 footer bytes; in v3
  // an *alias* entry can be as small as 13 (name_len + 1-char name +
  // width + canonical, no directory).
  const uint64_t footer_size = file_size - footer_offset;
  const bool v3 = version_ >= 3;
  if (signal_count > footer_size / (v3 ? 13 : 16)) {
    corrupt(path_, "signal count exceeds footer size");
  }
  const uint64_t max_total_blocks = footer_size / 28;
  std::string footer_scratch;
  const auto* footer = reinterpret_cast<const uint8_t*>(storage_->view(
      footer_offset, static_cast<size_t>(footer_size), footer_scratch));
  MemReader dir(footer, static_cast<size_t>(footer_size), path_);
  signals_.reserve(signal_count);
  for (uint64_t i = 0; i < signal_count; ++i) {
    IndexedSignal signal;
    const uint32_t name_len = dir.u32();
    if (name_len > kMaxNameLength) corrupt(path_, "oversized signal name");
    signal.info.hier_name = dir.str(name_len);
    signal.info.width = dir.u32();
    if (signal.info.width == 0 || signal.info.width > kMaxSignalWidth) {
      corrupt(path_, "implausible signal width");
    }
    signal.value_bytes = wvx_value_bytes(signal.info.width);
    signal.canonical = i;
    if (v3) {
      const uint32_t canonical = dir.u32();
      if (canonical > i) corrupt(path_, "alias points forward");
      signal.canonical = canonical;
      if (canonical != i) {
        if (signals_[canonical].canonical != canonical) {
          corrupt(path_, "alias of an alias");
        }
        ++alias_count_;
        // emplace (first wins) to match VcdTrace's duplicate-name
        // resolution.
        by_name_.emplace(signal.info.hier_name, signals_.size());
        signals_.push_back(std::move(signal));
        continue;  // aliases carry no directory of their own
      }
    }
    const uint64_t stride = wvx_entry_stride(signal.info.width);
    const uint64_t block_count = dir.u64();
    if (total_blocks_ + block_count > max_total_blocks) {
      corrupt(path_, "block count exceeds footer size");
    }
    signal.blocks.reserve(block_count);
    for (uint64_t b = 0; b < block_count; ++b) {
      BlockInfo block;
      block.start_time = dir.u64();
      block.end_time = dir.u64();
      block.file_offset = dir.u64();
      block.count = dir.u32();
      // v3 directories record the encoded size (variable-size codecs);
      // v1/v2 blocks are fixed-stride, so the size is derived. u64 math
      // throughout: a corrupt count must not truncate through the cast.
      const uint64_t payload =
          v3 ? dir.u32() : static_cast<uint64_t>(block.count) * stride;
      if (has_checksums_) block.crc32 = dir.u32();
      // Block payloads live strictly between the header and the footer.
      if (block.count == 0 || payload == 0 ||
          block.file_offset < header_size ||
          block.file_offset > footer_offset ||
          payload > footer_offset - block.file_offset ||
          payload > UINT32_MAX) {
        corrupt(path_, "block outside the data region");
      }
      block.payload_bytes = static_cast<uint32_t>(payload);
      signal.blocks.push_back(block);
    }
    total_blocks_ += block_count;
    by_name_.emplace(signal.info.hier_name, signals_.size());
    signals_.push_back(std::move(signal));
  }
}

std::optional<size_t> IndexedWaveform::signal_index(
    const std::string& hier_name) const {
  auto it = by_name_.find(hier_name);
  if (it == by_name_.end()) return std::nullopt;
  return it->second;
}

BlockCache::BlockPtr IndexedWaveform::load_block(size_t signal_index,
                                                 size_t block_index) const {
  // HGDB_REQUIRES(mutex_): the caller passes a *canonical* signal index,
  // so aliased names share cache entries as well as on-disk blocks.
  const BlockCache::Key key{static_cast<uint32_t>(signal_index),
                            static_cast<uint32_t>(block_index)};
  if (auto cached = cache_.lookup(key)) {
    obs_->hits->add(1);
    return cached;
  }
  obs_->misses->add(1);
  const auto t0 = std::chrono::steady_clock::now();

  const auto& signal = signals_[signal_index];
  const auto& info = signal.blocks[block_index];
  const char* payload;
  {
    HGDB_TRACE_SPAN_VAR(read_span, "wvx", "block_read");
    read_span.set_arg(info.payload_bytes);
    payload = storage_->view(info.file_offset, info.payload_bytes, scratch_);
    // Integrity gate: verified once per load; cache hits skip it.
    if (has_checksums_) {
      const uint32_t actual = common::crc32(payload, info.payload_bytes);
      if (actual != info.crc32) {
        throw WvxError(
            WvxFault::kChecksum,
            "wvx: checksum mismatch in '" + path_ + "' (signal '" +
                signal.info.hier_name + "', block " +
                std::to_string(block_index) + " at offset " +
                std::to_string(info.file_offset) + ")");
      }
    }
  }

  auto block = std::make_shared<BlockCache::Block>();
  {
    HGDB_TRACE_SPAN_VAR(decode_span, "wvx", "block_decode");
    decode_span.set_arg(info.count);
    codec_->decode(payload, info.payload_bytes, info.count, signal.info.width,
                   *block);
  }
  const uint64_t before_evictions = cache_.stats().evictions;
  cache_.insert(key, block);
  obs_->evictions->add(cache_.stats().evictions - before_evictions);
  obs_->resident->set(static_cast<int64_t>(cache_.stats().resident));
  obs_->load_ns->record(static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count()));
  return block;
}

BitVector IndexedWaveform::value_at(size_t index, uint64_t time) const {
  common::LockGuard lock(mutex_);
  const auto& signal = signals_[signals_[index].canonical];
  const auto& directory = signal.blocks;
  // Last block whose first entry is at or before `time`.
  auto it = std::upper_bound(
      directory.begin(), directory.end(), time,
      [](uint64_t t, const BlockInfo& block) { return t < block.start_time; });
  if (it == directory.begin()) return BitVector(signal.info.width, 0);
  const size_t block_index =
      static_cast<size_t>(std::distance(directory.begin(), it)) - 1;
  auto block = load_block(signals_[index].canonical, block_index);
  // Last entry with entry.time <= time. For a well-formed index the first
  // entry equals start_time so one always exists; a corrupt directory whose
  // start_time understates the payload must not walk before begin().
  auto entry = std::upper_bound(
      block->begin(), block->end(), time,
      [](uint64_t t, const auto& change) { return t < change.first; });
  if (entry == block->begin()) return BitVector(signal.info.width, 0);
  return std::prev(entry)->second;
}

std::vector<uint64_t> IndexedWaveform::rising_edges(size_t index) const {
  common::LockGuard lock(mutex_);
  const size_t canonical = signals_[index].canonical;
  std::vector<uint64_t> out;
  bool previous = false;
  for (size_t b = 0; b < signals_[canonical].blocks.size(); ++b) {
    auto block = load_block(canonical, b);
    for (const auto& [time, value] : *block) {
      const bool current = value.to_bool();
      if (current && !previous) out.push_back(time);
      previous = current;
    }
  }
  return out;
}

CacheStats IndexedWaveform::cache_stats() const {
  common::LockGuard lock(mutex_);
  return cache_.stats();
}

std::optional<IndexedWaveform::BlockFault> IndexedWaveform::verify_blocks()
    const {
  common::LockGuard lock(mutex_);
  for (size_t s = 0; s < signals_.size(); ++s) {
    if (signals_[s].canonical != s) continue;  // stream verified once
    for (size_t b = 0; b < signals_[s].blocks.size(); ++b) {
      try {
        load_block(s, b);
      } catch (const WvxError& error) {
        return BlockFault{signals_[s].info.hier_name, b,
                          signals_[s].blocks[b].file_offset, error.fault(),
                          error.what()};
      } catch (const std::exception& error) {
        return BlockFault{signals_[s].info.hier_name, b,
                          signals_[s].blocks[b].file_offset, WvxFault::kIo,
                          error.what()};
      }
    }
  }
  return std::nullopt;
}

}  // namespace hgdb::waveform
