#include "waveform/indexed_waveform.h"

#include <algorithm>
#include <stdexcept>

#include "common/crc32.h"

namespace hgdb::waveform {

using common::BitVector;

namespace {

class Reader {
 public:
  Reader(std::ifstream& in, const std::string& path) : in_(in), path_(path) {}

  uint32_t u32() {
    unsigned char bytes[4];
    read(bytes, 4);
    uint32_t out = 0;
    for (int i = 3; i >= 0; --i) out = (out << 8) | bytes[i];
    return out;
  }

  uint64_t u64() {
    unsigned char bytes[8];
    read(bytes, 8);
    uint64_t out = 0;
    for (int i = 7; i >= 0; --i) out = (out << 8) | bytes[i];
    return out;
  }

  std::string str(size_t length) {
    std::string out(length, '\0');
    read(out.data(), length);
    return out;
  }

  void read(void* dst, size_t bytes) {
    in_.read(static_cast<char*>(dst), static_cast<std::streamsize>(bytes));
    if (static_cast<size_t>(in_.gcount()) != bytes) {
      throw std::runtime_error("wvx: truncated index file '" + path_ + "'");
    }
  }

 private:
  std::ifstream& in_;
  const std::string& path_;
};

}  // namespace

namespace {

/// Sanity bounds for untrusted on-disk metadata: a corrupt or crafted
/// index must fail with a clean error, not an unchecked huge allocation.
constexpr uint32_t kMaxSignalWidth = 1u << 20;   // 1M bits
constexpr uint32_t kMaxNameLength = 1u << 16;

[[noreturn]] void corrupt(const std::string& path, const std::string& what) {
  throw std::runtime_error("wvx: corrupt index '" + path + "': " + what);
}

}  // namespace

IndexedWaveform::IndexedWaveform(const std::string& path, size_t cache_blocks)
    : path_(path),
      file_(path, std::ios::binary),
      cache_(cache_blocks) {
  if (!file_) {
    throw std::runtime_error("wvx: cannot open index file '" + path + "'");
  }
  file_.seekg(0, std::ios::end);
  const uint64_t file_size = static_cast<uint64_t>(file_.tellg());
  file_.seekg(0);
  Reader reader(file_, path_);
  if (reader.u32() != kWvxMagic) {
    throw std::runtime_error("wvx: '" + path + "' is not a waveform index (bad magic)");
  }
  const uint32_t version = reader.u32();
  if (version < kWvxMinVersion || version > kWvxVersion) {
    throw std::runtime_error("wvx: unsupported index version " +
                             std::to_string(version) + " in '" + path + "'");
  }
  // v2 adds a flags word after the version; v1 files have none and no
  // per-block checksums.
  const uint32_t flags = version >= 2 ? reader.u32() : 0;
  has_checksums_ = (flags & kWvxFlagBlockChecksums) != 0;
  const uint64_t header_size =
      version >= 2 ? kWvxHeaderSizeV2 : kWvxHeaderSizeV1;
  const uint64_t footer_offset = reader.u64();
  max_time_ = reader.u64();
  const uint64_t signal_count = reader.u64();
  if (footer_offset == 0) {
    throw std::runtime_error("wvx: '" + path +
                             "' was never finalized (missing footer)");
  }
  if (footer_offset < header_size || footer_offset > file_size) {
    corrupt(path_, "footer offset outside the file");
  }
  // Every signal needs >= 16 footer bytes, every block >= 28: cheap
  // a-priori caps so corrupt counts fail before any reserve/allocation.
  if (signal_count > (file_size - footer_offset) / 16) {
    corrupt(path_, "signal count exceeds footer size");
  }
  const uint64_t max_total_blocks = (file_size - footer_offset) / 28;
  file_.seekg(static_cast<std::streamoff>(footer_offset));
  signals_.reserve(signal_count);
  for (uint64_t i = 0; i < signal_count; ++i) {
    IndexedSignal signal;
    const uint32_t name_len = reader.u32();
    if (name_len > kMaxNameLength) corrupt(path_, "oversized signal name");
    signal.info.hier_name = reader.str(name_len);
    signal.info.width = reader.u32();
    if (signal.info.width == 0 || signal.info.width > kMaxSignalWidth) {
      corrupt(path_, "implausible signal width");
    }
    signal.value_bytes = wvx_value_bytes(signal.info.width);
    const uint64_t stride = wvx_entry_stride(signal.info.width);
    const uint64_t block_count = reader.u64();
    if (total_blocks_ + block_count > max_total_blocks) {
      corrupt(path_, "block count exceeds footer size");
    }
    signal.blocks.reserve(block_count);
    for (uint64_t b = 0; b < block_count; ++b) {
      BlockInfo block;
      block.start_time = reader.u64();
      block.end_time = reader.u64();
      block.file_offset = reader.u64();
      block.count = reader.u32();
      if (has_checksums_) block.crc32 = reader.u32();
      // Block payloads live strictly between the header and the footer.
      if (block.count == 0 || block.file_offset < header_size ||
          block.file_offset > footer_offset ||
          static_cast<uint64_t>(block.count) * stride >
              footer_offset - block.file_offset) {
        corrupt(path_, "block outside the data region");
      }
      signal.blocks.push_back(block);
    }
    total_blocks_ += block_count;
    // emplace (first wins) to match VcdTrace's duplicate-name resolution.
    by_name_.emplace(signal.info.hier_name, signals_.size());
    signals_.push_back(std::move(signal));
  }
}

std::optional<size_t> IndexedWaveform::signal_index(
    const std::string& hier_name) const {
  auto it = by_name_.find(hier_name);
  if (it == by_name_.end()) return std::nullopt;
  return it->second;
}

BlockCache::BlockPtr IndexedWaveform::load_block(size_t signal_index,
                                                 size_t block_index) const {
  // Caller holds mutex_.
  const BlockCache::Key key{static_cast<uint32_t>(signal_index),
                            static_cast<uint32_t>(block_index)};
  if (auto cached = cache_.lookup(key)) return cached;

  const auto& signal = signals_[signal_index];
  const auto& info = signal.blocks[block_index];
  const uint64_t stride = wvx_entry_stride(signal.info.width);
  std::vector<char> raw(static_cast<size_t>(info.count) * stride);
  file_.seekg(static_cast<std::streamoff>(info.file_offset));
  file_.read(raw.data(), static_cast<std::streamsize>(raw.size()));
  if (static_cast<size_t>(file_.gcount()) != raw.size()) {
    throw std::runtime_error("wvx: truncated block in '" + path_ + "'");
  }
  // Integrity gate: verified once per load; cache hits skip it.
  if (has_checksums_) {
    const uint32_t actual = common::crc32(raw.data(), raw.size());
    if (actual != info.crc32) {
      throw std::runtime_error(
          "wvx: checksum mismatch in '" + path_ + "' (signal '" +
          signal.info.hier_name + "', block " + std::to_string(block_index) +
          " at offset " + std::to_string(info.file_offset) + ")");
    }
  }

  auto block = std::make_shared<BlockCache::Block>();
  block->reserve(info.count);
  const uint32_t width = signal.info.width;
  const size_t num_words = (width + 63) / 64;
  for (uint32_t entry = 0; entry < info.count; ++entry) {
    const unsigned char* base =
        reinterpret_cast<const unsigned char*>(raw.data()) + entry * stride;
    uint64_t time = 0;
    for (int i = 7; i >= 0; --i) time = (time << 8) | base[i];
    std::vector<uint64_t> words(num_words, 0);
    for (uint32_t byte = 0; byte < signal.value_bytes; ++byte) {
      words[byte / 8] |= static_cast<uint64_t>(base[8 + byte]) << (8 * (byte % 8));
    }
    block->emplace_back(time, BitVector::from_words(width, std::move(words)));
  }
  cache_.insert(key, block);
  return block;
}

BitVector IndexedWaveform::value_at(size_t index, uint64_t time) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto& signal = signals_[index];
  const auto& directory = signal.blocks;
  // Last block whose first entry is at or before `time`.
  auto it = std::upper_bound(
      directory.begin(), directory.end(), time,
      [](uint64_t t, const BlockInfo& block) { return t < block.start_time; });
  if (it == directory.begin()) return BitVector(signal.info.width, 0);
  const size_t block_index =
      static_cast<size_t>(std::distance(directory.begin(), it)) - 1;
  auto block = load_block(index, block_index);
  // Last entry with entry.time <= time. For a well-formed index the first
  // entry equals start_time so one always exists; a corrupt directory whose
  // start_time understates the payload must not walk before begin().
  auto entry = std::upper_bound(
      block->begin(), block->end(), time,
      [](uint64_t t, const auto& change) { return t < change.first; });
  if (entry == block->begin()) return BitVector(signal.info.width, 0);
  return std::prev(entry)->second;
}

std::vector<uint64_t> IndexedWaveform::rising_edges(size_t index) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<uint64_t> out;
  bool previous = false;
  for (size_t b = 0; b < signals_[index].blocks.size(); ++b) {
    auto block = load_block(index, b);
    for (const auto& [time, value] : *block) {
      const bool current = value.to_bool();
      if (current && !previous) out.push_back(time);
      previous = current;
    }
  }
  return out;
}

CacheStats IndexedWaveform::cache_stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return cache_.stats();
}

std::optional<IndexedWaveform::BlockFault> IndexedWaveform::verify_blocks()
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (size_t s = 0; s < signals_.size(); ++s) {
    for (size_t b = 0; b < signals_[s].blocks.size(); ++b) {
      try {
        load_block(s, b);
      } catch (const std::exception& error) {
        return BlockFault{signals_[s].info.hier_name, b,
                          signals_[s].blocks[b].file_offset, error.what()};
      }
    }
  }
  return std::nullopt;
}

}  // namespace hgdb::waveform
