#include "waveform/indexed_waveform.h"

#include <algorithm>
#include <chrono>

#include "common/crc32.h"
#include "obs/trace.h"
#include "waveform/manifest.h"

namespace hgdb::waveform {

using common::BitVector;

namespace {

/// Bounds-checked little-endian parser over an in-memory footer image.
/// Running past the end means the writer died mid-footer (or the file was
/// cut): a typed truncated-directory fault, not a generic parse error.
class MemReader {
 public:
  MemReader(const uint8_t* data, size_t size, const std::string& path)
      : p_(data), end_(data + size), path_(path) {}

  uint8_t u8() {
    need(1);
    return *p_++;
  }

  uint32_t u32() {
    need(4);
    uint32_t out = 0;
    for (int i = 3; i >= 0; --i) out = (out << 8) | p_[i];
    p_ += 4;
    return out;
  }

  uint64_t u64() {
    need(8);
    uint64_t out = 0;
    for (int i = 7; i >= 0; --i) out = (out << 8) | p_[i];
    p_ += 8;
    return out;
  }

  std::string str(size_t length) {
    need(length);
    std::string out(reinterpret_cast<const char*>(p_), length);
    p_ += length;
    return out;
  }

 private:
  void need(size_t bytes) {
    if (static_cast<size_t>(end_ - p_) < bytes) {
      throw WvxError(WvxFault::kTruncatedDirectory,
                     "wvx: truncated signal directory in '" + path_ +
                         "' (footer ends mid-entry)");
    }
  }

  const uint8_t* p_;
  const uint8_t* end_;
  const std::string& path_;
};

/// Sanity bounds for untrusted on-disk metadata: a corrupt or crafted
/// index must fail with a clean error, not an unchecked huge allocation.
constexpr uint32_t kMaxSignalWidth = 1u << 20;   // 1M bits
constexpr uint32_t kMaxNameLength = 1u << 16;
/// Largest possible well-formed manifest (every field at its cap); a
/// bigger file can't parse, so don't slurp it into memory first.
constexpr uint64_t kMaxManifestBytes =
    static_cast<uint64_t>(kWvxMaxShards) * (kWvxMaxShardNameLength + 4) + 36;

[[noreturn]] void corrupt(const std::string& path, const std::string& what) {
  throw WvxError(WvxFault::kCorrupt,
                 "wvx: corrupt index '" + path + "': " + what);
}

/// Directory prefix of `path` (with trailing '/'), "" for a bare name.
/// Shard names are resolved relative to their manifest.
std::string dir_of(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? std::string() : path.substr(0, slash + 1);
}

}  // namespace

IndexedWaveform::IndexedWaveform(const std::string& path, size_t cache_blocks)
    : IndexedWaveform(path, WaveformOpenOptions{cache_blocks, IoMode::kAuto}) {}

IndexedWaveform::IndexedWaveform(const std::string& path,
                                 const WaveformOpenOptions& options)
    : path_(path),
      cache_(options.cache_blocks),
      obs_(std::make_unique<ObsMetrics>()) {
  auto& registry = obs::MetricsRegistry::global();
  obs_->hits = &registry.counter("waveform.block_cache.hits");
  obs_->misses = &registry.counter("waveform.block_cache.misses");
  obs_->evictions = &registry.counter("waveform.block_cache.evictions");
  obs_->resident = &registry.gauge("waveform.block_cache.resident");
  obs_->load_ns = &registry.histogram("waveform.block_load_ns");

  // The constructor owns the object exclusively, but load_shard() and the
  // members it touches are annotated for the concurrent query path — hold
  // the (uncontended) lock so the analysis covers open-time parsing too.
  common::LockGuard lock(mutex_);
  auto primary = open_storage(path, options.io_mode);
  const uint64_t primary_size = primary->size();
  std::string sniff_scratch;
  const char* head = primary_size >= 4
                         ? primary->view(0, 4, sniff_scratch)
                         : nullptr;
  if (head != nullptr && is_manifest_bytes(head, 4)) {
    // Sharded dump: `path` is the manifest; every signal lives in one of
    // the shard files it names. Shards share this instance's BlockCache,
    // so options.cache_blocks bounds residency for the whole dump.
    sharded_ = true;
    if (primary_size > kMaxManifestBytes) {
      corrupt(path_, "manifest larger than any well-formed manifest");
    }
    const char* image = primary->view(
        0, static_cast<size_t>(primary_size), sniff_scratch);
    const Manifest manifest =
        parse_manifest(image, static_cast<size_t>(primary_size));
    primary.reset();  // the manifest file itself holds no block data
    const std::string dir = dir_of(path);
    shards_.reserve(manifest.shards.size());
    for (const auto& name : manifest.shards) {
      const std::string shard_path = dir + name;
      shards_.push_back(open_storage(shard_path, options.io_mode));
      shard_paths_.push_back(shard_path);
    }
    for (uint32_t k = 0; k < shards_.size(); ++k) load_shard(k);
    if (manifest.signal_count != signals_.size()) {
      corrupt(path_, "manifest signal count disagrees with its shards");
    }
    max_time_ = std::max(max_time_, manifest.max_time);
  } else {
    shards_.push_back(std::move(primary));
    shard_paths_.push_back(path);
    load_shard(0);
  }
  io_kind_ = shards_.front()->kind();
}

IndexedWaveform::~IndexedWaveform() {
  // Settle this instance's contribution to the process-global resident
  // gauge; other open readers keep theirs.
  common::LockGuard lock(mutex_);
  obs_->resident->add(-resident_reported_);
}

void IndexedWaveform::load_shard(uint32_t shard_index) {
  StorageBackend& storage = *shards_[shard_index];
  const std::string& path = shard_paths_[shard_index];
  const size_t base = signals_.size();
  const uint64_t file_size = storage.size();
  if (file_size < kWvxHeaderSizeV1) {
    throw WvxError(WvxFault::kBadMagic,
                   "wvx: '" + path + "' is not a waveform index (too small)");
  }
  // Header: magic + version first, the rest depends on the version.
  std::string scratch;
  uint32_t version = 0;
  {
    const auto* head = reinterpret_cast<const uint8_t*>(
        storage.view(0, kWvxHeaderSizeV1, scratch));
    MemReader reader(head, kWvxHeaderSizeV1, path);
    if (reader.u32() != kWvxMagic) {
      throw WvxError(WvxFault::kBadMagic,
                     "wvx: '" + path + "' is not a waveform index (bad magic)");
    }
    version = reader.u32();
  }
  if (version < kWvxMinVersion || version > kWvxVersion) {
    throw WvxError(WvxFault::kBadVersion,
                   "wvx: unsupported index version " + std::to_string(version) +
                       " in '" + path + "'");
  }
  version_ = std::max(version_, version);
  // v2+ adds a flags word after the version; v1 files have none, no
  // per-block checksums and the fixed codec.
  const uint64_t header_size =
      version >= 2 ? kWvxHeaderSizeV2 : kWvxHeaderSizeV1;
  if (file_size < header_size) {
    throw WvxError(WvxFault::kTruncatedDirectory,
                   "wvx: '" + path + "' ends inside the header");
  }
  const auto* head = reinterpret_cast<const uint8_t*>(
      storage.view(8, header_size - 8, scratch));
  MemReader reader(head, header_size - 8, path);
  const uint32_t flags = version >= 2 ? reader.u32() : 0;
  const bool checksums = (flags & kWvxFlagBlockChecksums) != 0;
  shard_checksums_.push_back(checksums);
  has_checksums_ = has_checksums_ && checksums;
  const BlockCodec* default_codec = &codec_for_flags(flags);
  if (codec_ == nullptr) codec_ = default_codec;
  const uint64_t footer_offset = reader.u64();
  max_time_ = std::max(max_time_, reader.u64());
  const uint64_t signal_count = reader.u64();
  if (footer_offset == 0) {
    throw WvxError(WvxFault::kNeverFinalized,
                   "wvx: '" + path + "' was never finalized (missing footer)");
  }
  if (footer_offset < header_size || footer_offset > file_size) {
    corrupt(path, "footer offset outside the file");
  }

  // The footer is small (O(signals + blocks)): read it whole, parse from
  // memory. Cheap a-priori caps so corrupt counts fail before any
  // allocation: every v1/v2 signal entry needs >= 16 footer bytes; in v3+
  // an *alias* entry can be as small as 13 (name_len + 1-char name +
  // width + canonical, no directory).
  const uint64_t footer_size = file_size - footer_offset;
  const bool v3 = version >= 3;
  const bool v4 = version >= 4;
  if (signal_count > footer_size / (v3 ? 13 : 16)) {
    corrupt(path, "signal count exceeds footer size");
  }
  const uint64_t max_shard_blocks = footer_size / 28;
  uint64_t shard_blocks = 0;
  std::string footer_scratch;
  const auto* footer = reinterpret_cast<const uint8_t*>(storage.view(
      footer_offset, static_cast<size_t>(footer_size), footer_scratch));
  MemReader dir(footer, static_cast<size_t>(footer_size), path);
  signals_.reserve(base + signal_count);
  for (uint64_t i = 0; i < signal_count; ++i) {
    IndexedSignal signal;
    signal.shard = shard_index;
    const uint32_t name_len = dir.u32();
    if (name_len > kMaxNameLength) corrupt(path, "oversized signal name");
    signal.info.hier_name = dir.str(name_len);
    signal.info.width = dir.u32();
    if (signal.info.width == 0 || signal.info.width > kMaxSignalWidth) {
      corrupt(path, "implausible signal width");
    }
    signal.value_bytes = wvx_value_bytes(signal.info.width);
    // Canonical indexes are shard-local on disk; rebase into the global
    // table (shards hold disjoint, contiguous signal ranges).
    signal.canonical = base + i;
    if (v3) {
      const uint32_t canonical = dir.u32();
      if (canonical > i) corrupt(path, "alias points forward");
      signal.canonical = base + canonical;
      if (canonical != i) {
        if (signals_[base + canonical].canonical != base + canonical) {
          corrupt(path, "alias of an alias");
        }
        signal.codec = signals_[base + canonical].codec;
        ++alias_count_;
        // emplace (first wins) to match VcdTrace's duplicate-name
        // resolution.
        by_name_.emplace(signal.info.hier_name, signals_.size());
        signals_.push_back(std::move(signal));
        continue;  // aliases carry no directory of their own
      }
    }
    // v4 records the stream's codec per signal (auto-selection); earlier
    // versions encode one codec for the whole file in the header flags.
    if (v4) {
      const uint8_t codec = dir.u8();
      signal.codec = codec_by_id(codec);
      if (signal.codec == nullptr) {
        corrupt(path, "unknown codec id " + std::to_string(codec));
      }
    } else {
      signal.codec = default_codec;
    }
    const uint64_t stride = wvx_entry_stride(signal.info.width);
    const uint64_t block_count = dir.u64();
    if (shard_blocks + block_count > max_shard_blocks) {
      corrupt(path, "block count exceeds footer size");
    }
    shard_blocks += block_count;
    signal.blocks.reserve(block_count);
    for (uint64_t b = 0; b < block_count; ++b) {
      BlockInfo block;
      block.start_time = dir.u64();
      block.end_time = dir.u64();
      block.file_offset = dir.u64();
      block.count = dir.u32();
      // v3 directories record the encoded size (variable-size codecs);
      // v1/v2 blocks are fixed-stride, so the size is derived. u64 math
      // throughout: a corrupt count must not truncate through the cast.
      const uint64_t payload =
          v3 ? dir.u32() : static_cast<uint64_t>(block.count) * stride;
      if (checksums) block.crc32 = dir.u32();
      // Block payloads live strictly between the header and the footer.
      if (block.count == 0 || payload == 0 ||
          block.file_offset < header_size ||
          block.file_offset > footer_offset ||
          payload > footer_offset - block.file_offset ||
          payload > UINT32_MAX) {
        corrupt(path, "block outside the data region");
      }
      block.payload_bytes = static_cast<uint32_t>(payload);
      signal.blocks.push_back(block);
    }
    by_name_.emplace(signal.info.hier_name, signals_.size());
    signals_.push_back(std::move(signal));
  }
  total_blocks_ += shard_blocks;
}

std::optional<size_t> IndexedWaveform::signal_index(
    const std::string& hier_name) const {
  auto it = by_name_.find(hier_name);
  if (it == by_name_.end()) return std::nullopt;
  return it->second;
}

BlockCache::BlockPtr IndexedWaveform::load_block(size_t signal_index,
                                                 size_t block_index) const {
  // HGDB_REQUIRES(mutex_): the caller passes a *canonical* signal index,
  // so aliased names share cache entries as well as on-disk blocks. The
  // key's signal index is global (rebased across shards), so one cache
  // serves every shard without collisions.
  const BlockCache::Key key{static_cast<uint32_t>(signal_index),
                            static_cast<uint32_t>(block_index)};
  if (auto cached = cache_.lookup(key)) {
    obs_->hits->add(1);
    return cached;
  }
  obs_->misses->add(1);
  const auto t0 = std::chrono::steady_clock::now();

  const auto& signal = signals_[signal_index];
  const auto& info = signal.blocks[block_index];
  StorageBackend& storage = *shards_[signal.shard];
  const std::string& shard_path = shard_paths_[signal.shard];
  const char* payload;
  {
    HGDB_TRACE_SPAN_VAR(read_span, "wvx", "block_read");
    read_span.set_arg(info.payload_bytes);
    payload = storage.view(info.file_offset, info.payload_bytes, scratch_);
    // Integrity gate: verified once per load; cache hits skip it.
    if (shard_checksums_[signal.shard]) {
      const uint32_t actual = common::crc32(payload, info.payload_bytes);
      if (actual != info.crc32) {
        throw WvxError(
            WvxFault::kChecksum,
            "wvx: checksum mismatch in '" + shard_path + "' (signal '" +
                signal.info.hier_name + "', block " +
                std::to_string(block_index) + " at offset " +
                std::to_string(info.file_offset) + ")");
      }
    }
  }

  auto block = std::make_shared<BlockCache::Block>();
  {
    HGDB_TRACE_SPAN_VAR(decode_span, "wvx", "block_decode");
    decode_span.set_arg(info.count);
    signal.codec->decode(payload, info.payload_bytes, info.count,
                         signal.info.width, *block);
  }
  const uint64_t before_evictions = cache_.stats().evictions;
  cache_.insert(key, block);
  obs_->evictions->add(cache_.stats().evictions - before_evictions);
  // The gauge is shared by every open reader in the process: report this
  // instance's residency as a delta so instances aggregate instead of
  // overwriting each other's contribution.
  const int64_t resident = static_cast<int64_t>(cache_.stats().resident);
  obs_->resident->add(resident - resident_reported_);
  resident_reported_ = resident;
  obs_->load_ns->record(static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count()));
  return block;
}

BitVector IndexedWaveform::value_at(size_t index, uint64_t time) const {
  common::LockGuard lock(mutex_);
  const auto& signal = signals_[signals_[index].canonical];
  const auto& directory = signal.blocks;
  // Last block whose first entry is at or before `time`.
  auto it = std::upper_bound(
      directory.begin(), directory.end(), time,
      [](uint64_t t, const BlockInfo& block) { return t < block.start_time; });
  if (it == directory.begin()) return BitVector(signal.info.width, 0);
  const size_t block_index =
      static_cast<size_t>(std::distance(directory.begin(), it)) - 1;
  auto block = load_block(signals_[index].canonical, block_index);
  // Last entry with entry.time <= time. For a well-formed index the first
  // entry equals start_time so one always exists; a corrupt directory whose
  // start_time understates the payload must not walk before begin().
  auto entry = std::upper_bound(
      block->begin(), block->end(), time,
      [](uint64_t t, const auto& change) { return t < change.first; });
  if (entry == block->begin()) return BitVector(signal.info.width, 0);
  return std::prev(entry)->second;
}

std::vector<uint64_t> IndexedWaveform::rising_edges(size_t index) const {
  common::LockGuard lock(mutex_);
  const size_t canonical = signals_[index].canonical;
  std::vector<uint64_t> out;
  bool previous = false;
  for (size_t b = 0; b < signals_[canonical].blocks.size(); ++b) {
    auto block = load_block(canonical, b);
    for (const auto& [time, value] : *block) {
      const bool current = value.to_bool();
      if (current && !previous) out.push_back(time);
      previous = current;
    }
  }
  return out;
}

CacheStats IndexedWaveform::cache_stats() const {
  common::LockGuard lock(mutex_);
  return cache_.stats();
}

std::optional<IndexedWaveform::BlockFault> IndexedWaveform::verify_blocks()
    const {
  common::LockGuard lock(mutex_);
  for (size_t s = 0; s < signals_.size(); ++s) {
    if (signals_[s].canonical != s) continue;  // stream verified once
    for (size_t b = 0; b < signals_[s].blocks.size(); ++b) {
      try {
        load_block(s, b);
      } catch (const WvxError& error) {
        return BlockFault{signals_[s].info.hier_name, b,
                          signals_[s].blocks[b].file_offset, error.fault(),
                          error.what()};
      } catch (const std::exception& error) {
        return BlockFault{signals_[s].info.hier_name, b,
                          signals_[s].blocks[b].file_offset, WvxFault::kIo,
                          error.what()};
      }
    }
  }
  return std::nullopt;
}

}  // namespace hgdb::waveform
