#ifndef HGDB_WAVEFORM_WVX_VERIFY_H
#define HGDB_WAVEFORM_WVX_VERIFY_H

#include <cstdint>
#include <string>

#include "waveform/index_format.h"

namespace hgdb::waveform {

/// Result of an offline .wvx integrity check (`hgdb-cli wvx-verify`).
struct VerifyResult {
  bool ok = false;
  bool checksummed = false;  ///< file carries per-block CRC32s
  uint32_t version = 0;      ///< on-disk format version (0 = unreadable)
  std::string codec;         ///< block codec ("fixed" / "delta"; "" = unreadable)
  uint64_t signals = 0;
  uint64_t blocks = 0;
  uint64_t aliases = 0;  ///< signals sharing another signal's stream (v3)
  uint32_t shards = 0;   ///< shard files behind a manifest (0 = single file)
  /// When !ok: the typed fault class (truncated-directory, checksum-
  /// mismatch, ...) and what went wrong. Structural errors (bad
  /// header/footer) leave `signal` empty; block faults name the first
  /// corrupt block.
  WvxFault fault = WvxFault::kCorrupt;
  std::string error;
  std::string signal;
  uint64_t block_index = 0;
  uint64_t file_offset = 0;
};

/// Opens `path` and reads every block, verifying checksums when present.
/// Never throws: all failures are reported through the result.
VerifyResult verify_index(const std::string& path);

/// Human-readable one-paragraph rendering of a VerifyResult.
std::string describe(const VerifyResult& result, const std::string& path);

}  // namespace hgdb::waveform

#endif  // HGDB_WAVEFORM_WVX_VERIFY_H
