#ifndef HGDB_WAVEFORM_INDEX_WRITER_H
#define HGDB_WAVEFORM_INDEX_WRITER_H

#include <memory>
#include <string>
#include <vector>

#include "waveform/block_codec.h"
#include "waveform/index_format.h"
#include "waveform/vcd_stream_parser.h"

namespace hgdb::waveform {

/// Builds a .wvx index file from an ordered trace-event stream (IndexSink).
/// Two producers feed it: a VcdStreamParser (VCD -> index conversion, which
/// never materializes the trace — resident state is one partially-filled
/// block per signal plus the growing, small directory) and sim::VcdWriter's
/// direct dump path (simulator -> index, no intermediate VCD text).
///
/// The on-disk version and block encoding are options: v4 (default) with
/// the varint/delta codec, alias dedup and per-signal codec auto-selection
/// (clock-like 1-bit streams get the rle toggle codec), or v3 / v2 for
/// compatibility with older readers. Blocks are serialized through the
/// BlockCodec seam, so the writer never touches entry layout itself.
class IndexWriter final : public VcdEventSink {
 public:
  explicit IndexWriter(const std::string& path, IndexWriterOptions options = {});
  ~IndexWriter() override;

  IndexWriter(const IndexWriter&) = delete;
  IndexWriter& operator=(const IndexWriter&) = delete;

  // -- IndexSink / VcdEventSink -------------------------------------------------
  void on_signal(size_t id, const SignalInfo& info) override;
  void on_alias(size_t id, size_t canonical_id) override;
  void on_change(size_t id, uint64_t time,
                 const common::BitVector& value) override;
  void on_finish(uint64_t max_time) override;

  /// True once on_finish() wrote the footer and closed the file.
  [[nodiscard]] bool finished() const { return finished_; }
  [[nodiscard]] size_t signal_count() const { return signals_.size(); }
  [[nodiscard]] uint64_t blocks_written() const { return blocks_written_; }
  /// Signals stored as references into another signal's change stream.
  [[nodiscard]] size_t aliases_deduped() const { return aliases_deduped_; }
  [[nodiscard]] const IndexWriterOptions& options() const { return options_; }

 private:
  struct Pending {
    std::vector<uint64_t> times;
    std::vector<common::BitVector> values;
  };

  void flush_block(size_t id);

  std::string path_;
  IndexWriterOptions options_;
  const BlockCodec* codec_;
  /// I/O strategy behind the block/directory writes (options_.io_mode).
  std::unique_ptr<WriteBackend> out_;
  std::string buffer_;  ///< scratch for block serialization + checksum
  std::vector<IndexedSignal> signals_;
  std::vector<Pending> pending_;
  /// v2 / no-dedup mode: per canonical id, the alias ids whose streams the
  /// writer fans the changes out to (the legacy duplicate layout).
  std::vector<std::vector<size_t>> fanout_;
  uint64_t blocks_written_ = 0;
  size_t aliases_deduped_ = 0;
  bool finished_ = false;
};

/// Streams `vcd_path` through a VcdStreamParser into an IndexWriter.
/// Returns the number of indexed signals.
size_t convert_vcd_to_index(const std::string& vcd_path,
                            const std::string& index_path,
                            IndexWriterOptions options = {});

}  // namespace hgdb::waveform

#endif  // HGDB_WAVEFORM_INDEX_WRITER_H
