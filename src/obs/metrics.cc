#include "obs/metrics.h"

#include <algorithm>

namespace hgdb::obs {

using common::Json;

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

namespace {

/// Upper bound of the bucket holding the q-quantile sample (0 when empty);
/// rank = ceil(q * count), clamped to at least the first sample.
uint64_t bucket_quantile(const std::array<uint64_t, Histogram::kBuckets>& b,
                         uint64_t count, double q) {
  if (count == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const auto rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(q * static_cast<double>(count) + 0.999999));
  uint64_t cumulative = 0;
  for (size_t i = 0; i < Histogram::kBuckets; ++i) {
    cumulative += b[i];
    if (cumulative >= rank) return Histogram::bucket_upper_bound(i);
  }
  return Histogram::bucket_upper_bound(Histogram::kBuckets - 1);
}

}  // namespace

uint64_t Histogram::percentile(double q) const {
  const Snapshot snap = snapshot();
  return bucket_quantile(snap.buckets, snap.count, q);
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot snap;
  for (size_t i = 0; i < kBuckets; ++i) {
    snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    snap.count += snap.buckets[i];
  }
  snap.sum = sum_.load(std::memory_order_relaxed);
  snap.p50 = bucket_quantile(snap.buckets, snap.count, 0.50);
  snap.p95 = bucket_quantile(snap.buckets, snap.count, 0.95);
  snap.p99 = bucket_quantile(snap.buckets, snap.count, 0.99);
  return snap;
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry instance;
  return instance;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  common::LockGuard guard(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  common::LockGuard guard(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  common::LockGuard guard(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

void MetricsRegistry::remove(std::string_view name) {
  common::LockGuard guard(mutex_);
  if (auto it = counters_.find(name); it != counters_.end()) {
    counters_.erase(it);
  }
  if (auto it = gauges_.find(name); it != gauges_.end()) {
    gauges_.erase(it);
  }
  if (auto it = histograms_.find(name); it != histograms_.end()) {
    histograms_.erase(it);
  }
}

size_t MetricsRegistry::size() const {
  common::LockGuard guard(mutex_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

namespace {

/// `runtime.clock-edges` -> `hgdb_runtime_clock_edges`.
std::string prometheus_name(const std::string& name) {
  std::string out = "hgdb_";
  out.reserve(out.size() + name.size());
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

void append_u64(std::string& out, uint64_t v) { out += std::to_string(v); }

}  // namespace

std::string MetricsRegistry::render_prometheus() const {
  common::LockGuard guard(mutex_);
  std::string out;
  for (const auto& [name, counter] : counters_) {
    const std::string prom = prometheus_name(name);
    out += "# TYPE " + prom + " counter\n";
    out += prom + " ";
    append_u64(out, counter->value());
    out += "\n";
  }
  for (const auto& [name, gauge] : gauges_) {
    const std::string prom = prometheus_name(name);
    out += "# TYPE " + prom + " gauge\n";
    out += prom + " " + std::to_string(gauge->value()) + "\n";
  }
  for (const auto& [name, histogram] : histograms_) {
    const std::string prom = prometheus_name(name);
    const auto snap = histogram->snapshot();
    out += "# TYPE " + prom + " histogram\n";
    uint64_t cumulative = 0;
    // Cumulative `le` series; buckets past the last occupied one carry no
    // information beyond +Inf, so stop there to keep the page readable.
    size_t last = 0;
    for (size_t i = 0; i < Histogram::kBuckets; ++i) {
      if (snap.buckets[i] != 0) last = i;
    }
    for (size_t i = 0; i <= last && i + 1 < Histogram::kBuckets; ++i) {
      cumulative += snap.buckets[i];
      out += prom + "_bucket{le=\"";
      append_u64(out, Histogram::bucket_upper_bound(i));
      out += "\"} ";
      append_u64(out, cumulative);
      out += "\n";
    }
    out += prom + "_bucket{le=\"+Inf\"} ";
    append_u64(out, snap.count);
    out += "\n" + prom + "_sum ";
    append_u64(out, snap.sum);
    out += "\n" + prom + "_count ";
    append_u64(out, snap.count);
    out += "\n";
  }
  return out;
}

Json MetricsRegistry::snapshot_json() const {
  common::LockGuard guard(mutex_);
  Json counters = Json::object();
  for (const auto& [name, counter] : counters_) {
    counters[name] = Json(counter->value());
  }
  Json gauges = Json::object();
  for (const auto& [name, gauge] : gauges_) {
    gauges[name] = Json(gauge->value());
  }
  Json histograms = Json::object();
  for (const auto& [name, histogram] : histograms_) {
    const auto snap = histogram->snapshot();
    Json entry = Json::object();
    entry["count"] = Json(snap.count);
    entry["sum"] = Json(snap.sum);
    entry["p50"] = Json(snap.p50);
    entry["p95"] = Json(snap.p95);
    entry["p99"] = Json(snap.p99);
    histograms[name] = std::move(entry);
  }
  Json out = Json::object();
  out["counters"] = std::move(counters);
  out["gauges"] = std::move(gauges);
  out["histograms"] = std::move(histograms);
  return out;
}

}  // namespace hgdb::obs
