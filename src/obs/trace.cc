#include "obs/trace.h"

#include <algorithm>
#include <bit>

#include "common/json.h"

namespace hgdb::obs {

namespace {

/// Small dense thread ordinal for the chrome "tid" field; assigned on
/// first span from each thread, process-wide.
uint32_t thread_ordinal() {
  static std::atomic<uint32_t> next{0};
  thread_local uint32_t ordinal = next.fetch_add(1, std::memory_order_relaxed);
  return ordinal;
}

}  // namespace

TraceRecorder::TraceRecorder(size_t capacity)
    : capacity_(std::bit_ceil(std::max<size_t>(capacity, 2))),
      mask_(capacity_ - 1),
      slots_(new Slot[capacity_]),
      origin_(std::chrono::steady_clock::now()) {}

TraceRecorder& TraceRecorder::global() {
  static TraceRecorder instance;
  return instance;
}

uint64_t TraceRecorder::now_ns() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - origin_)
          .count());
}

void TraceRecorder::clear() {
  // Move the live window past everything written so far; stale slots fail
  // the seq check on readback. Slots keep their payloads (harmless).
  const uint64_t head = head_.load(std::memory_order_acquire);
  base_.store(head, std::memory_order_release);
}

uint64_t TraceRecorder::dropped() const {
  const uint64_t head = head_.load(std::memory_order_relaxed);
  const uint64_t base = base_.load(std::memory_order_relaxed);
  const uint64_t live = head - base;
  return live > capacity_ ? live - capacity_ : 0;
}

void TraceRecorder::write(char phase, const char* category, const char* name,
                          uint64_t ts_ns, uint64_t dur_ns, bool has_arg,
                          uint64_t arg) {
  const uint64_t ticket = head_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[ticket & mask_];
  // Invalidate first so a concurrent reader never stitches the old seq to
  // the new payload; publish with a release store of the new seq.
  slot.seq.store(0, std::memory_order_release);
  slot.category.store(category, std::memory_order_relaxed);
  slot.name.store(name, std::memory_order_relaxed);
  slot.ts_ns.store(ts_ns, std::memory_order_relaxed);
  slot.dur_ns.store(dur_ns, std::memory_order_relaxed);
  slot.arg.store(arg, std::memory_order_relaxed);
  slot.tid.store(thread_ordinal(), std::memory_order_relaxed);
  slot.phase.store(phase, std::memory_order_relaxed);
  slot.has_arg.store(has_arg, std::memory_order_relaxed);
  slot.seq.store(ticket + 1, std::memory_order_release);
  total_.fetch_add(1, std::memory_order_relaxed);
}

void TraceRecorder::record_complete(const char* category, const char* name,
                                    uint64_t ts_ns, uint64_t dur_ns,
                                    bool has_arg, uint64_t arg) {
  write('X', category, name, ts_ns, dur_ns, has_arg, arg);
}

void TraceRecorder::record_instant(const char* category, const char* name,
                                   bool has_arg, uint64_t arg) {
  write('i', category, name, now_ns(), 0, has_arg, arg);
}

const char* TraceRecorder::intern(std::string_view text) {
  common::LockGuard guard(intern_mutex_);
  auto it = interned_.find(text);
  if (it == interned_.end()) it = interned_.emplace(text).first;
  return it->c_str();
}

std::vector<TraceEvent> TraceRecorder::snapshot() const {
  const uint64_t head = head_.load(std::memory_order_acquire);
  const uint64_t base = base_.load(std::memory_order_acquire);
  const uint64_t live = head - base;
  const uint64_t first = live > capacity_ ? head - capacity_ : base;

  std::vector<TraceEvent> out;
  out.reserve(static_cast<size_t>(head - first));
  for (uint64_t ticket = first; ticket < head; ++ticket) {
    const Slot& slot = slots_[ticket & mask_];
    if (slot.seq.load(std::memory_order_acquire) != ticket + 1) {
      continue;  // in-flight or already overwritten by a newer writer
    }
    TraceEvent event;
    event.category = slot.category.load(std::memory_order_relaxed);
    event.name = slot.name.load(std::memory_order_relaxed);
    event.phase = slot.phase.load(std::memory_order_relaxed);
    event.ts_ns = slot.ts_ns.load(std::memory_order_relaxed);
    event.dur_ns = slot.dur_ns.load(std::memory_order_relaxed);
    event.tid = slot.tid.load(std::memory_order_relaxed);
    event.has_arg = slot.has_arg.load(std::memory_order_relaxed);
    event.arg = slot.arg.load(std::memory_order_relaxed);
    // Validate after decoding: a writer that lapped us mid-read bumped seq.
    if (slot.seq.load(std::memory_order_acquire) != ticket + 1) continue;
    if (event.name == nullptr || event.category == nullptr) continue;
    out.push_back(event);
  }
  return out;
}

std::string TraceRecorder::export_chrome_json() const {
  using common::Json;
  auto events = snapshot();
  // chrome://tracing sorts internally, but an ordered file diffs and
  // debugs better.
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.ts_ns < b.ts_ns;
                   });
  Json array = Json::array();
  for (const auto& event : events) {
    Json entry = Json::object();
    entry["name"] = Json(event.name);
    entry["cat"] = Json(event.category);
    entry["ph"] = Json(std::string(1, event.phase));
    // The trace event format wants microseconds; keep ns precision with a
    // fractional part.
    entry["ts"] = Json(static_cast<double>(event.ts_ns) / 1000.0);
    if (event.phase == 'X') {
      entry["dur"] = Json(static_cast<double>(event.dur_ns) / 1000.0);
    } else if (event.phase == 'i') {
      entry["s"] = Json("t");  // thread-scoped instant
    }
    entry["pid"] = Json(1);
    entry["tid"] = Json(event.tid);
    if (event.has_arg) {
      Json args = Json::object();
      args["value"] = Json(event.arg);
      entry["args"] = std::move(args);
    }
    array.push_back(std::move(entry));
  }
  Json root = Json::object();
  root["traceEvents"] = std::move(array);
  root["displayTimeUnit"] = Json("ns");
  return root.dump();
}

}  // namespace hgdb::obs
