#ifndef HGDB_OBS_METRICS_H
#define HGDB_OBS_METRICS_H

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/checked_mutex.h"
#include "common/json.h"

namespace hgdb::obs {

/// Monotonic event counter. Increments are single relaxed atomic adds so
/// the sim-thread hot path (Runtime::on_clock_edge and friends) can bump
/// them without locks or fences — the same discipline the runtime's
/// original AtomicStats used to keep Fig. 5's <5% overhead budget.
class Counter {
 public:
  void add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Instantaneous signed level (resident blocks, attached sessions, ...).
/// Unlike a Counter it may go down; exposition renders it as a gauge.
class Gauge {
 public:
  void set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void add(int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<int64_t> value_{0};
};

/// Fixed-bucket latency histogram with power-of-two bucket boundaries.
///
/// Bucket i counts samples whose value fits in i bits: bucket 0 holds the
/// value 0, bucket i (i >= 1) holds [2^(i-1), 2^i). With kBuckets = 40
/// the top finite boundary is 2^39 ns ≈ 550 s; larger samples land in the
/// last bucket. Recording is one relaxed fetch_add on the bucket plus sum
/// and count — wait-free, no locks, safe from any number of threads.
///
/// Quantiles are answered from the bucket counts: percentile(q) returns
/// the upper bound of the first bucket at which the cumulative count
/// reaches q, i.e. an upper estimate with power-of-two resolution. That
/// is plenty for latency SLO work (p99 of 2^14 vs 2^15 ns is the signal;
/// sub-bucket precision is not).
class Histogram {
 public:
  static constexpr size_t kBuckets = 40;

  void record(uint64_t value) {
    buckets_[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
  }

  [[nodiscard]] uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] uint64_t sum() const {
    return sum_.load(std::memory_order_relaxed);
  }

  /// Upper bound (inclusive) of the values bucket i accepts.
  static constexpr uint64_t bucket_upper_bound(size_t i) {
    if (i == 0) return 0;
    if (i + 1 >= kBuckets) return UINT64_MAX;
    return (uint64_t{1} << i) - 1;
  }

  /// q in [0, 1]; returns the upper bound of the bucket containing the
  /// q-quantile sample (0 when empty).
  [[nodiscard]] uint64_t percentile(double q) const;

  struct Snapshot {
    std::array<uint64_t, kBuckets> buckets{};
    uint64_t count = 0;
    uint64_t sum = 0;
    uint64_t p50 = 0;
    uint64_t p95 = 0;
    uint64_t p99 = 0;
  };
  [[nodiscard]] Snapshot snapshot() const;

  static size_t bucket_index(uint64_t value) {
    const size_t idx = static_cast<size_t>(std::bit_width(value));
    return idx < kBuckets ? idx : kBuckets - 1;
  }

 private:
  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> count_{0};
};

/// Name-keyed registry of counters, gauges and histograms — the one place
/// the debug stack's telemetry lives (ROADMAP items 2 and 5 both start
/// with "measure it").
///
/// Lookup (`counter("runtime.clock_edges")`) takes a mutex and is meant
/// for wiring time: components resolve their metrics once, keep the
/// returned reference (addresses are stable for the registry's lifetime
/// unless removed), and update through it lock-free afterwards.
///
/// `global()` is the process-wide instance used by the CLI and by code
/// with no natural owner (waveform readers); the Runtime defaults to a
/// private registry so that side-by-side runtimes (tests, bench A/B
/// cells) never share counts unless explicitly given one.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  static MetricsRegistry& global();

  /// Get-or-create. The reference stays valid until remove(name) or the
  /// registry dies. Dotted lower-case names ("session.requests").
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Drops a metric (any kind). Only for ephemeral names — e.g. the
  /// per-subscription drop counters released at unsubscribe. References
  /// obtained earlier for that name are invalidated.
  void remove(std::string_view name);

  /// Prometheus text exposition (metric names prefixed `hgdb_`, dots
  /// mapped to underscores; histogram buckets as cumulative `le` series).
  [[nodiscard]] std::string render_prometheus() const;

  /// JSON snapshot for the v2 `metrics` command / DAP custom request:
  /// {"counters": {...}, "gauges": {...},
  ///  "histograms": {name: {count, sum, p50, p95, p99}}}.
  [[nodiscard]] common::Json snapshot_json() const;

  /// Number of registered metrics (all kinds).
  [[nodiscard]] size_t size() const;

 private:
  mutable common::ObsMutex mutex_{"obs::registry"};
  // node-based maps: values never move, so hot-path references are stable.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      HGDB_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      HGDB_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_
      HGDB_GUARDED_BY(mutex_);
};

}  // namespace hgdb::obs

#endif  // HGDB_OBS_METRICS_H
