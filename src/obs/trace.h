#ifndef HGDB_OBS_TRACE_H
#define HGDB_OBS_TRACE_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "common/checked_mutex.h"

/// Compile-time master switch for span instrumentation. The build defines
/// HGDB_OBS_SPANS_ENABLED=0 (cmake -DHGDB_OBS_SPANS=OFF) to make every
/// HGDB_TRACE_* macro expand to nothing — zero code, zero branches, zero
/// atomics at the instrumentation points. Default is on: the runtime cost
/// of an un-started recorder is one relaxed bool load per span site,
/// which bench/metrics_overhead holds inside the fig5 budget.
#ifndef HGDB_OBS_SPANS_ENABLED
#define HGDB_OBS_SPANS_ENABLED 1
#endif

namespace hgdb::obs {

/// One decoded trace event, as read back out of the ring.
struct TraceEvent {
  const char* category = "";  ///< span taxonomy group ("runtime", "wvx", ...)
  const char* name = "";      ///< static or interned string
  char phase = 'X';           ///< 'X' complete span, 'i' instant event
  uint64_t ts_ns = 0;         ///< start, ns since recorder construction
  uint64_t dur_ns = 0;        ///< 0 for instants
  uint32_t tid = 0;           ///< small per-process thread ordinal
  bool has_arg = false;
  uint64_t arg = 0;  ///< optional payload (batch size, skip count, ...)
};

/// Lock-free ring buffer of begin/end spans, exportable as chrome://tracing
/// / Perfetto JSON ("trace event format", ph:"X" complete events).
///
/// Recording: a writer claims a slot with one fetch_add on the head ticket
/// and fills per-field relaxed atomics, publishing with a release store of
/// the ticket into the slot's sequence word. No locks anywhere on the
/// write path, so spans may be emitted from the sim thread's evaluation
/// loop. When the ring wraps, the oldest events are overwritten (dropped()
/// counts them) — a debugger trace wants the most recent window, not the
/// oldest.
///
/// Reading (snapshot/export) validates each slot's sequence after decoding
/// it, skipping slots that a concurrent writer was mid-flight on. Dumps
/// taken after stop() are exact; dumps while recording are best-effort.
///
/// Span names must be string literals or pointers that outlive the
/// recorder; for dynamic names (command names) use intern(), which stores
/// one stable copy per distinct string.
class TraceRecorder {
 public:
  static constexpr size_t kDefaultCapacity = 1 << 16;

  explicit TraceRecorder(size_t capacity = kDefaultCapacity);

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Process-wide recorder the HGDB_TRACE_* macros write into.
  static TraceRecorder& global();

  // -- control -----------------------------------------------------------------
  void start() { enabled_.store(true, std::memory_order_relaxed); }
  void stop() { enabled_.store(false, std::memory_order_relaxed); }
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }
  /// Discards all buffered events (recording state unchanged).
  void clear();

  // -- recording ---------------------------------------------------------------
  /// ns since recorder construction (steady clock).
  [[nodiscard]] uint64_t now_ns() const;

  /// Appends a completed span. Callers pass the ts they sampled at span
  /// entry so the event brackets the real interval.
  void record_complete(const char* category, const char* name, uint64_t ts_ns,
                       uint64_t dur_ns, bool has_arg = false,
                       uint64_t arg = 0);
  /// Appends an instant event (chrome ph:"i").
  void record_instant(const char* category, const char* name,
                      bool has_arg = false, uint64_t arg = 0);

  /// Stable copy of a dynamic string for use as a span name. Takes a
  /// mutex; call only on control paths (command dispatch), never per-edge.
  const char* intern(std::string_view text);

  // -- readback ----------------------------------------------------------------
  /// Decoded events currently in the ring, oldest first by write order.
  [[nodiscard]] std::vector<TraceEvent> snapshot() const;
  /// chrome://tracing / Perfetto JSON: {"traceEvents": [...],
  /// "displayTimeUnit": "ns"}; ts/dur in microseconds per the format.
  [[nodiscard]] std::string export_chrome_json() const;

  [[nodiscard]] size_t capacity() const { return capacity_; }
  /// Events ever written (monotonic, survives clear()).
  [[nodiscard]] uint64_t recorded() const {
    return total_.load(std::memory_order_relaxed);
  }
  /// Events lost to ring wrap-around since the last clear().
  [[nodiscard]] uint64_t dropped() const;

 private:
  struct Slot {
    /// ticket+1 of the event occupying the slot; 0 = empty/in-flight.
    std::atomic<uint64_t> seq{0};
    std::atomic<const char*> category{nullptr};
    std::atomic<const char*> name{nullptr};
    std::atomic<uint64_t> ts_ns{0};
    std::atomic<uint64_t> dur_ns{0};
    std::atomic<uint64_t> arg{0};
    std::atomic<uint32_t> tid{0};
    std::atomic<char> phase{0};
    std::atomic<bool> has_arg{false};
  };

  void write(char phase, const char* category, const char* name,
             uint64_t ts_ns, uint64_t dur_ns, bool has_arg, uint64_t arg);

  size_t capacity_;  ///< power of two
  size_t mask_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<uint64_t> head_{0};   ///< next ticket
  std::atomic<uint64_t> base_{0};   ///< first live ticket (bumped by clear())
  std::atomic<uint64_t> total_{0};  ///< lifetime events written
  std::atomic<bool> enabled_{false};
  std::chrono::steady_clock::time_point origin_;

  common::ObsMutex intern_mutex_{"obs::intern"};
  std::set<std::string, std::less<>> interned_ HGDB_GUARDED_BY(intern_mutex_);
};

/// RAII complete-span helper: samples the clock at construction when the
/// recorder is started, records an 'X' event covering its lifetime at
/// destruction. When the recorder is stopped the constructor is one
/// relaxed load and the destructor a null check.
class TraceSpan {
 public:
  TraceSpan(TraceRecorder& recorder, const char* category, const char* name)
      : recorder_(recorder.enabled() ? &recorder : nullptr),
        category_(category),
        name_(name) {
    if (recorder_ != nullptr) start_ = recorder_->now_ns();
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  ~TraceSpan() {
    if (recorder_ != nullptr) {
      recorder_->record_complete(category_, name_, start_,
                                 recorder_->now_ns() - start_, has_arg_, arg_);
    }
  }

  /// Attaches a numeric payload emitted with the span (e.g. batch size).
  void set_arg(uint64_t value) {
    arg_ = value;
    has_arg_ = true;
  }

 private:
  TraceRecorder* recorder_;
  const char* category_;
  const char* name_;
  uint64_t start_ = 0;
  uint64_t arg_ = 0;
  bool has_arg_ = false;
};

/// Stand-in for TraceSpan when spans are compiled out: an empty object the
/// optimizer erases, so set_arg() call sites still compile.
struct NullSpan {
  void set_arg(uint64_t) {}
};

}  // namespace hgdb::obs

// ---------------------------------------------------------------------------
// Instrumentation-point macros. Compile to nothing with
// -DHGDB_OBS_SPANS=OFF; otherwise cost one relaxed load while tracing is
// stopped.
// ---------------------------------------------------------------------------
#if HGDB_OBS_SPANS_ENABLED
#define HGDB_OBS_CONCAT2(a, b) a##b
#define HGDB_OBS_CONCAT(a, b) HGDB_OBS_CONCAT2(a, b)
/// Scoped span in the global recorder: HGDB_TRACE_SPAN("runtime", "eval").
#define HGDB_TRACE_SPAN(category, name)                               \
  ::hgdb::obs::TraceSpan HGDB_OBS_CONCAT(hgdb_trace_span_, __LINE__)( \
      ::hgdb::obs::TraceRecorder::global(), category, name)
/// Same, but named so the body can call .set_arg(value).
#define HGDB_TRACE_SPAN_VAR(var, category, name) \
  ::hgdb::obs::TraceSpan var(::hgdb::obs::TraceRecorder::global(), category, \
                             name)
/// Instant event with a numeric payload (skip counts, queue depths).
#define HGDB_TRACE_INSTANT(category, name, value)                        \
  do {                                                                   \
    auto& hgdb_trace_rec = ::hgdb::obs::TraceRecorder::global();         \
    if (hgdb_trace_rec.enabled()) {                                      \
      hgdb_trace_rec.record_instant(category, name, true,                \
                                    static_cast<uint64_t>(value));       \
    }                                                                    \
  } while (0)
#else
#define HGDB_TRACE_SPAN(category, name)
#define HGDB_TRACE_SPAN_VAR(var, category, name) ::hgdb::obs::NullSpan var
#define HGDB_TRACE_INSTANT(category, name, value) \
  do {                                            \
  } while (0)
#endif

#endif  // HGDB_OBS_TRACE_H
