#include "sim/vcd_writer.h"

#include <map>
#include <stdexcept>

#include "common/strings.h"
#include "waveform/index_writer.h"

namespace hgdb::sim {

namespace {

/// Scope tree node for the $scope header section.
struct ScopeNode {
  std::map<std::string, ScopeNode> children;
  // (leaf name, code, width)
  std::vector<std::tuple<std::string, std::string, uint32_t>> vars;
};

}  // namespace

VcdWriter::VcdWriter(Simulator& simulator, const std::string& path,
                     waveform::IndexWriterOptions index_options)
    : simulator_(&simulator) {
  const auto& signals = simulator.netlist().signals();
  for (const auto& signal : signals) {
    if (signal.name.empty()) continue;  // temporaries are not traced
    Entry entry;
    entry.signal_id = signal.id;
    entry.code = code_for(entries_.size());
    entries_.push_back(std::move(entry));
  }
  shadow_.reserve(entries_.size());
  for (const auto& entry : entries_) {
    shadow_.emplace_back(simulator.netlist().signal(entry.signal_id).width, 0);
  }

  if (waveform::is_wvx_path(path)) {
    // Direct index emission: declare every traced signal to the sink up
    // front (ids follow entries_ order), then sample() streams changes.
    auto writer = std::make_unique<waveform::IndexWriter>(path, index_options);
    for (size_t i = 0; i < entries_.size(); ++i) {
      const auto& signal = simulator.netlist().signal(entries_[i].signal_id);
      waveform::SignalInfo info;
      info.hier_name = signal.name;
      info.width = signal.width;
      writer->on_signal(i, info);
    }
    sink_ = std::move(writer);
    return;
  }

  out_.open(path);
  if (!out_) throw std::runtime_error("cannot open VCD file '" + path + "'");
  write_header();
}

VcdWriter::~VcdWriter() {
  try {
    finish();
  } catch (...) {
    // Destructor must not throw; an unreadable index is detected by the
    // reader (missing footer).
  }
}

void VcdWriter::finish() {
  if (finished_) return;
  finished_ = true;
  if (sink_ != nullptr) {
    const uint64_t max_time =
        last_time_ == ~uint64_t{0} ? simulator_->time() : last_time_;
    sink_->on_finish(max_time);
  } else if (out_.is_open()) {
    out_.flush();
  }
}

std::string VcdWriter::code_for(size_t index) {
  // Identifier codes use the printable range '!'..'~' (94 symbols).
  std::string code;
  do {
    code.push_back(static_cast<char>('!' + index % 94));
    index /= 94;
  } while (index != 0);
  return code;
}

void VcdWriter::write_header() {
  out_ << "$date\n  hgdb-repro simulation\n$end\n";
  out_ << "$version\n  hgdb-repro RTL simulator\n$end\n";
  out_ << "$timescale 1ns $end\n";

  ScopeNode root;
  for (const auto& entry : entries_) {
    const auto& signal = simulator_->netlist().signal(entry.signal_id);
    auto parts = common::split(signal.name, '.');
    ScopeNode* node = &root;
    for (size_t i = 0; i + 1 < parts.size(); ++i) {
      node = &node->children[parts[i]];
    }
    node->vars.emplace_back(parts.back(), entry.code, signal.width);
  }

  // Recursive header emission.
  auto emit = [&](auto&& self, const ScopeNode& node) -> void {
    for (const auto& [leaf, code, width] : node.vars) {
      out_ << "$var wire " << width << " " << code << " " << leaf;
      if (width > 1) out_ << " [" << width - 1 << ":0]";
      out_ << " $end\n";
    }
    for (const auto& [name, child] : node.children) {
      out_ << "$scope module " << name << " $end\n";
      self(self, child);
      out_ << "$upscope $end\n";
    }
  };
  // The top of `root` has exactly one child (the top module).
  emit(emit, root);
  out_ << "$enddefinitions $end\n";
}

void VcdWriter::sample() {
  const uint64_t now = simulator_->time();

  if (sink_ != nullptr) {
    // Direct mode mirrors $dumpvars semantics: the first sample records
    // every signal (initial values, including zeros), later samples only
    // the changed ones.
    for (size_t i = 0; i < entries_.size(); ++i) {
      const auto& value = simulator_->value(entries_[i].signal_id);
      if (!first_sample_ && value == shadow_[i]) continue;
      sink_->on_change(i, now, value);
      shadow_[i] = value;
    }
    first_sample_ = false;
    last_time_ = now;
    return;
  }

  bool wrote_time = false;
  auto ensure_time = [&] {
    if (!wrote_time) {
      out_ << "#" << now << "\n";
      wrote_time = true;
    }
  };
  if (first_sample_) {
    ensure_time();
    out_ << "$dumpvars\n";
  }
  for (size_t i = 0; i < entries_.size(); ++i) {
    const auto& value = simulator_->value(entries_[i].signal_id);
    if (!first_sample_ && value == shadow_[i]) continue;
    ensure_time();
    const uint32_t width = simulator_->netlist().signal(entries_[i].signal_id).width;
    if (width == 1) {
      out_ << (value.to_bool() ? '1' : '0') << entries_[i].code << "\n";
    } else {
      out_ << "b" << value.to_vcd_string() << " " << entries_[i].code << "\n";
    }
    shadow_[i] = value;
  }
  if (first_sample_) {
    out_ << "$end\n";
    first_sample_ = false;
  }
  last_time_ = now;
}

uint64_t VcdWriter::attach() {
  // Capture the initial state at time 0 before any edges.
  sample();
  return simulator_->add_clock_callback(
      [this](Edge, uint64_t) { sample(); });
}

}  // namespace hgdb::sim
