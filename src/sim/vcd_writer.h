#ifndef HGDB_SIM_VCD_WRITER_H
#define HGDB_SIM_VCD_WRITER_H

#include <fstream>
#include <string>
#include <vector>

#include "sim/simulator.h"

namespace hgdb::sim {

/// Streams value changes of all named signals to a VCD file.
///
/// The trace drives the paper's offline replay flow: hgdb can attach to a
/// captured VCD instead of a live simulator and offer the same debugging
/// interface, including reverse debugging (Sec. 3.3: "enable offline replay
/// from captured trace").
class VcdWriter {
 public:
  /// Opens `path` and writes the header (hierarchy from dotted names).
  VcdWriter(Simulator& simulator, const std::string& path);
  ~VcdWriter();

  VcdWriter(const VcdWriter&) = delete;
  VcdWriter& operator=(const VcdWriter&) = delete;

  /// Records changes since the last sample at the simulator's current time.
  /// The first call dumps every signal ($dumpvars semantics).
  void sample();

  /// Convenience: attaches a falling+rising edge callback to the simulator
  /// that samples automatically. Returns the callback handle.
  uint64_t attach();

 private:
  struct Entry {
    uint32_t signal_id = 0;
    std::string code;
  };

  void write_header();
  static std::string code_for(size_t index);

  Simulator* simulator_;
  std::ofstream out_;
  std::vector<Entry> entries_;
  std::vector<common::BitVector> shadow_;
  bool first_sample_ = true;
  uint64_t last_time_ = ~uint64_t{0};
};

}  // namespace hgdb::sim

#endif  // HGDB_SIM_VCD_WRITER_H
