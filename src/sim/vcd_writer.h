#ifndef HGDB_SIM_VCD_WRITER_H
#define HGDB_SIM_VCD_WRITER_H

#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "sim/simulator.h"
#include "waveform/index_format.h"
#include "waveform/index_sink.h"

namespace hgdb::sim {

/// Streams value changes of all named signals to a trace file.
///
/// Two output paths share one change-detection loop:
///  - `.vcd` (anything not ending in ".wvx"): classic VCD text, readable
///    by external viewers and by the chunked parser;
///  - `.wvx`: the changes feed a waveform::IndexSink (an IndexWriter)
///    directly, producing the indexed store with no intermediate VCD text
///    round-trip — the native simulator's dump is written once, already
///    seekable.
///
/// The trace drives the paper's offline replay flow: hgdb can attach to a
/// captured dump instead of a live simulator and offer the same debugging
/// interface, including reverse debugging (Sec. 3.3: "enable offline
/// replay from captured trace").
class VcdWriter {
 public:
  /// Opens `path` and writes the header (hierarchy from dotted names).
  /// A ".wvx" suffix selects direct index emission; `index_options`
  /// controls that mode (ignored for VCD text).
  VcdWriter(Simulator& simulator, const std::string& path,
            waveform::IndexWriterOptions index_options = {});
  ~VcdWriter();

  VcdWriter(const VcdWriter&) = delete;
  VcdWriter& operator=(const VcdWriter&) = delete;

  /// Records changes since the last sample at the simulator's current time.
  /// The first call dumps every signal ($dumpvars semantics).
  void sample();

  /// Convenience: attaches a falling+rising edge callback to the simulator
  /// that samples automatically. Returns the callback handle.
  uint64_t attach();

  /// Finalizes the dump. For `.wvx` this flushes pending blocks and writes
  /// the footer; until then the index is unreadable. Idempotent; also runs
  /// from the destructor. Throws on I/O failure (destructor swallows).
  void finish();

  /// True when this writer emits the indexed format directly.
  [[nodiscard]] bool direct_index() const { return sink_ != nullptr; }

 private:
  struct Entry {
    uint32_t signal_id = 0;
    std::string code;
  };

  void write_header();
  static std::string code_for(size_t index);

  Simulator* simulator_;
  std::ofstream out_;                           ///< VCD text mode
  std::unique_ptr<waveform::IndexSink> sink_;   ///< direct .wvx mode
  std::vector<Entry> entries_;
  std::vector<common::BitVector> shadow_;
  bool first_sample_ = true;
  bool finished_ = false;
  uint64_t last_time_ = ~uint64_t{0};
};

}  // namespace hgdb::sim

#endif  // HGDB_SIM_VCD_WRITER_H
