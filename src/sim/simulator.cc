#include "sim/simulator.h"

#include <algorithm>
#include <stdexcept>

#include "ir/eval.h"

namespace hgdb::sim {

using common::BitVector;

Simulator::Simulator(netlist::Netlist netlist) : netlist_(std::move(netlist)) {
  values_.reserve(netlist_.slot_count());
  for (const auto& signal : netlist_.signals()) {
    values_.emplace_back(signal.width, 0);
  }
  register_slots_.reserve(netlist_.registers().size());
  for (const auto& reg : netlist_.registers()) {
    register_slots_.push_back(reg.signal);
  }
}

const BitVector& Simulator::value(const std::string& name) const {
  auto id = netlist_.signal_id(name);
  if (!id) throw std::invalid_argument("unknown signal '" + name + "'");
  return values_[*id];
}

void Simulator::set_value(uint32_t signal_id, BitVector value) {
  const netlist::Signal& signal = netlist_.signal(signal_id);
  if (signal.kind != netlist::SignalKind::Input &&
      signal.kind != netlist::SignalKind::Register) {
    throw std::invalid_argument(
        "cannot force combinational signal '" + signal.name +
        "' (it would be overwritten by the next evaluation)");
  }
  values_[signal_id] = value.resize(signal.width, signal.is_signed);
  dirty_ = true;
}

void Simulator::set_value(const std::string& name, uint64_t value) {
  auto id = netlist_.signal_id(name);
  if (!id) throw std::invalid_argument("unknown signal '" + name + "'");
  set_value(*id, BitVector(netlist_.signal(*id).width, value));
}

namespace {

constexpr uint64_t mask_of(uint32_t width) {
  return width >= 64 ? ~uint64_t{0} : (uint64_t{1} << width) - 1;
}

/// Sign- or zero-extends a `from`-bit value into a 64-bit lane.
constexpr uint64_t extend64(uint64_t value, uint32_t from, bool is_signed) {
  if (!is_signed || from >= 64) return value;
  const uint64_t sign = uint64_t{1} << (from - 1);
  return (value & sign) != 0 ? value | ~mask_of(from) : value;
}

}  // namespace

/// Allocation-free evaluation for instructions whose operands and result
/// all fit in 64 bits (the overwhelmingly common case). Semantics mirror
/// ir::eval_prim exactly; the wide path below stays the reference.
bool Simulator::execute_fast(const netlist::Instr& instr) {
  const netlist::Signal& dst = netlist_.signal(instr.dst);
  const uint32_t dst_width = dst.width;
  if (dst_width > 64) return false;
  for (uint32_t slot : instr.operands) {
    if (netlist_.signal(slot).width > 64) return false;
  }
  auto raw = [&](size_t index) {
    return values_[instr.operands[index]].to_uint64();
  };
  auto width_of = [&](size_t index) {
    return netlist_.signal(instr.operands[index]).width;
  };
  auto extended = [&](size_t index, uint32_t to) {
    const bool is_signed =
        index < instr.operand_signs.size() && instr.operand_signs[index];
    return extend64(raw(index), width_of(index), is_signed) & mask_of(to);
  };
  const bool op_signed =
      !instr.operand_signs.empty() && instr.operand_signs[0];
  auto as_int64 = [&](size_t index) {
    return static_cast<int64_t>(extend64(raw(index), width_of(index), true));
  };

  using ir::PrimOp;
  uint64_t result = 0;
  switch (instr.op) {
    case PrimOp::Add: result = extended(0, 64) + extended(1, 64); break;
    case PrimOp::Sub: result = extended(0, 64) - extended(1, 64); break;
    case PrimOp::Mul: result = extended(0, 64) * extended(1, 64); break;
    case PrimOp::Div: {
      const uint64_t divisor = raw(1);
      if (divisor == 0) {
        result = mask_of(dst_width);
      } else if (op_signed) {
        result = static_cast<uint64_t>(as_int64(0) / as_int64(1));
      } else {
        result = raw(0) / divisor;
      }
      break;
    }
    case PrimOp::Rem: {
      const uint64_t divisor = raw(1);
      if (divisor == 0) {
        result = raw(0);
      } else if (op_signed) {
        result = static_cast<uint64_t>(as_int64(0) % as_int64(1));
      } else {
        result = raw(0) % divisor;
      }
      break;
    }
    case PrimOp::Lt:
      result = op_signed ? static_cast<uint64_t>(as_int64(0) < as_int64(1))
                         : static_cast<uint64_t>(raw(0) < raw(1));
      break;
    case PrimOp::Leq:
      result = op_signed ? static_cast<uint64_t>(as_int64(0) <= as_int64(1))
                         : static_cast<uint64_t>(raw(0) <= raw(1));
      break;
    case PrimOp::Gt:
      result = op_signed ? static_cast<uint64_t>(as_int64(0) > as_int64(1))
                         : static_cast<uint64_t>(raw(0) > raw(1));
      break;
    case PrimOp::Geq:
      result = op_signed ? static_cast<uint64_t>(as_int64(0) >= as_int64(1))
                         : static_cast<uint64_t>(raw(0) >= raw(1));
      break;
    case PrimOp::Eq: result = extended(0, 64) == extended(1, 64); break;
    case PrimOp::Neq: result = extended(0, 64) != extended(1, 64); break;
    case PrimOp::And: result = extended(0, 64) & extended(1, 64); break;
    case PrimOp::Or: result = extended(0, 64) | extended(1, 64); break;
    case PrimOp::Xor: result = extended(0, 64) ^ extended(1, 64); break;
    case PrimOp::Not: result = ~raw(0); break;
    case PrimOp::Neg: result = ~raw(0) + 1; break;
    case PrimOp::AndR: result = raw(0) == mask_of(width_of(0)); break;
    case PrimOp::OrR: result = raw(0) != 0; break;
    case PrimOp::XorR:
      result = static_cast<uint64_t>(__builtin_popcountll(raw(0)) & 1);
      break;
    case PrimOp::Cat:
      if (width_of(0) + width_of(1) > 64) return false;
      result = (raw(0) << width_of(1)) | raw(1);
      break;
    case PrimOp::Bits:
      result = raw(0) >> instr.int_params[1];
      break;  // masked to dst width below
    case PrimOp::Shl:
      result = instr.int_params[0] >= 64 ? 0 : raw(0) << instr.int_params[0];
      break;
    case PrimOp::Shr: {
      const uint32_t amount = instr.int_params[0];
      if (op_signed) {
        result = amount >= 64
                     ? static_cast<uint64_t>(as_int64(0) < 0 ? -1 : 0)
                     : static_cast<uint64_t>(as_int64(0) >> amount);
      } else {
        result = amount >= 64 ? 0 : raw(0) >> amount;
      }
      break;
    }
    case PrimOp::Dshl: {
      const uint64_t amount = raw(1);
      result = amount >= width_of(0) ? 0 : raw(0) << amount;
      break;
    }
    case PrimOp::Dshr: {
      const uint64_t amount = raw(1);
      if (op_signed) {
        result = amount >= width_of(0)
                     ? static_cast<uint64_t>(as_int64(0) < 0 ? -1 : 0)
                     : static_cast<uint64_t>(as_int64(0) >>
                                             static_cast<uint32_t>(amount));
      } else {
        result = amount >= width_of(0) ? 0 : raw(0) >> amount;
      }
      break;
    }
    case PrimOp::Pad:
      result = extend64(raw(0), width_of(0), op_signed);
      break;
    case PrimOp::AsUInt:
    case PrimOp::AsSInt:
    case PrimOp::AsClock:
      result = raw(0);
      break;
    case PrimOp::Mux:
      result = raw(0) != 0 ? extended(1, 64) : extended(2, 64);
      break;
  }
  values_[instr.dst].assign_uint64(result & mask_of(dst_width));
  return true;
}

void Simulator::execute_instr(const netlist::Instr& instr) {
  using netlist::Instr;
  switch (instr.kind) {
    case Instr::Kind::Const:
      values_[instr.dst] = instr.constant;
      return;
    case Instr::Kind::Copy: {
      const BitVector& src = values_[instr.operands[0]];
      const netlist::Signal& dst = netlist_.signal(instr.dst);
      if (src.width() == dst.width) {
        values_[instr.dst] = src;
      } else if (src.width() <= 64 && dst.width <= 64) {
        values_[instr.dst].assign_uint64(
            extend64(src.to_uint64(), src.width(), dst.is_signed) &
            mask_of(dst.width));
      } else {
        values_[instr.dst] = src.resize(dst.width, dst.is_signed);
      }
      return;
    }
    case Instr::Kind::Prim: {
      if (execute_fast(instr)) return;
      // Wide path: arbitrary-precision via the shared evaluator.
      std::vector<BitVector> operands;
      operands.reserve(instr.operands.size());
      for (uint32_t slot : instr.operands) operands.push_back(values_[slot]);
      values_[instr.dst] =
          ir::eval_prim(instr.op, operands,
                        std::vector<bool>(instr.operand_signs.begin(),
                                          instr.operand_signs.end()),
                        instr.int_params, netlist_.signal(instr.dst).width);
      // Comparison results are 1-bit; eval_prim already returns the result
      // in the destination width for arithmetic. Normalize defensively.
      if (values_[instr.dst].width() != netlist_.signal(instr.dst).width) {
        values_[instr.dst] = values_[instr.dst].resize(
            netlist_.signal(instr.dst).width,
            netlist_.signal(instr.dst).is_signed);
      }
      return;
    }
  }
}

void Simulator::eval() {
  for (const auto& instr : netlist_.instrs()) execute_instr(instr);
  dirty_ = false;
}

void Simulator::fire_callbacks(Edge edge) {
  for (const auto& [handle, callback] : callbacks_) callback(edge, time_);
}

void Simulator::save_checkpoint() {
  Checkpoint checkpoint;
  checkpoint.cycle = cycle_;
  checkpoint.time = time_;
  checkpoint.registers.reserve(register_slots_.size());
  for (uint32_t slot : register_slots_) {
    checkpoint.registers.push_back(values_[slot]);
  }
  for (const auto& signal : netlist_.signals()) {
    if (signal.kind == netlist::SignalKind::Input) {
      checkpoint.inputs.emplace_back(signal.id, values_[signal.id]);
    }
  }
  checkpoints_.push_back(std::move(checkpoint));
}

void Simulator::tick(std::optional<uint32_t> clock) {
  if (netlist_.clocks().empty()) {
    throw std::runtime_error("design has no clock input");
  }
  const uint32_t clock_slot = clock.value_or(netlist_.clocks().front());

  // Settle combinational state with the clock low, then snapshot for
  // reverse debugging: the checkpoint captures the state at the *start* of
  // this cycle.
  eval();
  if (checkpoints_enabled_) save_checkpoint();

  // Sample next-values with pre-edge state (zero-delay register model).
  std::vector<BitVector> next_values;
  next_values.reserve(netlist_.registers().size());
  for (const auto& reg : netlist_.registers()) {
    if (reg.clock != clock_slot) {
      next_values.push_back(values_[reg.signal]);  // other clock: hold
      continue;
    }
    if (reg.reset && values_[*reg.reset].to_bool()) {
      next_values.push_back(
          values_[*reg.init].resize(netlist_.signal(reg.signal).width,
                                    netlist_.signal(reg.signal).is_signed));
    } else {
      next_values.push_back(
          values_[reg.next].resize(netlist_.signal(reg.signal).width,
                                   netlist_.signal(reg.signal).is_signed));
    }
  }
  for (size_t i = 0; i < netlist_.registers().size(); ++i) {
    values_[netlist_.registers()[i].signal] = std::move(next_values[i]);
  }

  // Rising edge: raise the clock, settle, notify (every value stable).
  values_[clock_slot] = BitVector(1, 1);
  time_ += 1;
  eval();
  fire_callbacks(Edge::Rising);

  // A debugger may rewind time from inside a rising-edge callback
  // (reverse debugging). The timeline restarts at the restored cycle; the
  // rest of this tick belongs to an abandoned future and must not run.
  if (time_travelled_) {
    time_travelled_ = false;
    return;
  }

  // Falling edge.
  values_[clock_slot] = BitVector(1, 0);
  time_ += 1;
  eval();
  fire_callbacks(Edge::Falling);

  ++cycle_;
}

void Simulator::run(uint64_t cycles) {
  for (uint64_t i = 0; i < cycles; ++i) tick();
}

uint64_t Simulator::add_clock_callback(ClockCallback callback) {
  const uint64_t handle = next_callback_handle_++;
  callbacks_.emplace_back(handle, std::move(callback));
  return handle;
}

void Simulator::remove_clock_callback(uint64_t handle) {
  std::erase_if(callbacks_,
                [handle](const auto& entry) { return entry.first == handle; });
}

uint64_t Simulator::earliest_cycle() const {
  if (checkpoints_.empty()) return cycle_;
  return checkpoints_.front().cycle;
}

void Simulator::restore_cycle(uint64_t cycle) {
  // Find the checkpoint for the requested cycle.
  auto it = std::find_if(
      checkpoints_.begin(), checkpoints_.end(),
      [cycle](const Checkpoint& c) { return c.cycle == cycle; });
  if (it == checkpoints_.end()) {
    throw std::out_of_range("no checkpoint for cycle " + std::to_string(cycle));
  }
  for (size_t i = 0; i < register_slots_.size(); ++i) {
    values_[register_slots_[i]] = it->registers[i];
  }
  for (const auto& [slot, value] : it->inputs) values_[slot] = value;
  cycle_ = it->cycle;
  time_ = it->time;
  time_travelled_ = true;
  // Drop checkpoints at or after the restored cycle: re-execution will
  // recreate them (and inputs may differ on the new timeline).
  checkpoints_.erase(it, checkpoints_.end());
  eval();
}

}  // namespace hgdb::sim
