#ifndef HGDB_SIM_SIMULATOR_H
#define HGDB_SIM_SIMULATOR_H

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "netlist/netlist.h"

namespace hgdb::sim {

/// Edge kind reported to clock callbacks.
enum class Edge : uint8_t { Rising, Falling };

/// Zero-delay, two-state, cycle-based RTL simulator.
///
/// Semantics match the assumptions the paper's breakpoint emulation relies
/// on (Sec. 3): designs are synchronous, all combinational values reach
/// equilibrium before each clock edge, and every value is stable when a
/// clock-edge callback runs. `tick()` performs one full clock cycle:
///
///   settle comb -> sample register next-values -> update registers ->
///   raise clock, settle, fire rising-edge callbacks ->
///   lower clock, settle, fire falling-edge callbacks.
///
/// Register updates use the pre-edge combinational state, which is exactly
/// the zero-delay model of commercial simulators.
///
/// For reverse debugging, the simulator checkpoints register state and
/// input values every cycle (when enabled); `restore_cycle` rewinds to any
/// previous cycle in O(state) time.
class Simulator {
 public:
  /// Takes the netlist by value: the simulator owns its design, so the
  /// compile result need not outlive it (pass std::move() to avoid the
  /// copy when the caller is done with the netlist).
  explicit Simulator(netlist::Netlist netlist);

  // -- value access ------------------------------------------------------------
  [[nodiscard]] std::optional<uint32_t> signal_id(const std::string& name) const {
    return netlist_.signal_id(name);
  }
  [[nodiscard]] const common::BitVector& value(uint32_t signal_id) const {
    return values_[signal_id];
  }
  [[nodiscard]] const common::BitVector& value(const std::string& name) const;
  /// Sets a top-level input (or forces a register). Forcing combinational
  /// signals is rejected: the next eval would overwrite the value anyway.
  void set_value(uint32_t signal_id, common::BitVector value);
  void set_value(const std::string& name, uint64_t value);

  // -- execution ---------------------------------------------------------------
  /// Settles combinational logic from current inputs + register state.
  void eval();
  /// Runs one full cycle of the given clock (default: the first clock).
  void tick(std::optional<uint32_t> clock = std::nullopt);
  void run(uint64_t cycles);

  [[nodiscard]] uint64_t time() const { return time_; }
  [[nodiscard]] uint64_t cycle() const { return cycle_; }

  // -- clock callbacks (the VPI backend hooks these) ----------------------------
  using ClockCallback = std::function<void(Edge, uint64_t /*time*/)>;
  /// Registers a callback fired after the design settles at each clock
  /// edge. Returns a handle usable with remove_clock_callback.
  uint64_t add_clock_callback(ClockCallback callback);
  void remove_clock_callback(uint64_t handle);

  // -- checkpointing / reverse execution ----------------------------------------
  void enable_checkpoints(bool enabled) { checkpoints_enabled_ = enabled; }
  [[nodiscard]] bool checkpoints_enabled() const { return checkpoints_enabled_; }
  /// Earliest cycle that can be restored (0 when checkpointing from start).
  [[nodiscard]] uint64_t earliest_cycle() const;
  /// Rewinds to the state at the *start* of `cycle` (before its clock
  /// edge). Requires checkpoints. Throws if out of range.
  void restore_cycle(uint64_t cycle);

  // -- introspection -------------------------------------------------------------
  [[nodiscard]] const netlist::Netlist& netlist() const { return netlist_; }

 private:
  struct Checkpoint {
    uint64_t cycle = 0;
    uint64_t time = 0;
    std::vector<common::BitVector> registers;
    std::vector<std::pair<uint32_t, common::BitVector>> inputs;
  };

  void execute_instr(const netlist::Instr& instr);
  /// Allocation-free <=64-bit evaluation; false when the wide path is
  /// needed. Semantics identical to ir::eval_prim (tested against it).
  bool execute_fast(const netlist::Instr& instr);
  void fire_callbacks(Edge edge);
  void save_checkpoint();

  netlist::Netlist netlist_;
  std::vector<common::BitVector> values_;
  std::vector<uint32_t> register_slots_;
  uint64_t time_ = 0;
  uint64_t cycle_ = 0;
  bool dirty_ = true;

  std::vector<std::pair<uint64_t, ClockCallback>> callbacks_;
  uint64_t next_callback_handle_ = 1;

  bool checkpoints_enabled_ = false;
  bool time_travelled_ = false;  ///< restore_cycle ran inside a callback
  std::vector<Checkpoint> checkpoints_;
};

}  // namespace hgdb::sim

#endif  // HGDB_SIM_SIMULATOR_H
