// EXP-O — Observability overhead: what does one instrumentation point
// cost on the hot path? The debug runtime's Fig. 5 budget (<5% over
// no-debugging simulation) only survives the obs layer if a counter bump
// is a relaxed fetch_add, a histogram record three of them, and a span
// site *one relaxed load* while the recorder is stopped.
//
// The harness times a synthetic evaluation loop (xorshift + accumulate,
// roughly the work of one compiled condition step) in five builds of
// increasing instrumentation:
//   plain           the loop alone
//   counter         + one obs::Counter::add per iteration
//   histogram       + one obs::Histogram::record per iteration
//   span_stopped    + one RAII TraceSpan per iteration, recorder stopped
//   span_recording  + the same span with the recorder started (ring wraps)
// plus the registry's exposition cost (render + snapshot on a populated
// registry, informational), and a lock-acquisition pair comparing a raw
// std::mutex against common::CheckedMutex — in release builds (rank
// checks compiled out) the two must cost the same, which is the
// annotated type's zero-overhead claim made falsifiable.
//
// Output: one JSON object on stdout (and to $HGDB_BENCH_JSON when set).
// The "gates" object carries in-process ratios (plain-loop cost over
// instrumented cost — higher is cheaper instrumentation) tracked by
// tools/check_bench_regression.py against
// bench/baselines/BENCH_metrics.json; absolute ns/op are reported but
// not gated, since they track runner hardware.
// Environment: HGDB_BENCH_METRIC_ITERS (default 4000000),
//              HGDB_BENCH_REPS (default 3, best-of),
//              HGDB_BENCH_JSON (optional output path).
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include <mutex>

#include "common/checked_mutex.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace {

using namespace hgdb;
using Clock = std::chrono::steady_clock;

uint64_t env_or(const char* name, uint64_t fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::strtoull(value, nullptr, 10) : fallback;
}

/// The synthetic per-iteration work: a xorshift step, cheap enough that
/// instrumentation cost is visible, real enough that the compiler cannot
/// collapse the loop.
inline uint64_t step(uint64_t state) {
  state ^= state << 13;
  state ^= state >> 7;
  state ^= state << 17;
  return state;
}

/// ns per iteration, best of `reps` runs of `iters` iterations.
template <typename Body>
double time_ns_per_op(uint64_t iters, uint64_t reps, Body&& body) {
  double best = 1e18;
  for (uint64_t rep = 0; rep < reps; ++rep) {
    uint64_t state = 0x9e3779b97f4a7c15ull + rep;
    const auto start = Clock::now();
    for (uint64_t i = 0; i < iters; ++i) state = body(state);
    const double ns =
        static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                Clock::now() - start)
                                .count());
    // Defeat dead-code elimination across the timed region.
    static volatile uint64_t sink;
    sink = state;
    best = std::min(best, ns / static_cast<double>(iters));
  }
  return best;
}

}  // namespace

int main() {
  const uint64_t iters = env_or("HGDB_BENCH_METRIC_ITERS", 4'000'000);
  const uint64_t reps = env_or("HGDB_BENCH_REPS", 3);

  obs::MetricsRegistry registry;
  obs::Counter& counter = registry.counter("bench.iterations");
  obs::Histogram& histogram = registry.histogram("bench.step_ns");
  obs::TraceRecorder recorder;  // default ring, wraps while recording

  // Warm the core up (frequency governors answer the first timed region
  // otherwise — the plain loop runs first and would absorb the ramp).
  time_ns_per_op(iters, 2, [](uint64_t s) { return step(s); });

  const double plain_ns =
      time_ns_per_op(iters, reps, [](uint64_t s) { return step(s); });

  const double counter_ns = time_ns_per_op(iters, reps, [&](uint64_t s) {
    counter.add();
    return step(s);
  });

  const double histogram_ns = time_ns_per_op(iters, reps, [&](uint64_t s) {
    s = step(s);
    histogram.record(s & 0xffff);  // spread across the low buckets
    return s;
  });

  const double span_stopped_ns = time_ns_per_op(iters, reps, [&](uint64_t s) {
    obs::TraceSpan span(recorder, "bench", "step");
    return step(s);
  });

  // Uncontended lock/unlock around the same work unit: the annotated
  // mutex against the std::mutex it claims to compile down to.
  std::mutex raw_mutex;
  const double std_mutex_ns = time_ns_per_op(iters, reps, [&](uint64_t s) {
    const std::lock_guard<std::mutex> lock(raw_mutex);
    return step(s);
  });
  common::StateMutex checked_mutex{"bench::state"};
  const double checked_mutex_ns = time_ns_per_op(iters, reps, [&](uint64_t s) {
    const common::LockGuard lock(checked_mutex);
    return step(s);
  });

  recorder.start();
  const double span_recording_ns = time_ns_per_op(iters, reps, [&](uint64_t s) {
    obs::TraceSpan span(recorder, "bench", "step");
    return step(s);
  });
  recorder.stop();

  // Exposition cost on a realistically populated registry (one dump each;
  // informational — exposition runs on request, never on the hot path).
  for (int i = 0; i < 40; ++i) {
    registry.counter("bench.filler.counter." + std::to_string(i)).add(i);
    registry.histogram("bench.filler.histogram." + std::to_string(i))
        .record(static_cast<uint64_t>(i) * 100);
  }
  auto exposition_start = Clock::now();
  const std::string prometheus = registry.render_prometheus();
  const double render_us =
      std::chrono::duration<double, std::micro>(Clock::now() -
                                                exposition_start)
          .count();
  exposition_start = Clock::now();
  const std::string snapshot = registry.snapshot_json().dump();
  const double snapshot_us =
      std::chrono::duration<double, std::micro>(Clock::now() -
                                                exposition_start)
          .count();

  // Gated ratios: the plain loop's cost over each instrumented loop's —
  // "what fraction of full speed does the instrumented loop keep". A
  // drop means an instrumentation point got more expensive relative to
  // the work it wraps.
  const double counter_keep = plain_ns / counter_ns;
  const double histogram_keep = plain_ns / histogram_ns;
  // A stopped span site cannot make the loop faster; ratios above 1 are
  // timing noise, and letting them into the baseline would fail honest
  // runs later. Clamp so the gate tracks real slowdowns only.
  const double span_stopped_keep = std::min(1.0, plain_ns / span_stopped_ns);
  // Recording cost is gated against the stopped span, not the plain
  // loop: it pays two clock reads + a ring write by design.
  const double recording_vs_stopped = span_stopped_ns / span_recording_ns;
  // Clamped for the same reason as span_stopped_keep: CheckedMutex cannot
  // beat the std::mutex it wraps; above-1 readings are scheduler noise.
  const double checked_mutex_keep =
      std::min(1.0, std_mutex_ns / checked_mutex_ns);

  char buffer[2048];
  const int written = std::snprintf(
      buffer, sizeof(buffer),
      "{\n"
      "  \"config\": {\"iters\": %llu, \"reps\": %llu},\n"
      "  \"ns_per_op\": {\"plain\": %.3f, \"counter\": %.3f, "
      "\"histogram\": %.3f, \"span_stopped\": %.3f, "
      "\"span_recording\": %.3f, \"std_mutex\": %.3f, "
      "\"checked_mutex\": %.3f},\n"
      "  \"exposition\": {\"metrics\": %zu, \"prometheus_bytes\": %zu, "
      "\"render_us\": %.1f, \"snapshot_bytes\": %zu, "
      "\"snapshot_us\": %.1f},\n"
      "  \"recorder\": {\"recorded\": %llu, \"dropped\": %llu},\n"
      "  \"gates\": {\"counter_keep\": %.3f, \"histogram_keep\": %.3f, "
      "\"span_stopped_keep\": %.3f, \"recording_vs_stopped\": %.3f, "
      "\"checked_mutex_keep\": %.3f}\n"
      "}\n",
      static_cast<unsigned long long>(iters),
      static_cast<unsigned long long>(reps), plain_ns, counter_ns,
      histogram_ns, span_stopped_ns, span_recording_ns, std_mutex_ns,
      checked_mutex_ns, registry.size(),
      prometheus.size(), render_us, snapshot.size(), snapshot_us,
      static_cast<unsigned long long>(recorder.recorded()),
      static_cast<unsigned long long>(recorder.dropped()), counter_keep,
      histogram_keep, span_stopped_keep, recording_vs_stopped,
      checked_mutex_keep);
  if (written < 0 || static_cast<size_t>(written) >= sizeof(buffer)) {
    std::fprintf(stderr, "report did not fit\n");
    return 1;
  }
  std::fputs(buffer, stdout);
  if (const char* path = std::getenv("HGDB_BENCH_JSON")) {
    std::ofstream out(path, std::ios::trunc);
    out << buffer;
  }

  // Sanity floor rather than a perf gate: a *stopped* span site must stay
  // within 2x of the bare loop — anything worse means the disabled path
  // grew real work (the compile-time-zero claim would be hollow).
  if (span_stopped_ns > plain_ns * 2.0 + 2.0) {
    std::fprintf(stderr,
                 "stopped span site too expensive: %.3f ns vs %.3f ns plain\n",
                 span_stopped_ns, plain_ns);
    return 1;
  }
#if !HGDB_CHECK_LOCK_RANKS
  // Hard zero-overhead floor (release builds only — with rank checks
  // compiled in, the bookkeeping is supposed to cost something): the
  // annotated mutex must stay within 1.5x + 2 ns of the raw one.
  if (checked_mutex_ns > std_mutex_ns * 1.5 + 2.0) {
    std::fprintf(stderr,
                 "CheckedMutex not free in release: %.3f ns vs %.3f ns raw\n",
                 checked_mutex_ns, std_mutex_ns);
    return 1;
  }
#endif
  return 0;
}
