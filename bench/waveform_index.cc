// EXP-W — Indexed waveform store vs. in-memory trace (the scaling step the
// replay path needs for production-size dumps; cf. Goeders & Wilton's
// trace-based HLS debugging, where the waveform store is the bottleneck).
//
// The harness synthesizes a VCD of configurable size, then compares the two
// WaveformSource backends on the same queries:
//   in_memory   trace::VcdTrace       — full parse, O(trace) resident
//   indexed     waveform::IndexedWaveform — one-time convert, O(log n)
//               seeks through an LRU block cache, residency bounded by the
//               cache capacity
//
// Expected shape: indexed open time is orders of magnitude below the full
// parse, random-seek latency stays in the same ballpark, and the peak
// resident block count never exceeds the configured LRU capacity. Exit is
// nonzero on any parity mismatch or LRU bound violation, so the bench
// doubles as a stress check.
//
// Output: one JSON object on stdout.
// Environment: HGDB_WVX_SIGNALS (default 40), HGDB_WVX_CYCLES (20000),
//              HGDB_WVX_SEEKS (2000), HGDB_WVX_CACHE (32, in blocks),
//              HGDB_WVX_BLOCK_CAP (256, changes per block).
#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "trace/vcd_reader.h"
#include "waveform/index_writer.h"
#include "waveform/indexed_waveform.h"

namespace {

using namespace hgdb;
using Clock = std::chrono::steady_clock;

uint64_t env_or(const char* name, uint64_t fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::strtoull(value, nullptr, 10) : fallback;
}

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

/// Deterministic xorshift so runs are reproducible.
struct Rng {
  uint64_t state;
  uint64_t next() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  }
};

/// Streams a synthetic VCD to disk: one clock plus `signals` data signals of
/// mixed widths, `cycles` clock periods, ~25% change probability per signal
/// per cycle. Returns the number of value changes written (excluding clock).
uint64_t write_synthetic_vcd(const std::string& path, uint64_t signals,
                             uint64_t cycles) {
  std::ofstream out(path, std::ios::trunc);
  const uint32_t widths[] = {1, 8, 32, 80};
  out << "$timescale 1ns $end\n$scope module bench $end\n";
  out << "$var wire 1 ck clock $end\n";
  for (uint64_t i = 0; i < signals; ++i) {
    out << "$var wire " << widths[i % 4] << " c" << i << " sig" << i
        << " [" << widths[i % 4] - 1 << ":0] $end\n";
  }
  out << "$upscope $end\n$enddefinitions $end\n";

  Rng rng{0x9e3779b97f4a7c15ull};
  uint64_t changes = 0;
  out << "#0\n$dumpvars\n0ck\n";
  for (uint64_t i = 0; i < signals; ++i) out << "b0 c" << i << "\n";
  out << "$end\n";
  for (uint64_t t = 0; t < cycles; ++t) {
    out << "#" << (2 * t + 1) << "\n1ck\n";
    for (uint64_t i = 0; i < signals; ++i) {
      if ((rng.next() & 3) != 0) continue;  // ~25% change rate
      const uint32_t width = widths[i % 4];
      const uint64_t value = rng.next();
      out << "b";
      // Binary, MSB first, enough digits to look like real traffic.
      const uint32_t digits = width < 64 ? width : 64;
      for (uint32_t bit = digits; bit-- > 0;) out << ((value >> bit) & 1);
      out << " c" << i << "\n";
      ++changes;
    }
    out << "#" << (2 * t + 2) << "\n0ck\n";
  }
  return changes;
}

}  // namespace

int main() {
  // At least one data signal: the seek loop excludes the clock.
  const uint64_t signals = std::max<uint64_t>(1, env_or("HGDB_WVX_SIGNALS", 40));
  const uint64_t cycles = env_or("HGDB_WVX_CYCLES", 20000);
  const uint64_t seeks = env_or("HGDB_WVX_SEEKS", 2000);
  const size_t cache_blocks = env_or("HGDB_WVX_CACHE", 32);
  const uint32_t block_cap = static_cast<uint32_t>(env_or("HGDB_WVX_BLOCK_CAP", 256));

  const std::string vcd_path = "/tmp/hgdb_bench_waveform.vcd";
  const std::string wvx_path = "/tmp/hgdb_bench_waveform.wvx";

  const uint64_t changes = write_synthetic_vcd(vcd_path, signals, cycles);

  // -- in-memory backend: full-text parse ----------------------------------------
  auto t0 = Clock::now();
  auto trace = trace::parse_vcd_file(vcd_path);
  const double parse_ms = ms_since(t0);
  const size_t trace_resident = trace.resident_bytes();

  // -- indexed backend: one-time convert, then header+footer-only open -----------
  t0 = Clock::now();
  waveform::IndexWriterOptions options;
  options.block_capacity = block_cap;
  waveform::convert_vcd_to_index(vcd_path, wvx_path, options);
  const double convert_ms = ms_since(t0);

  t0 = Clock::now();
  waveform::IndexedWaveform indexed(wvx_path, cache_blocks);
  const double open_ms = ms_since(t0);

  // -- random cycle seeks, answered by both backends -----------------------------
  Rng rng{0xdeadbeefcafef00dull};
  std::vector<std::pair<size_t, uint64_t>> queries;
  queries.reserve(seeks);
  for (uint64_t i = 0; i < seeks; ++i) {
    // Skip signal 0 (the clock) so seeks hit data blocks.
    const size_t signal = 1 + rng.next() % (trace.signal_count() - 1);
    const uint64_t time = rng.next() % (trace.max_time() + 1);
    queries.emplace_back(signal, time);
  }

  uint64_t mismatches = 0;
  t0 = Clock::now();
  uint64_t checksum_memory = 0;
  for (const auto& [signal, time] : queries) {
    checksum_memory += trace.value_at(signal, time).to_uint64();
  }
  const double memory_seek_ms = ms_since(t0);

  t0 = Clock::now();
  uint64_t checksum_indexed = 0;
  for (const auto& [signal, time] : queries) {
    checksum_indexed += indexed.value_at(signal, time).to_uint64();
  }
  const double indexed_seek_ms = ms_since(t0);

  for (const auto& [signal, time] : queries) {
    if (trace.value_at(signal, time) != indexed.value_at(signal, time)) {
      ++mismatches;
    }
  }

  const auto stats = indexed.cache_stats();
  const bool lru_bounded = stats.peak_resident <= indexed.cache_capacity();
  // Residency proxy for the indexed store: peak cached blocks, each at most
  // block_capacity entries of (8 time bytes + value payload + BitVector
  // overhead of one 64-bit word per started 64 bits).
  const uint64_t indexed_resident =
      static_cast<uint64_t>(stats.peak_resident) * block_cap * (8 + 16 + 16);

  std::printf(
      "{\n"
      "  \"config\": {\"signals\": %" PRIu64 ", \"cycles\": %" PRIu64
      ", \"changes\": %" PRIu64 ", \"seeks\": %" PRIu64
      ", \"cache_blocks\": %zu, \"block_capacity\": %u},\n"
      "  \"in_memory\": {\"parse_ms\": %.2f, \"resident_bytes\": %zu, "
      "\"seek_us_avg\": %.3f},\n"
      "  \"indexed\": {\"convert_ms\": %.2f, \"open_ms\": %.2f, "
      "\"seek_us_avg\": %.3f, \"resident_bytes_proxy\": %" PRIu64 ",\n"
      "    \"total_blocks\": %" PRIu64 ", \"cache\": {\"hits\": %" PRIu64
      ", \"misses\": %" PRIu64 ", \"evictions\": %" PRIu64
      ", \"peak_resident\": %zu, \"capacity\": %zu}},\n"
      "  \"open_vs_parse_speedup\": %.1f,\n"
      "  \"parity_mismatches\": %" PRIu64 ",\n"
      "  \"lru_bounded\": %s\n"
      "}\n",
      signals, cycles, changes, seeks, cache_blocks, block_cap, parse_ms,
      trace_resident, memory_seek_ms * 1000.0 / static_cast<double>(seeks),
      convert_ms, open_ms,
      indexed_seek_ms * 1000.0 / static_cast<double>(seeks), indexed_resident,
      indexed.total_blocks(), stats.hits, stats.misses, stats.evictions,
      stats.peak_resident, indexed.cache_capacity(),
      open_ms > 0 ? parse_ms / open_ms : 0.0, mismatches,
      lru_bounded ? "true" : "false");

  std::remove(vcd_path.c_str());
  std::remove(wvx_path.c_str());
  if (mismatches != 0 || !lru_bounded) return 1;
  (void)checksum_memory;
  (void)checksum_indexed;
  return 0;
}
