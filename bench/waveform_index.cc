// EXP-W — Waveform storage engine: in-memory trace vs. the indexed store,
// format v2 vs. v3, buffered vs. mmap reads (the scaling steps the replay
// path needs for production-size dumps; cf. Goeders & Wilton's trace-based
// HLS debugging, where the waveform store is the bottleneck).
//
// The harness synthesizes a multi-scope VCD of configurable size (with
// id-code aliases, like real dumps), then compares:
//   in_memory     trace::VcdTrace — full parse, O(trace) resident
//   indexed v2    fixed-stride codec, duplicated alias streams (legacy)
//   indexed v3    varint/delta codec + alias dedup
//   indexed v4    per-signal codec (RLE auto-selected for clock-likes)
//   sharded v4    per-scope shard files, converted at --jobs 1/2/4
//   buffered/mmap the two StorageBackends answering identical random seeks
//
// Expected shape: indexed open time orders of magnitude below the full
// parse; the v3 file >= 30% smaller than v2 on the same dump; the RLE
// stream for the clock >= 5x smaller than v3's delta stream; mmap-backed
// random block reads no slower than buffered; parallel sharded convert
// >= 2.5x faster at 4 jobs than 1 (enforced only on machines with >= 4
// hardware threads — on smaller runners the honest number is ~1x and is
// reported, not gated); peak resident blocks never above the LRU
// capacity. Exit is nonzero on any parity mismatch, LRU bound violation,
// or failed absolute gate, so the bench doubles as a stress check.
//
// Output: one JSON object on stdout (and to $HGDB_BENCH_JSON when set).
// The "gates" object carries the ratios tools/check_bench_regression.py
// tracks against bench/baselines/BENCH_waveform.json.
// Environment: HGDB_WVX_SIGNALS (default 40), HGDB_WVX_ALIASES (10),
//              HGDB_WVX_CYCLES (20000), HGDB_WVX_SEEKS (2000),
//              HGDB_WVX_CACHE (32, in blocks), HGDB_WVX_BLOCK_CAP (256),
//              HGDB_WVX_SCOPES (4), HGDB_BENCH_JSON (optional output path).
#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <string_view>
#include <vector>

#include <thread>

#include "trace/vcd_reader.h"
#include "waveform/index_writer.h"
#include "waveform/indexed_waveform.h"
#include "waveform/sharded_writer.h"

namespace {

using namespace hgdb;
using Clock = std::chrono::steady_clock;

uint64_t env_or(const char* name, uint64_t fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::strtoull(value, nullptr, 10) : fallback;
}

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

uint64_t file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  return static_cast<uint64_t>(in.tellg());
}

/// Deterministic xorshift so runs are reproducible.
struct Rng {
  uint64_t state;
  uint64_t next() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  }
};

/// Streams a synthetic VCD to disk: one clock plus `signals` data signals
/// of mixed widths spread round-robin over `scopes` top-level modules
/// (so the sharded converter has real scope structure to split on),
/// `aliases` re-declared names sharing earlier id codes in a trailing
/// `mirror` scope (cross-scope aliasing, like a netlist's port hookups),
/// `cycles` clock periods, ~25% change probability per signal per cycle.
/// Returns the number of value changes written (excluding clock).
uint64_t write_synthetic_vcd(const std::string& path, uint64_t signals,
                             uint64_t aliases, uint64_t cycles,
                             uint64_t scopes) {
  std::ofstream out(path, std::ios::trunc);
  const uint32_t widths[] = {1, 8, 32, 80};
  out << "$timescale 1ns $end\n";
  for (uint64_t s = 0; s < scopes; ++s) {
    out << "$scope module mod" << s << " $end\n";
    if (s == 0) out << "$var wire 1 ck clock $end\n";
    for (uint64_t i = s; i < signals; i += scopes) {
      out << "$var wire " << widths[i % 4] << " c" << i << " sig" << i
          << " [" << widths[i % 4] - 1 << ":0] $end\n";
    }
    out << "$upscope $end\n";
  }
  if (aliases > 0) {
    out << "$scope module mirror $end\n";
    for (uint64_t a = 0; a < aliases; ++a) {
      const uint64_t target = a % signals;
      out << "$var wire " << widths[target % 4] << " c" << target << " alias"
          << a << " [" << widths[target % 4] - 1 << ":0] $end\n";
    }
    out << "$upscope $end\n";
  }
  out << "$enddefinitions $end\n";

  Rng rng{0x9e3779b97f4a7c15ull};
  uint64_t changes = 0;
  out << "#0\n$dumpvars\n0ck\n";
  for (uint64_t i = 0; i < signals; ++i) out << "b0 c" << i << "\n";
  out << "$end\n";
  for (uint64_t t = 0; t < cycles; ++t) {
    out << "#" << (2 * t + 1) << "\n1ck\n";
    for (uint64_t i = 0; i < signals; ++i) {
      if ((rng.next() & 3) != 0) continue;  // ~25% change rate
      const uint32_t width = widths[i % 4];
      const uint64_t value = rng.next();
      out << "b";
      // Binary, MSB first, enough digits to look like real traffic.
      const uint32_t digits = width < 64 ? width : 64;
      for (uint32_t bit = digits; bit-- > 0;) out << ((value >> bit) & 1);
      out << " c" << i << "\n";
      ++changes;
    }
    out << "#" << (2 * t + 2) << "\n0ck\n";
  }
  return changes;
}

/// Answers `queries` on `source`, timing the loop and checksumming.
template <typename Source>
double run_seeks(const Source& source,
                 const std::vector<std::pair<size_t, uint64_t>>& queries,
                 uint64_t* checksum) {
  const auto t0 = Clock::now();
  uint64_t sum = 0;
  for (const auto& [signal, time] : queries) {
    sum += source.value_at(signal, time).to_uint64();
  }
  *checksum = sum;
  return ms_since(t0);
}

}  // namespace

int main() {
  // At least one data signal: the seek loop excludes the clock.
  const uint64_t signals = std::max<uint64_t>(1, env_or("HGDB_WVX_SIGNALS", 40));
  const uint64_t aliases = env_or("HGDB_WVX_ALIASES", 10);
  const uint64_t cycles = env_or("HGDB_WVX_CYCLES", 20000);
  const uint64_t seeks = env_or("HGDB_WVX_SEEKS", 2000);
  const size_t cache_blocks = env_or("HGDB_WVX_CACHE", 32);
  const uint32_t block_cap = static_cast<uint32_t>(env_or("HGDB_WVX_BLOCK_CAP", 256));
  const uint64_t scopes =
      std::max<uint64_t>(1, env_or("HGDB_WVX_SCOPES", 4));

  const std::string vcd_path = "/tmp/hgdb_bench_waveform.vcd";
  const std::string v2_path = "/tmp/hgdb_bench_waveform.v2.wvx";
  const std::string v3_path = "/tmp/hgdb_bench_waveform.v3.wvx";
  const std::string v4_path = "/tmp/hgdb_bench_waveform.v4.wvx";

  const uint64_t changes =
      write_synthetic_vcd(vcd_path, signals, aliases, cycles, scopes);

  // -- in-memory backend: full-text parse ----------------------------------------
  auto t0 = Clock::now();
  auto trace = trace::parse_vcd_file(vcd_path);
  const double parse_ms = ms_since(t0);
  const size_t trace_resident = trace.resident_bytes();

  // -- indexed backends: one-time convert per format version ---------------------
  waveform::IndexWriterOptions v2_options;
  v2_options.version = 2;
  v2_options.block_capacity = block_cap;
  t0 = Clock::now();
  waveform::convert_vcd_to_index(vcd_path, v2_path, v2_options);
  const double convert_v2_ms = ms_since(t0);

  waveform::IndexWriterOptions v3_options;
  v3_options.version = 3;  // the file default is v4 now; keep v3 tracked
  v3_options.block_capacity = block_cap;
  t0 = Clock::now();
  waveform::convert_vcd_to_index(vcd_path, v3_path, v3_options);
  const double convert_v3_ms = ms_since(t0);

  // v4: per-signal codec selection (the clock's toggle stream goes RLE).
  waveform::IndexWriterOptions v4_options;
  v4_options.block_capacity = block_cap;
  t0 = Clock::now();
  waveform::convert_vcd_to_index(vcd_path, v4_path, v4_options);
  const double convert_v4_ms = ms_since(t0);

  // Sharded v4 convert at 1/2/4 jobs: same dump, per-scope shard files,
  // parser thread feeding per-shard writer workers. Shard layout — and
  // therefore byte content — is independent of the job count, so the
  // wall-clock ratio isolates the pipeline overlap.
  const uint32_t job_steps[] = {1, 2, 4};
  double sharded_ms[3] = {0, 0, 0};
  uint32_t shard_count = 0;
  for (int step = 0; step < 3; ++step) {
    waveform::ShardedConvertOptions sharded_options;
    sharded_options.index.block_capacity = block_cap;
    sharded_options.jobs = job_steps[step];
    const std::string path =
        "/tmp/hgdb_bench_waveform.jobs" + std::to_string(job_steps[step]) +
        ".wvx";
    t0 = Clock::now();
    const auto sharded_result =
        waveform::convert_vcd_to_sharded_index(vcd_path, path, sharded_options);
    sharded_ms[step] = ms_since(t0);
    shard_count = sharded_result.shards;
  }

  const uint64_t v2_bytes = file_bytes(v2_path);
  const uint64_t v3_bytes = file_bytes(v3_path);
  const uint64_t v4_bytes = file_bytes(v4_path);
  // The clock contributes 2 changes per cycle on top of the data changes.
  const uint64_t total_changes = changes + 2 * cycles;

  // -- header+footer-only opens --------------------------------------------------
  // Averaged over several opens: a single ~30 us open is dominated by
  // one-shot syscall/page-cache jitter, which would make the CI-gated
  // open-vs-parse ratio flaky on shared runners.
  constexpr int kOpenReps = 16;
  t0 = Clock::now();
  for (int i = 0; i < kOpenReps - 1; ++i) {
    waveform::IndexedWaveform reopen(
        v3_path, waveform::WaveformOpenOptions{cache_blocks,
                                               waveform::IoMode::kBuffered});
    (void)reopen.signal_count();
  }
  waveform::IndexedWaveform buffered(
      v3_path, waveform::WaveformOpenOptions{cache_blocks,
                                             waveform::IoMode::kBuffered});
  const double open_ms = ms_since(t0) / kOpenReps;
  waveform::IndexedWaveform mapped(
      v3_path,
      waveform::WaveformOpenOptions{cache_blocks, waveform::IoMode::kMmap});
  waveform::IndexedWaveform v2_indexed(
      v2_path, waveform::WaveformOpenOptions{cache_blocks,
                                             waveform::IoMode::kBuffered});
  waveform::IndexedWaveform v4_indexed(
      v4_path, waveform::WaveformOpenOptions{cache_blocks,
                                             waveform::IoMode::kBuffered});
  // The 4-job manifest; one shared cache budget across every shard.
  waveform::IndexedWaveform sharded(
      "/tmp/hgdb_bench_waveform.jobs4.wvx",
      waveform::WaveformOpenOptions{cache_blocks, waveform::IoMode::kBuffered});
  // Sharded global signal order differs from declaration order; map
  // through hierarchical names once.
  std::vector<size_t> sharded_index(trace.signal_count());
  for (size_t i = 0; i < trace.signal_count(); ++i) {
    const auto mapped_index = sharded.signal_index(trace.signal(i).hier_name);
    if (!mapped_index) {
      std::fprintf(stderr, "sharded index is missing signal '%s'\n",
                   trace.signal(i).hier_name.c_str());
      return 1;
    }
    sharded_index[i] = *mapped_index;
  }

  // Per-codec clock stream cost: v3 encodes the clock with delta varints,
  // v4 auto-selects RLE for it. Signal 0 is the clock in declaration
  // order (single-file indexes keep that order).
  auto payload_sum = [](const std::vector<waveform::BlockInfo>& blocks) {
    uint64_t sum = 0;
    for (const auto& block : blocks) sum += block.payload_bytes;
    return sum;
  };
  const uint64_t clock_delta_bytes = payload_sum(buffered.blocks(0));
  const uint64_t clock_rle_bytes = payload_sum(v4_indexed.blocks(0));
  const bool clock_is_rle =
      std::string_view(v4_indexed.signal_codec_name(0)) == "rle";

  // -- random cycle seeks, answered by every backend -----------------------------
  Rng rng{0xdeadbeefcafef00dull};
  std::vector<std::pair<size_t, uint64_t>> queries;
  queries.reserve(seeks);
  for (uint64_t i = 0; i < seeks; ++i) {
    // Skip signal 0 (the clock) so seeks hit data blocks; aliased names
    // participate (they resolve through the canonical indirection).
    const size_t signal = 1 + rng.next() % (trace.signal_count() - 1);
    const uint64_t time = rng.next() % (trace.max_time() + 1);
    queries.emplace_back(signal, time);
  }

  uint64_t checksum_memory = 0, checksum_buffered = 0, checksum_mapped = 0,
           checksum_v2 = 0;
  const double memory_seek_ms = run_seeks(trace, queries, &checksum_memory);
  // Warm both indexed stores identically, then time steady-state seeks:
  // the mmap-vs-buffered comparison is about the cold-block read path
  // under LRU churn, not first-touch page faults.
  (void)run_seeks(buffered, queries, &checksum_buffered);
  (void)run_seeks(mapped, queries, &checksum_mapped);
  const double buffered_seek_ms = run_seeks(buffered, queries, &checksum_buffered);
  const double mmap_seek_ms = run_seeks(mapped, queries, &checksum_mapped);
  const double v2_seek_ms = run_seeks(v2_indexed, queries, &checksum_v2);

  uint64_t mismatches = 0;
  for (const auto& [signal, time] : queries) {
    const auto expected = trace.value_at(signal, time);
    if (expected != buffered.value_at(signal, time) ||
        expected != mapped.value_at(signal, time) ||
        expected != v2_indexed.value_at(signal, time) ||
        expected != v4_indexed.value_at(signal, time) ||
        expected != sharded.value_at(sharded_index[signal], time)) {
      ++mismatches;
    }
  }
  if (checksum_buffered != checksum_mapped || checksum_buffered != checksum_v2 ||
      checksum_buffered != checksum_memory) {
    ++mismatches;
  }

  const auto stats = buffered.cache_stats();
  const bool lru_bounded =
      stats.peak_resident <= buffered.cache_capacity() &&
      mapped.cache_stats().peak_resident <= mapped.cache_capacity();
  // Residency proxy for the indexed store: peak cached blocks, each at most
  // block_capacity entries of (8 time bytes + value payload + BitVector
  // overhead of one 64-bit word per started 64 bits).
  const uint64_t indexed_resident =
      static_cast<uint64_t>(stats.peak_resident) * block_cap * (8 + 16 + 16);

  const double v3_size_savings =
      v2_bytes > 0 ? 1.0 - static_cast<double>(v3_bytes) /
                               static_cast<double>(v2_bytes)
                   : 0.0;
  const double mmap_vs_buffered =
      mmap_seek_ms > 0 ? buffered_seek_ms / mmap_seek_ms : 0.0;
  const double open_vs_parse = open_ms > 0 ? parse_ms / open_ms : 0.0;
  const double convert_parallel_speedup =
      sharded_ms[2] > 0 ? sharded_ms[0] / sharded_ms[2] : 0.0;
  const double rle_clock_compression =
      clock_rle_bytes > 0 ? static_cast<double>(clock_delta_bytes) /
                                static_cast<double>(clock_rle_bytes)
                          : 0.0;

  // Absolute criteria. The RLE ratio is a property of the encodings, so
  // it holds on any machine; the pipeline speedup needs real cores to
  // overlap on, so it is enforced only where >= 4 hardware threads exist
  // (elsewhere the honest ~1x is reported and regression-tracked, not
  // thresholded).
  bool gates_ok = true;
  if (!clock_is_rle || rle_clock_compression < 5.0) {
    std::fprintf(stderr,
                 "GATE FAIL: clock stream codec '%s', rle compression %.1fx "
                 "(need auto-selected rle and >= 5x vs delta)\n",
                 v4_indexed.signal_codec_name(0), rle_clock_compression);
    gates_ok = false;
  }
  if (std::thread::hardware_concurrency() >= 4 &&
      convert_parallel_speedup < 2.5) {
    std::fprintf(stderr,
                 "GATE FAIL: sharded convert speedup %.2fx at 4 jobs "
                 "(need >= 2.5x on this %u-thread machine)\n",
                 convert_parallel_speedup,
                 std::thread::hardware_concurrency());
    gates_ok = false;
  }

  char json[8192];
  std::snprintf(
      json, sizeof(json),
      "{\n"
      "  \"config\": {\"signals\": %" PRIu64 ", \"aliases\": %" PRIu64
      ", \"cycles\": %" PRIu64 ", \"changes\": %" PRIu64
      ", \"seeks\": %" PRIu64 ", \"cache_blocks\": %zu, \"block_capacity\": %u"
      ", \"scopes\": %" PRIu64 ", \"hardware_threads\": %u},\n"
      "  \"in_memory\": {\"parse_ms\": %.2f, \"resident_bytes\": %zu, "
      "\"seek_us_avg\": %.3f},\n"
      "  \"indexed_v2\": {\"convert_ms\": %.2f, \"file_bytes\": %" PRIu64
      ", \"bytes_per_change\": %.2f, \"seek_us_avg\": %.3f},\n"
      "  \"indexed_v3\": {\"convert_ms\": %.2f, \"file_bytes\": %" PRIu64
      ", \"bytes_per_change\": %.2f, \"open_ms\": %.2f,\n"
      "    \"buffered_seek_us_avg\": %.3f, \"mmap_seek_us_avg\": %.3f, "
      "\"resident_bytes_proxy\": %" PRIu64 ",\n"
      "    \"total_blocks\": %" PRIu64 ", \"aliases_deduped\": %zu, "
      "\"cache\": {\"hits\": %" PRIu64 ", \"misses\": %" PRIu64
      ", \"evictions\": %" PRIu64 ", \"peak_resident\": %zu, \"capacity\": %zu}},\n"
      "  \"indexed_v4\": {\"convert_ms\": %.2f, \"file_bytes\": %" PRIu64
      ", \"bytes_per_change\": %.2f, \"clock_codec\": \"%s\",\n"
      "    \"clock_delta_payload_bytes\": %" PRIu64
      ", \"clock_rle_payload_bytes\": %" PRIu64 "},\n"
      "  \"sharded\": {\"shards\": %u, \"convert_jobs1_ms\": %.2f, "
      "\"convert_jobs2_ms\": %.2f, \"convert_jobs4_ms\": %.2f},\n"
      "  \"gates\": {\"open_vs_parse_speedup\": %.1f, "
      "\"v3_size_savings\": %.3f, \"mmap_vs_buffered_seek\": %.2f, "
      "\"convert_parallel_speedup\": %.2f, \"rle_clock_compression\": %.1f},\n"
      "  \"parity_mismatches\": %" PRIu64 ",\n"
      "  \"lru_bounded\": %s\n"
      "}\n",
      signals, aliases, cycles, changes, seeks, cache_blocks, block_cap,
      scopes, std::thread::hardware_concurrency(), parse_ms, trace_resident,
      memory_seek_ms * 1000.0 / static_cast<double>(seeks), convert_v2_ms,
      v2_bytes, static_cast<double>(v2_bytes) / static_cast<double>(total_changes),
      v2_seek_ms * 1000.0 / static_cast<double>(seeks), convert_v3_ms,
      v3_bytes, static_cast<double>(v3_bytes) / static_cast<double>(total_changes),
      open_ms, buffered_seek_ms * 1000.0 / static_cast<double>(seeks),
      mmap_seek_ms * 1000.0 / static_cast<double>(seeks), indexed_resident,
      buffered.total_blocks(), buffered.alias_count(), stats.hits,
      stats.misses, stats.evictions, stats.peak_resident,
      buffered.cache_capacity(), convert_v4_ms, v4_bytes,
      static_cast<double>(v4_bytes) / static_cast<double>(total_changes),
      v4_indexed.signal_codec_name(0), clock_delta_bytes, clock_rle_bytes,
      shard_count, sharded_ms[0], sharded_ms[1], sharded_ms[2],
      open_vs_parse, v3_size_savings, mmap_vs_buffered,
      convert_parallel_speedup, rle_clock_compression, mismatches,
      lru_bounded ? "true" : "false");

  std::fputs(json, stdout);
  if (const char* json_path = std::getenv("HGDB_BENCH_JSON")) {
    std::ofstream out(json_path);
    out << json;
  }

  std::remove(vcd_path.c_str());
  std::remove(v2_path.c_str());
  std::remove(v3_path.c_str());
  std::remove(v4_path.c_str());
  for (const uint32_t jobs : job_steps) {
    const std::string stem =
        "/tmp/hgdb_bench_waveform.jobs" + std::to_string(jobs);
    std::remove((stem + ".wvx").c_str());
    for (uint32_t k = 0; k < shard_count; ++k) {
      std::remove((stem + ".shard" + std::to_string(k) + ".wvx").c_str());
    }
  }
  if (mismatches != 0 || !lru_bounded || !gates_ok) return 1;
  return 0;
}
