// EXP-4 — Fig. 2 design ablation: the loop-based breakpoint scheduler
//  (a) exits immediately when no breakpoint is inserted (the fast path that
//      keeps Fig. 5's overhead under 5%), and
//  (b) evaluates a batch of same-line breakpoints in parallel, which pays
//      off once a line has many concurrent instances ("threads").
//
// Uses a synthetic simulator interface so only scheduler cost is measured.
#include <benchmark/benchmark.h>

#include "runtime/runtime.h"
#include "symbols/symbol_table.h"
#include "vpi/sim_interface.h"

namespace {

using namespace hgdb;

/// Simulator stub: constant-value signals, manual edge injection.
class StubBackend final : public vpi::SimulatorInterface {
 public:
  std::optional<common::BitVector> get_value(const std::string&) override {
    return common::BitVector(16, value_++ & 0xffff);
  }
  std::vector<std::string> signal_names() const override { return {}; }
  std::vector<std::string> clock_names() const override { return {"clock"}; }
  uint64_t add_clock_callback(ClockCallback callback) override {
    callbacks_.push_back(std::move(callback));
    return callbacks_.size();
  }
  void remove_clock_callback(uint64_t) override { callbacks_.clear(); }
  [[nodiscard]] uint64_t get_time() const override { return time_; }

  void edge() {
    time_ += 2;
    for (auto& callback : callbacks_) callback(vpi::ClockEdge::Rising, time_);
  }

 private:
  std::vector<ClockCallback> callbacks_;
  uint64_t time_ = 1;
  uint32_t value_ = 0;
};

/// Symbol table with `lines` source lines x `threads` breakpoints per line,
/// each carrying a small enable condition.
symbols::SymbolTableData synthetic_table(size_t lines, size_t threads) {
  symbols::SymbolTableData data;
  data.instances.push_back({1, "Top"});
  int64_t bp_id = 1;
  for (size_t line = 1; line <= lines; ++line) {
    for (size_t thread = 0; thread < threads; ++thread) {
      data.breakpoints.push_back(symbols::BreakpointRow{
          bp_id++, 1, "gen.cc", static_cast<uint32_t>(line), 0,
          "sig" + std::to_string(thread) + " % 2 == 0",
          static_cast<uint32_t>(thread)});
    }
  }
  return data;
}

/// Fast path: breakpoints exist in the table, none inserted.
void BM_FastPathEdge(benchmark::State& state) {
  StubBackend backend;
  symbols::MemorySymbolTable table(
      synthetic_table(static_cast<size_t>(state.range(0)), 4));
  runtime::Runtime runtime(backend, table);
  runtime.attach();
  for (auto _ : state) backend.edge();
  state.counters["table_bps"] =
      static_cast<double>(table.data().breakpoints.size());
}
BENCHMARK(BM_FastPathEdge)->Arg(1)->Arg(64)->Arg(1024)->MinTime(0.05);

/// One inserted line with N concurrent "threads", evaluated per edge.
void BM_BatchEvaluation(benchmark::State& state) {
  const size_t threads_per_line = static_cast<size_t>(state.range(0));
  const size_t pool_threads = static_cast<size_t>(state.range(1));
  StubBackend backend;
  symbols::MemorySymbolTable table(synthetic_table(1, threads_per_line));
  runtime::RuntimeOptions options;
  options.eval_threads = pool_threads;
  runtime::Runtime runtime(backend, table, options);
  runtime.attach();
  runtime.set_stop_handler(
      [](const rpc::StopEvent&) { return runtime::Runtime::Command::Continue; });
  runtime.add_breakpoint("gen.cc", 1);
  for (auto _ : state) backend.edge();
  state.counters["conditions"] = benchmark::Counter(
      static_cast<double>(runtime.stats().conditions_evaluated),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_BatchEvaluation)
    ->ArgsProduct({{8, 64, 256}, {1, 4, 8}})
    ->ArgNames({"bps", "threads"})
    ->MinTime(0.05);

/// Scan cost with many inserted lines (worst case: every line inserted,
/// none hit — conditions all false).
void BM_FullScanNoHits(benchmark::State& state) {
  const size_t lines = static_cast<size_t>(state.range(0));
  StubBackend backend;
  // Enable conditions reference sig0; StubBackend alternates values, so
  // roughly half the edges miss entirely after condition evaluation.
  symbols::SymbolTableData data;
  data.instances.push_back({1, "Top"});
  for (size_t line = 1; line <= lines; ++line) {
    data.breakpoints.push_back(symbols::BreakpointRow{
        static_cast<int64_t>(line), 1, "gen.cc", static_cast<uint32_t>(line),
        0, "sig0 > 70000", 0});  // never true: 16-bit values
  }
  symbols::MemorySymbolTable table(std::move(data));
  runtime::Runtime runtime(backend, table);
  runtime.attach();
  for (size_t line = 1; line <= lines; ++line) {
    runtime.add_breakpoint("gen.cc", static_cast<uint32_t>(line));
  }
  for (auto _ : state) backend.edge();
}
BENCHMARK(BM_FullScanNoHits)->Arg(16)->Arg(128)->Arg(1024)->MinTime(0.05);

}  // namespace

BENCHMARK_MAIN();
