// EXP-1 — Figure 5: "Benchmark performance for RocketChip under various
// testing conditions. Whether it is in baseline (optimized) or debug
// (unoptimized) mode, at no point does hgdb overhead exceed 5% of runtime."
//
// Two experiments, one machine-readable report (BENCH_fig5.json):
//
// 1. The paper's four-configuration table. For each of the ten workloads
//    this harness measures wall-clock simulation time and prints them
//    normalized to baseline, exactly like the figure's bars:
//      baseline            optimized compile, no hgdb attached
//      baseline + hgdb     optimized compile, hgdb attached (no breakpoints)
//      debug               DontTouch compile, no hgdb
//      debug + hgdb        DontTouch compile, hgdb attached
//    Expected shape: the two +hgdb columns sit within ~5% of their bases.
//    Cycle counts are auto-calibrated per workload so each measurement
//    runs for HGDB_BENCH_TARGET_MS of wall clock (default 300).
//
// 2. The condition-evaluation hot loop: the same armed-breakpoint scenario
//    run through the interpreted tree-walk reference
//    (RuntimeOptions::compiled_eval = false) and the compiled pipeline
//    (slot-resolved symbols + batched fetch + change-driven skip), in the
//    same process. Reported as conditions/second and ns/edge from the
//    runtime's eval_ns counter; "hot" arms conditions over signals that
//    change every cycle (pure engine speed), "quiet" over constants (the
//    dirty-set skip path).
//
// Environment: HGDB_BENCH_TARGET_MS (default 300), HGDB_BENCH_REPS (3),
// HGDB_BENCH_EVAL_CYCLES (20000), HGDB_BENCH_JSON (BENCH_fig5.json).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/json.h"
#include "frontend/compile.h"
#include "ir/parser.h"
#include "runtime/runtime.h"
#include "sim/simulator.h"
#include "symbols/symbol_table.h"
#include "vpi/native_backend.h"
#include "workloads/workloads.h"

namespace {

using namespace hgdb;
using common::Json;

uint64_t env_or(const char* name, uint64_t fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::strtoull(value, nullptr, 10) : fallback;
}

/// One prepared configuration: compiled design + (optional) attached hgdb.
struct Cell {
  explicit Cell(const workloads::WorkloadInfo& info, bool debug_mode,
                bool with_hgdb) {
    frontend::CompileOptions options;
    options.debug_mode = debug_mode;
    auto compiled = frontend::compile(info.build(), options);
    table = std::make_unique<symbols::MemorySymbolTable>(compiled.symbols);
    simulator = std::make_unique<sim::Simulator>(std::move(compiled.netlist));
    backend = std::make_unique<vpi::NativeBackend>(*simulator);
    runtime = std::make_unique<runtime::Runtime>(*backend, *table);
    if (with_hgdb) runtime->attach();
  }

  /// Seconds for `cycles` further cycles (the workloads free-run, so
  /// repeated measurement reuses the same simulator).
  double measure(uint64_t cycles) {
    const auto start = std::chrono::steady_clock::now();
    simulator->run(cycles);
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  }

  std::unique_ptr<symbols::MemorySymbolTable> table;
  std::unique_ptr<sim::Simulator> simulator;
  std::unique_ptr<vpi::NativeBackend> backend;
  std::unique_ptr<runtime::Runtime> runtime;
};

/// Calibrates a per-workload cycle count hitting the wall-clock target.
uint64_t calibrate(const workloads::WorkloadInfo& info, double target_seconds) {
  frontend::CompileOptions options;
  auto compiled = frontend::compile(info.build(), options);
  sim::Simulator simulator(compiled.netlist);
  simulator.run(64);  // warm up
  const auto start = std::chrono::steady_clock::now();
  simulator.run(256);
  const double per_cycle =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count() /
      256.0;
  return std::max<uint64_t>(512, static_cast<uint64_t>(target_seconds / per_cycle));
}

// ---------------------------------------------------------------------------
// Experiment 2: condition-evaluation hot loop, interpreted vs compiled
// ---------------------------------------------------------------------------

/// A bank of workers with a conditional-breakpoint batch of `workers`
/// members at bench.cc:3. acc changes every cycle; bias never does.
std::string bench_circuit(size_t workers) {
  std::string text =
      "circuit BenchTop\n"
      "  module Worker\n"
      "    input clock : Clock\n"
      "    input bias : UInt<16>\n"
      "    output out : UInt<16>\n"
      "    reg acc : UInt<16> clock clock\n"
      "    connect acc = add(acc, bias) @[bench.cc 3 1]\n"
      "    connect out = acc @[bench.cc 4 1]\n"
      "  end\n"
      "  module BenchTop\n"
      "    input clock : Clock\n"
      "    output out : UInt<16>\n";
  for (size_t i = 0; i < workers; ++i) {
    const std::string w = "w" + std::to_string(i);
    text += "    inst " + w + " of Worker\n";
  }
  for (size_t i = 0; i < workers; ++i) {
    const std::string w = "w" + std::to_string(i);
    text += "    connect " + w + ".clock = clock\n";
    text += "    connect " + w + ".bias = UInt<16>(" +
            std::to_string(i * 3 + 1) + ")\n";
  }
  std::string sum = "w0.out";
  for (size_t i = 1; i < workers; ++i) {
    sum = "add(" + sum + ", w" + std::to_string(i) + ".out)";
  }
  text += "    connect out = " + sum + "\n  end\nend\n";
  return text;
}

struct EvalRun {
  double conditions_per_sec = 0;
  double ns_per_edge = 0;
  uint64_t conditions_evaluated = 0;
  uint64_t dirty_skips = 0;
  uint64_t batch_fetches = 0;
};

/// Runs `cycles` with a conditional breakpoint armed on every worker and
/// reports throughput from the runtime's own eval-time counter.
EvalRun run_eval(bool compiled_eval, const std::string& condition,
                 uint64_t cycles, size_t workers) {
  frontend::CompileOptions copt;
  copt.debug_mode = true;
  auto compiled = frontend::compile(
      ir::parse_circuit(bench_circuit(workers)), copt);
  symbols::MemorySymbolTable table(compiled.symbols);
  sim::Simulator simulator(compiled.netlist);
  vpi::NativeBackend backend(simulator);
  runtime::RuntimeOptions options;
  options.eval_threads = 1;  // measure the engine, not pool dispatch
  options.compiled_eval = compiled_eval;
  runtime::Runtime runtime(backend, table, options);
  runtime.attach();
  if (runtime.add_breakpoint("bench.cc", 3, condition).size() != workers) {
    std::fprintf(stderr, "bench: failed to arm %zu conditions\n", workers);
    std::exit(1);
  }
  simulator.run(cycles);
  const auto stats = runtime.stats();
  EvalRun out;
  out.conditions_evaluated = stats.conditions_evaluated;
  out.dirty_skips = stats.dirty_skips;
  out.batch_fetches = stats.batch_fetches;
  const double eval_seconds = static_cast<double>(stats.eval_ns) / 1e9;
  // A dirty-skip still produces a verdict for its member, so both count
  // as completed condition checks.
  const double verdicts =
      static_cast<double>(stats.conditions_evaluated + stats.dirty_skips);
  out.conditions_per_sec = eval_seconds > 0 ? verdicts / eval_seconds : 0;
  out.ns_per_edge = stats.clock_edges != 0
                        ? static_cast<double>(stats.eval_ns) /
                              static_cast<double>(stats.clock_edges)
                        : 0;
  return out;
}

Json eval_json(const EvalRun& run) {
  Json out = Json::object();
  out["conditions_per_sec"] = Json(run.conditions_per_sec);
  out["ns_per_edge"] = Json(run.ns_per_edge);
  out["conditions_evaluated"] = Json(run.conditions_evaluated);
  out["dirty_skips"] = Json(run.dirty_skips);
  out["batch_fetches"] = Json(run.batch_fetches);
  return out;
}

}  // namespace

int main() {
  const double target_seconds =
      static_cast<double>(env_or("HGDB_BENCH_TARGET_MS", 300)) / 1000.0;
  const int reps = static_cast<int>(env_or("HGDB_BENCH_REPS", 3));
  const uint64_t eval_cycles = env_or("HGDB_BENCH_EVAL_CYCLES", 20000);
  const char* json_path_env = std::getenv("HGDB_BENCH_JSON");
  const std::string json_path =
      json_path_env != nullptr ? json_path_env : "BENCH_fig5.json";
  constexpr size_t kWorkers = 8;

  Json report = Json::object();
  report["bench"] = Json(std::string("fig5_overhead"));
  Json config = Json::object();
  config["target_ms"] = Json(target_seconds * 1000.0);
  config["reps"] = Json(static_cast<int64_t>(reps));
  config["eval_cycles"] = Json(eval_cycles);
  config["eval_workers"] = Json(static_cast<int64_t>(kWorkers));
  report["config"] = std::move(config);

  // -- experiment 2 first: fast, and the headline number -----------------------
  std::printf(
      "condition-evaluation hot loop (%llu cycles, %zu conditional "
      "breakpoints)\n",
      static_cast<unsigned long long>(eval_cycles), kWorkers);
  std::printf("%-22s %18s %12s %12s %12s\n", "scenario", "conditions/s",
              "ns/edge", "evaluated", "dirty-skips");

  // Hot: inputs change every cycle — measures raw engine speed.
  const std::string hot_condition = "acc % 13 == 42 && acc * 3 > bias + 100";
  // Quiet: inputs are constants — measures the change-driven skip path.
  const std::string quiet_condition = "bias % 7 == 3 && bias * 5 > 1000";

  Json condition_eval = Json::object();
  double hot_speedup = 0;
  for (const auto& [label, condition] :
       {std::pair<std::string, std::string>{"hot", hot_condition},
        {"quiet", quiet_condition}}) {
    const EvalRun interpreted = run_eval(false, condition, eval_cycles, kWorkers);
    const EvalRun compiled = run_eval(true, condition, eval_cycles, kWorkers);
    const double speedup =
        interpreted.conditions_per_sec > 0
            ? compiled.conditions_per_sec / interpreted.conditions_per_sec
            : 0;
    if (label == "hot") hot_speedup = speedup;
    std::printf("%-22s %18.0f %12.1f %12llu %12llu\n",
                (label + " interpreted").c_str(),
                interpreted.conditions_per_sec, interpreted.ns_per_edge,
                static_cast<unsigned long long>(interpreted.conditions_evaluated),
                static_cast<unsigned long long>(interpreted.dirty_skips));
    std::printf("%-22s %18.0f %12.1f %12llu %12llu  (%.1fx)\n",
                (label + " compiled").c_str(), compiled.conditions_per_sec,
                compiled.ns_per_edge,
                static_cast<unsigned long long>(compiled.conditions_evaluated),
                static_cast<unsigned long long>(compiled.dirty_skips), speedup);
    Json scenario = Json::object();
    scenario["interpreted"] = eval_json(interpreted);
    scenario["compiled"] = eval_json(compiled);
    scenario["speedup"] = Json(speedup);
    condition_eval[label] = std::move(scenario);
  }
  report["condition_eval"] = std::move(condition_eval);

  // -- experiment 1: the Fig. 5 table ------------------------------------------
  std::printf(
      "\nEXP-1 / Figure 5: simulation time normalized to baseline "
      "(~%.0f ms per cell, best of %d)\n",
      target_seconds * 1000, reps);
  std::printf("%-10s %10s %15s %10s %13s %11s %11s\n", "workload", "baseline",
              "baseline+hgdb", "debug", "debug+hgdb", "ovh(base)%", "ovh(dbg)%");

  Json fig5 = Json::array();
  double worst_base_overhead = 0;
  double worst_debug_overhead = 0;
  for (const auto& info : workloads::fig5_workloads()) {
    const uint64_t cycles = calibrate(info, target_seconds);
    // Interleave the four configurations within each repetition and form
    // the normalized ratios from measurements adjacent in time, then take
    // the median ratio across repetitions: pairing cancels slow drifts in
    // machine load that independent min-of-N cannot.
    Cell cells[4] = {Cell(info, false, false), Cell(info, false, true),
                     Cell(info, true, false), Cell(info, true, true)};
    std::vector<double> ratio_base_hgdb, ratio_debug, ratio_debug_hgdb;
    for (int rep = 0; rep < reps; ++rep) {
      const double t0 = cells[0].measure(cycles);
      const double t1 = cells[1].measure(cycles);
      const double t2 = cells[2].measure(cycles);
      const double t3 = cells[3].measure(cycles);
      ratio_base_hgdb.push_back(t1 / t0);
      ratio_debug.push_back(t2 / t0);
      ratio_debug_hgdb.push_back(t3 / t2);  // debug overhead paired with t2
    }
    auto median = [](std::vector<double>& values) {
      std::sort(values.begin(), values.end());
      return values[values.size() / 2];
    };
    const double base = 1.0;
    const double base_hgdb = median(ratio_base_hgdb);
    const double debug = median(ratio_debug);
    const double debug_hgdb = debug * median(ratio_debug_hgdb);
    const double base_overhead = (base_hgdb / base - 1.0) * 100.0;
    const double debug_overhead = (debug_hgdb / debug - 1.0) * 100.0;
    worst_base_overhead = std::max(worst_base_overhead, base_overhead);
    worst_debug_overhead = std::max(worst_debug_overhead, debug_overhead);
    std::printf("%-10s %10.3f %15.3f %10.3f %13.3f %10.2f%% %10.2f%%\n",
                info.name.c_str(), 1.0, base_hgdb / base, debug / base,
                debug_hgdb / base, base_overhead, debug_overhead);
    Json row = Json::object();
    row["workload"] = Json(info.name);
    row["baseline"] = Json(1.0);
    row["baseline_hgdb"] = Json(base_hgdb);
    row["debug"] = Json(debug);
    row["debug_hgdb"] = Json(debug_hgdb);
    row["overhead_base_pct"] = Json(base_overhead);
    row["overhead_debug_pct"] = Json(debug_overhead);
    fig5.push_back(std::move(row));
  }
  report["fig5"] = std::move(fig5);
  report["max_overhead_base_pct"] = Json(worst_base_overhead);
  report["max_overhead_debug_pct"] = Json(worst_debug_overhead);
  report["hot_speedup"] = Json(hot_speedup);

  std::printf(
      "\nmax hgdb overhead: %.2f%% (baseline), %.2f%% (debug) -- paper claims "
      "< 5%% in both modes\n",
      worst_base_overhead, worst_debug_overhead);
  std::printf("compiled hot-loop speedup over interpreted: %.1fx\n",
              hot_speedup);

  std::ofstream out(json_path);
  out << report.dump() << "\n";
  out.close();
  if (!out.good()) {
    std::fprintf(stderr, "error: failed to write %s\n", json_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", json_path.c_str());
  return 0;
}
