// EXP-1 — Figure 5: "Benchmark performance for RocketChip under various
// testing conditions. Whether it is in baseline (optimized) or debug
// (unoptimized) mode, at no point does hgdb overhead exceed 5% of runtime."
//
// For each of the ten workloads this harness measures wall-clock simulation
// time under the paper's four configurations and prints them normalized to
// baseline, exactly like the figure's bars:
//   baseline            optimized compile, no hgdb attached
//   baseline + hgdb     optimized compile, hgdb attached (no breakpoints)
//   debug               DontTouch compile, no hgdb
//   debug + hgdb        DontTouch compile, hgdb attached
//
// Expected shape: the two +hgdb columns sit within ~5% of their bases;
// debug columns are noticeably taller than baseline (unoptimized RTL).
// Cycle counts are auto-calibrated per workload so each measurement runs
// for HGDB_BENCH_TARGET_MS of wall clock (default 300), keeping timer and
// scheduler noise well below the effect size.
// Environment: HGDB_BENCH_TARGET_MS, HGDB_BENCH_REPS (default 3).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "frontend/compile.h"
#include "runtime/runtime.h"
#include "sim/simulator.h"
#include "symbols/symbol_table.h"
#include "vpi/native_backend.h"
#include "workloads/workloads.h"

namespace {

using namespace hgdb;

uint64_t env_or(const char* name, uint64_t fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::strtoull(value, nullptr, 10) : fallback;
}

/// One prepared configuration: compiled design + (optional) attached hgdb.
struct Cell {
  explicit Cell(const workloads::WorkloadInfo& info, bool debug_mode,
                bool with_hgdb) {
    frontend::CompileOptions options;
    options.debug_mode = debug_mode;
    auto compiled = frontend::compile(info.build(), options);
    table = std::make_unique<symbols::MemorySymbolTable>(compiled.symbols);
    simulator = std::make_unique<sim::Simulator>(std::move(compiled.netlist));
    backend = std::make_unique<vpi::NativeBackend>(*simulator);
    runtime = std::make_unique<runtime::Runtime>(*backend, *table);
    if (with_hgdb) runtime->attach();
  }

  /// Seconds for `cycles` further cycles (the workloads free-run, so
  /// repeated measurement reuses the same simulator).
  double measure(uint64_t cycles) {
    const auto start = std::chrono::steady_clock::now();
    simulator->run(cycles);
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  }

  std::unique_ptr<symbols::MemorySymbolTable> table;
  std::unique_ptr<sim::Simulator> simulator;
  std::unique_ptr<vpi::NativeBackend> backend;
  std::unique_ptr<runtime::Runtime> runtime;
};

}  // namespace

/// Calibrates a per-workload cycle count hitting the wall-clock target.
uint64_t calibrate(const workloads::WorkloadInfo& info, double target_seconds) {
  frontend::CompileOptions options;
  auto compiled = frontend::compile(info.build(), options);
  sim::Simulator simulator(compiled.netlist);
  simulator.run(64);  // warm up
  const auto start = std::chrono::steady_clock::now();
  simulator.run(256);
  const double per_cycle =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count() /
      256.0;
  return std::max<uint64_t>(512, static_cast<uint64_t>(target_seconds / per_cycle));
}

int main() {
  const double target_seconds =
      static_cast<double>(env_or("HGDB_BENCH_TARGET_MS", 300)) / 1000.0;
  const int reps = static_cast<int>(env_or("HGDB_BENCH_REPS", 3));

  std::printf(
      "EXP-1 / Figure 5: simulation time normalized to baseline "
      "(~%.0f ms per cell, best of %d)\n",
      target_seconds * 1000, reps);
  std::printf("%-10s %10s %15s %10s %13s %11s %11s\n", "workload", "baseline",
              "baseline+hgdb", "debug", "debug+hgdb", "ovh(base)%", "ovh(dbg)%");

  double worst_base_overhead = 0;
  double worst_debug_overhead = 0;
  for (const auto& info : workloads::fig5_workloads()) {
    const uint64_t cycles = calibrate(info, target_seconds);
    // Interleave the four configurations within each repetition and form
    // the normalized ratios from measurements adjacent in time, then take
    // the median ratio across repetitions: pairing cancels slow drifts in
    // machine load that independent min-of-N cannot.
    Cell cells[4] = {Cell(info, false, false), Cell(info, false, true),
                     Cell(info, true, false), Cell(info, true, true)};
    std::vector<double> ratio_base_hgdb, ratio_debug, ratio_debug_hgdb;
    for (int rep = 0; rep < reps; ++rep) {
      const double t0 = cells[0].measure(cycles);
      const double t1 = cells[1].measure(cycles);
      const double t2 = cells[2].measure(cycles);
      const double t3 = cells[3].measure(cycles);
      ratio_base_hgdb.push_back(t1 / t0);
      ratio_debug.push_back(t2 / t0);
      ratio_debug_hgdb.push_back(t3 / t2);  // debug overhead paired with t2
    }
    auto median = [](std::vector<double>& values) {
      std::sort(values.begin(), values.end());
      return values[values.size() / 2];
    };
    const double base = 1.0;
    const double base_hgdb = median(ratio_base_hgdb);
    const double debug = median(ratio_debug);
    const double debug_hgdb = debug * median(ratio_debug_hgdb);
    const double base_overhead = (base_hgdb / base - 1.0) * 100.0;
    const double debug_overhead = (debug_hgdb / debug - 1.0) * 100.0;
    worst_base_overhead = std::max(worst_base_overhead, base_overhead);
    worst_debug_overhead = std::max(worst_debug_overhead, debug_overhead);
    std::printf("%-10s %10.3f %15.3f %10.3f %13.3f %10.2f%% %10.2f%%\n",
                info.name.c_str(), 1.0, base_hgdb / base, debug / base,
                debug_hgdb / base, base_overhead, debug_overhead);
  }
  std::printf(
      "\nmax hgdb overhead: %.2f%% (baseline), %.2f%% (debug) -- paper claims "
      "< 5%% in both modes\n",
      worst_base_overhead, worst_debug_overhead);
  return 0;
}
