// EXP-5 — Fig. 1 design ablation: why hgdb uses *native* calls for the
// timing-sensitive simulator interface but allows RPC for debugger and
// symbol-table interactions.
//
// Measures, per operation:
//   - native simulator get_value (the per-breakpoint hot path)
//   - in-memory symbol-table queries
//   - SQLite symbol-table queries
//   - a full debugger evaluation round-trip over in-process RPC
//   - the same round-trip over loopback TCP
//
// Expected shape: native value reads are orders of magnitude cheaper than
// any RPC round-trip — running them through RPC at every clock edge would
// dwarf the <5% budget, while per-interaction RPC (user typing commands)
// is irrelevant.
#include <benchmark/benchmark.h>

#include <thread>

#include "debugger/client.h"
#include "frontend/compile.h"
#include "ir/parser.h"
#include "rpc/tcp.h"
#include "runtime/runtime.h"
#include "sim/simulator.h"
#include "symbols/sqlite_store.h"
#include "symbols/symbol_table.h"
#include "vpi/native_backend.h"

namespace {

using namespace hgdb;

constexpr const char* kDesign = R"(circuit Demo
  module Demo
    input clock : Clock
    output out : UInt<8>
    reg cycle_reg : UInt<8> clock clock
    connect cycle_reg = add(cycle_reg, UInt<8>(1)) @[demo.cc 5 1]
    wire t : UInt<8> @[demo.cc 6 1]
    connect t = add(cycle_reg, UInt<8>(7)) @[demo.cc 7 1]
    connect out = t @[demo.cc 8 1]
  end
end
)";

frontend::CompileResult& compiled() {
  static frontend::CompileResult result = [] {
    frontend::CompileOptions options;
    options.debug_mode = true;
    return frontend::compile(ir::parse_circuit(kDesign), options);
  }();
  return result;
}

void BM_NativeGetValue(benchmark::State& state) {
  sim::Simulator simulator(compiled().netlist);
  vpi::NativeBackend backend(simulator);
  simulator.run(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(backend.get_value("Demo.cycle_reg"));
  }
}
BENCHMARK(BM_NativeGetValue);

void BM_MemorySymbolLookup(benchmark::State& state) {
  symbols::MemorySymbolTable table(compiled().symbols);
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.breakpoints_at("demo.cc", 7));
  }
}
BENCHMARK(BM_MemorySymbolLookup);

void BM_SqliteSymbolLookup(benchmark::State& state) {
  const std::string path = "/tmp/hgdb_bench_symbols.db";
  symbols::SqliteSymbolTable::save(compiled().symbols, path);
  symbols::SqliteSymbolTable table(path);
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.breakpoints_at("demo.cc", 7));
  }
}
BENCHMARK(BM_SqliteSymbolLookup);

void BM_RpcEvaluateInProcess(benchmark::State& state) {
  sim::Simulator simulator(compiled().netlist);
  vpi::NativeBackend backend(simulator);
  symbols::MemorySymbolTable table(compiled().symbols);
  runtime::Runtime runtime(backend, table);
  runtime.attach();
  simulator.run(2);
  auto [client_side, server_side] = rpc::make_channel_pair();
  runtime.serve(std::move(server_side));
  debugger::DebugClient client(std::move(client_side));
  for (auto _ : state) {
    benchmark::DoNotOptimize(client.evaluate("cycle_reg + 1", std::nullopt));
  }
  runtime.stop_service();
}
BENCHMARK(BM_RpcEvaluateInProcess);

void BM_RpcEvaluateOverTcp(benchmark::State& state) {
  sim::Simulator simulator(compiled().netlist);
  vpi::NativeBackend backend(simulator);
  symbols::MemorySymbolTable table(compiled().symbols);
  runtime::Runtime runtime(backend, table);
  runtime.attach();
  simulator.run(2);

  rpc::TcpServer server;
  std::unique_ptr<rpc::Channel> server_side;
  std::thread acceptor([&] { server_side = server.accept(); });
  auto client_channel = rpc::tcp_connect("127.0.0.1", server.port());
  acceptor.join();
  runtime.serve(std::move(server_side));
  debugger::DebugClient client(std::move(client_channel));

  for (auto _ : state) {
    benchmark::DoNotOptimize(client.evaluate("cycle_reg + 1", std::nullopt));
  }
  runtime.stop_service();
}
BENCHMARK(BM_RpcEvaluateOverTcp);

}  // namespace

BENCHMARK_MAIN();
