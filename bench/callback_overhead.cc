// EXP-3 — Sec. 4.3's explanation of Fig. 5: "The more complex the design,
// the more time the simulator spends to compute state updates. Hence the
// fixed cost of callback per clock cycle is negligible."
//
// Two direct measurements compose the claim:
//   (1) the hgdb callback's own cost per clock edge, measured in isolation
//       on the smallest design (it is design-independent: the Fig. 2 fast
//       path checks one atomic flag and returns);
//   (2) per-cycle simulation cost for scaled n x n matrix multiplies.
// The derived overhead ratio (1)/(2) falls quadratically with n. A
// subtraction-based estimate (with-hgdb minus without) is also printed but
// is bounded by machine noise once the design dwarfs the callback.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "frontend/compile.h"
#include "runtime/runtime.h"
#include "sim/simulator.h"
#include "symbols/symbol_table.h"
#include "vpi/native_backend.h"
#include "workloads/workloads.h"

namespace {

using namespace hgdb;

double seconds_for(const netlist::Netlist& netlist,
                   const symbols::SymbolTableData& symbols, bool with_hgdb,
                   uint64_t cycles, int reps) {
  symbols::MemorySymbolTable table(symbols);
  double best = 1e99;
  for (int rep = 0; rep < reps; ++rep) {
    sim::Simulator simulator(netlist);
    vpi::NativeBackend backend(simulator);
    runtime::Runtime runtime(backend, table);
    if (with_hgdb) runtime.attach();
    const auto start = std::chrono::steady_clock::now();
    simulator.run(cycles);
    const auto end = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double>(end - start).count());
  }
  return best;
}

}  // namespace

/// Direct cost of one hgdb clock-edge dispatch (attach the runtime to a
/// trivial design and time edges minus the same design without hgdb).
double callback_ns() {
  auto compiled = frontend::compile(workloads::build_matmul(2));
  symbols::MemorySymbolTable table(compiled.symbols);
  constexpr uint64_t kCycles = 40000;
  const double without =
      seconds_for(compiled.netlist, compiled.symbols, false, kCycles, 5);
  const double with =
      seconds_for(compiled.netlist, compiled.symbols, true, kCycles, 5);
  // Large cycle count + tiny design makes the difference resolvable.
  return std::max(5.0, (with - without) / kCycles * 1e9);
}

int main() {
  const char* cycles_env = std::getenv("HGDB_BENCH_CYCLES");
  const uint64_t base_cycles =
      cycles_env != nullptr ? std::strtoull(cycles_env, nullptr, 10) : 4000;

  const double callback = callback_ns();
  std::printf("EXP-3: fixed per-cycle callback cost vs design size (matmul n x n)\n");
  std::printf("measured hgdb callback dispatch: ~%.0f ns per clock edge\n\n",
              callback);
  std::printf("%-6s %8s %12s %16s %18s\n", "n", "instrs", "us/cycle",
              "overhead(derived)", "overhead(measured)");

  for (uint32_t n : {2u, 4u, 8u, 16u, 24u}) {
    auto compiled = frontend::compile(workloads::build_matmul(n));
    // Keep total runtime roughly constant across sizes.
    const uint64_t cycles =
        std::max<uint64_t>(200, base_cycles * 16 / (n * n));
    const double without = seconds_for(compiled.netlist, compiled.symbols,
                                       false, cycles, 3);
    const double with = seconds_for(compiled.netlist, compiled.symbols,
                                    true, cycles, 3);
    const double us_per_cycle = without / static_cast<double>(cycles) * 1e6;
    std::printf("%-6u %8zu %12.3f %16.4f%% %16.2f%%\n", n,
                compiled.netlist.instrs().size(), us_per_cycle,
                callback / (us_per_cycle * 1000.0) * 100.0,
                (with / without - 1.0) * 100.0);
  }
  std::printf(
      "\nexpected shape: derived overhead falls ~quadratically with n; the\n"
      "measured column is the same quantity but bounded by machine noise.\n");
  return 0;
}
