// EXP-F — Event fan-out: what does one pushed stop event cost per
// subscriber? The paper's interactive-latency budget must survive many
// attached observers (IDE panes, waveform streamers, dashboards all ride
// the same event plane), and the JSON path pays a full per-client render:
// delivering one stop to 1000 subscribers serializes it 1000 times.
// Binary-events fan-out serializes once into a refcounted SharedFrame and
// every subscriber's deliver() is a filter check plus a frame header —
// per-client cost becomes a refcount bump.
//
// The harness registers N passive observers with a real DebugService (the
// exact production fan-out loop: snapshot under the client lock, deliver
// under the delivery lock) and times E broadcast stop events through
// DebugService::deliver_stop in two modes:
//   json     every sink renders serialize_event_v2(stop_event_payload(...))
//            — the wire bytes a legacy JSON client receives
//   binary   sinks frame the serialize-once body the service pre-encoded
//            — the wire bytes a binary-events client receives
// Per-event wall time is sampled for a p99 stop-to-delivery figure.
//
// Output: one JSON object on stdout (and to $HGDB_BENCH_JSON when set).
// "gates.binary_fanout_speedup" (binary events/sec over JSON events/sec)
// is tracked by tools/check_bench_regression.py against
// bench/baselines/BENCH_fanout.json; "ceilings.binary_stop_delivery_p99_ms"
// is an absolute upper bound on delivery latency at this subscriber count.
// Absolute events/sec are reported but not gated (they track hardware).
// Environment: HGDB_FANOUT_SUBS (default 1000),
//              HGDB_FANOUT_EVENTS (default 200),
//              HGDB_BENCH_REPS (default 3, best-of),
//              HGDB_BENCH_JSON (optional output path).
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/json.h"
#include "frontend/compile.h"
#include "ir/parser.h"
#include "rpc/event_frame.h"
#include "rpc/protocol.h"
#include "rpc/protocol_v2.h"
#include "runtime/runtime.h"
#include "session/debug_service.h"
#include "session/session_manager.h"
#include "sim/simulator.h"
#include "symbols/symbol_table.h"
#include "vpi/native_backend.h"

namespace {

using namespace hgdb;
using Clock = std::chrono::steady_clock;

uint64_t env_or(const char* name, uint64_t fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::strtoull(value, nullptr, 10) : fallback;
}

constexpr const char* kDesign = R"(circuit Fan
  module Fan
    input clock : Clock
    output out : UInt<8>
    reg cycle_reg : UInt<8> clock clock
    connect cycle_reg = add(cycle_reg, UInt<8>(1)) @[fan.cc 5 1]
    wire t : UInt<8> @[fan.cc 6 1]
    connect t = add(cycle_reg, UInt<8>(7)) @[fan.cc 7 1]
    connect out = t @[fan.cc 8 1]
  end
end
)";

/// A realistic stop: two frames with reconstructed locals/generator state,
/// a matched condition, and a watch hit — the shape an IDE sees.
rpc::StopEvent make_stop(uint64_t time) {
  rpc::StopEvent stop;
  stop.time = time;
  for (int i = 0; i < 2; ++i) {
    rpc::Frame frame;
    frame.breakpoint_id = 40 + i;
    frame.instance_id = i;
    frame.instance_name = i == 0 ? "top.dut" : "top.dut.sub";
    frame.filename = "fan.cc";
    frame.line = 7;
    frame.column = 1;
    frame.locals = common::Json::parse(
        R"({"cycle_reg": "21", "t": "28", "state": {"fsm": "RUN", "count": "9"}})");
    frame.generator = common::Json::parse(R"({"kind": "wire", "width": "8"})");
    frame.matched_conditions = {"cycle_reg % 2 == 0"};
    stop.frames.push_back(std::move(frame));
  }
  rpc::WatchHit hit;
  hit.id = 3;
  hit.expression = "cycle_reg + 1";
  hit.old_value = "21";
  hit.new_value = "22";
  stop.watch_hits.push_back(hit);
  return stop;
}

/// One registered observer. In JSON mode deliver() re-renders the event
/// exactly as a legacy DebugSession does before writing; in binary mode it
/// frames the shared pre-encoded body exactly as a binary session enqueues
/// it. Byte totals feed a volatile sink so neither render can be elided.
struct BenchSink final : session::EventSink {
  bool binary = false;
  uint64_t bytes = 0;

  bool deliver(const session::ServiceEvent& event) override {
    if (event.kind != session::ServiceEvent::Kind::Stop) return true;
    if (binary) {
      rpc::SharedFrame body = event.binary_body
                                  ? event.binary_body
                                  : rpc::encode_stop_body(event.stop);
      const auto frame =
          rpc::make_event_frame(rpc::FrameKind::Stop, std::move(body));
      bytes += frame.size();
      return true;
    }
    const std::string text = rpc::serialize_event_v2(
        rpc::EventV2{"stop", rpc::stop_event_payload(event.stop)});
    bytes += text.size();
    return true;
  }
};

struct CellResult {
  double events_per_sec = 0;
  double p99_ms = 0;
  uint64_t bytes_per_event = 0;
};

CellResult run_cell(session::DebugService& service,
                    std::vector<std::unique_ptr<BenchSink>>& sinks,
                    uint64_t events, uint64_t reps) {
  CellResult best;
  for (uint64_t rep = 0; rep < reps; ++rep) {
    for (auto& sink : sinks) sink->bytes = 0;
    std::vector<double> sample_ms;
    sample_ms.reserve(events);
    const auto start = Clock::now();
    for (uint64_t i = 0; i < events; ++i) {
      const auto t0 = Clock::now();
      service.deliver_stop(make_stop(i));
      sample_ms.push_back(
          std::chrono::duration<double, std::milli>(Clock::now() - t0)
              .count());
    }
    const double seconds =
        std::chrono::duration<double>(Clock::now() - start).count();
    std::sort(sample_ms.begin(), sample_ms.end());
    const double p99 =
        sample_ms[static_cast<size_t>(
            static_cast<double>(sample_ms.size() - 1) * 0.99)];
    const double rate = static_cast<double>(events) / seconds;
    if (rate > best.events_per_sec) {
      best.events_per_sec = rate;
      best.p99_ms = p99;
      best.bytes_per_event = sinks.front()->bytes / events;
    }
  }
  // Defeat dead-code elimination of the renders across both cells.
  static volatile uint64_t checksum;
  for (auto& sink : sinks) checksum += sink->bytes;
  return best;
}

}  // namespace

int main() {
  const uint64_t subscribers = env_or("HGDB_FANOUT_SUBS", 1000);
  const uint64_t events = env_or("HGDB_FANOUT_EVENTS", 200);
  const uint64_t reps = env_or("HGDB_BENCH_REPS", 3);

  frontend::CompileOptions compile_options;
  compile_options.debug_mode = true;
  auto compiled =
      frontend::compile(ir::parse_circuit(kDesign), compile_options);
  symbols::MemorySymbolTable table(compiled.symbols);
  sim::Simulator simulator(compiled.netlist);
  vpi::NativeBackend backend(simulator);
  runtime::Runtime runtime(backend, table, runtime::RuntimeOptions{});
  runtime.attach();
  runtime.serve_tcp(0);
  auto& service = runtime.session_manager()->service();

  std::vector<std::unique_ptr<BenchSink>> sinks;
  std::vector<session::ClientId> ids;
  sinks.reserve(subscribers);
  for (uint64_t i = 0; i < subscribers; ++i) {
    sinks.push_back(std::make_unique<BenchSink>());
    ids.push_back(service.register_client("bench-" + std::to_string(i),
                                          sinks.back().get()));
  }

  // Warm up both paths (allocator pools, lazy metrics resolution).
  service.deliver_stop(make_stop(0));
  for (size_t i = 0; i < sinks.size(); ++i) {
    sinks[i]->binary = true;
    service.set_client_binary(ids[i], true);
  }
  service.deliver_stop(make_stop(0));

  const CellResult binary = run_cell(service, sinks, events, reps);
  for (size_t i = 0; i < sinks.size(); ++i) {
    sinks[i]->binary = false;
    service.set_client_binary(ids[i], false);
  }
  const CellResult json = run_cell(service, sinks, events, reps);

  const double speedup = binary.events_per_sec / json.events_per_sec;

  char buffer[2048];
  const int written = std::snprintf(
      buffer, sizeof(buffer),
      "{\n"
      "  \"config\": {\"subscribers\": %llu, \"events\": %llu, "
      "\"reps\": %llu},\n"
      "  \"json\": {\"events_per_sec\": %.1f, \"p99_ms\": %.3f, "
      "\"bytes_per_event\": %llu},\n"
      "  \"binary\": {\"events_per_sec\": %.1f, \"p99_ms\": %.3f, "
      "\"bytes_per_event\": %llu},\n"
      "  \"gates\": {\"binary_fanout_speedup\": %.3f},\n"
      "  \"ceilings\": {\"binary_stop_delivery_p99_ms\": %.3f}\n"
      "}\n",
      static_cast<unsigned long long>(subscribers),
      static_cast<unsigned long long>(events),
      static_cast<unsigned long long>(reps), json.events_per_sec, json.p99_ms,
      static_cast<unsigned long long>(json.bytes_per_event),
      binary.events_per_sec, binary.p99_ms,
      static_cast<unsigned long long>(binary.bytes_per_event),
      speedup, binary.p99_ms);
  if (written < 0 || static_cast<size_t>(written) >= sizeof(buffer)) {
    std::fprintf(stderr, "report did not fit\n");
    return 1;
  }
  std::fputs(buffer, stdout);
  if (const char* path = std::getenv("HGDB_BENCH_JSON")) {
    std::ofstream out(path, std::ios::trunc);
    out << buffer;
  }

  for (const auto id : ids) service.unregister_client(id);
  runtime.stop_service();

  // Sanity floor rather than a perf gate: serialize-once must actually
  // beat per-client rendering — a speedup at or below 1 means the binary
  // path regressed into per-client work again.
  if (speedup <= 1.0) {
    std::fprintf(stderr, "binary fan-out no faster than JSON: %.3fx\n",
                 speedup);
    return 1;
  }
  return 0;
}
