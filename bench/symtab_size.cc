// EXP-2 — Sec. 4.1 in-text number: "We have noticed about 30% increase in
// the symbol table size when the debug mode is on."
//
// For each workload this harness compiles both ways and reports symbol-table
// rows and on-disk SQLite bytes (the paper's table is SQLite, Fig. 3).
// Expected shape: debug-mode rows/bytes consistently larger, with a mean
// growth in the vicinity of the paper's ~30%.
#include <cmath>
#include <cstdio>

#include "frontend/compile.h"
#include "symbols/sqlite_store.h"
#include "workloads/workloads.h"

int main() {
  using namespace hgdb;
  std::printf("EXP-2 / Sec 4.1: symbol table size, optimized vs debug mode\n");
  std::printf("%-10s %10s %10s %8s %12s %12s %8s\n", "workload", "rows(opt)",
              "rows(dbg)", "rows+%", "bytes(opt)", "bytes(dbg)", "bytes+%");

  double log_growth_sum = 0;
  size_t count = 0;
  for (const auto& info : workloads::fig5_workloads()) {
    frontend::CompileOptions optimized;
    frontend::CompileOptions debug;
    debug.debug_mode = true;
    auto opt_result = frontend::compile(info.build(), optimized);
    auto dbg_result = frontend::compile(info.build(), debug);

    const std::string opt_path = "/tmp/hgdb_symtab_opt.db";
    const std::string dbg_path = "/tmp/hgdb_symtab_dbg.db";
    const size_t opt_bytes =
        symbols::SqliteSymbolTable::save(opt_result.symbols, opt_path);
    const size_t dbg_bytes =
        symbols::SqliteSymbolTable::save(dbg_result.symbols, dbg_path);

    const size_t opt_rows = opt_result.symbols.total_rows();
    const size_t dbg_rows = dbg_result.symbols.total_rows();
    const double row_growth =
        (static_cast<double>(dbg_rows) / static_cast<double>(opt_rows) - 1.0) *
        100.0;
    const double byte_growth =
        (static_cast<double>(dbg_bytes) / static_cast<double>(opt_bytes) - 1.0) *
        100.0;
    log_growth_sum += std::log(static_cast<double>(dbg_rows) /
                               static_cast<double>(opt_rows));
    ++count;
    std::printf("%-10s %10zu %10zu %7.1f%% %12zu %12zu %7.1f%%\n",
                info.name.c_str(), opt_rows, dbg_rows, row_growth, opt_bytes,
                dbg_bytes, byte_growth);
  }
  const double geomean =
      (std::exp(log_growth_sum / static_cast<double>(count)) - 1.0) * 100.0;
  std::printf("\ngeometric-mean row growth: %.1f%% -- paper reports ~30%%\n",
              geomean);
  return 0;
}
