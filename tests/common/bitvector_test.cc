#include "common/bitvector.h"

#include <gtest/gtest.h>

#include <random>

namespace hgdb::common {
namespace {

TEST(BitVector, DefaultIsOneBitZero) {
  BitVector value;
  EXPECT_EQ(value.width(), 1u);
  EXPECT_TRUE(value.is_zero());
}

TEST(BitVector, ConstructionTruncatesModuloWidth) {
  BitVector value(4, 0xff);
  EXPECT_EQ(value.to_uint64(), 0xfu);
}

TEST(BitVector, ZeroWidthRejected) {
  EXPECT_THROW(BitVector(0, 0), std::invalid_argument);
}

TEST(BitVector, WideValueStorage) {
  BitVector value = BitVector::all_ones(130);
  EXPECT_EQ(value.width(), 130u);
  EXPECT_EQ(value.num_words(), 3u);
  EXPECT_EQ(value.popcount(), 130u);
  EXPECT_FALSE(value.fits_uint64());
}

TEST(BitVector, FromStringVerilogHex) {
  BitVector value = BitVector::from_string("8'hff");
  EXPECT_EQ(value.width(), 8u);
  EXPECT_EQ(value.to_uint64(), 0xffu);
}

TEST(BitVector, FromStringVerilogBinary) {
  BitVector value = BitVector::from_string("4'b1010");
  EXPECT_EQ(value.width(), 4u);
  EXPECT_EQ(value.to_uint64(), 10u);
}

TEST(BitVector, FromStringVerilogDecimalWithUnderscores) {
  BitVector value = BitVector::from_string("16'd1_234");
  EXPECT_EQ(value.to_uint64(), 1234u);
}

TEST(BitVector, FromStringPlainDecimalMinimalWidth) {
  BitVector value = BitVector::from_string("42");
  EXPECT_EQ(value.width(), 6u);  // 42 = 0b101010
  EXPECT_EQ(value.to_uint64(), 42u);
}

TEST(BitVector, FromStringHexPrefix) {
  EXPECT_EQ(BitVector::from_string("0x1f").to_uint64(), 0x1fu);
  EXPECT_EQ(BitVector::from_string("0b101").to_uint64(), 5u);
}

TEST(BitVector, FromStringWideHex) {
  BitVector value = BitVector::from_string("128'hffffffffffffffffffffffffffffffff");
  EXPECT_EQ(value, BitVector::all_ones(128));
}

TEST(BitVector, FromStringMalformed) {
  EXPECT_THROW(BitVector::from_string(""), std::invalid_argument);
  EXPECT_THROW(BitVector::from_string("8'q12"), std::invalid_argument);
  EXPECT_THROW(BitVector::from_string("4'b"), std::invalid_argument);
  EXPECT_THROW(BitVector::from_string("8'b12"), std::invalid_argument);
}

TEST(BitVector, BitAccess) {
  BitVector value(70, 0);
  value.set_bit(69, true);
  value.set_bit(3, true);
  EXPECT_TRUE(value.bit(69));
  EXPECT_TRUE(value.bit(3));
  EXPECT_FALSE(value.bit(68));
  value.set_bit(69, false);
  EXPECT_FALSE(value.bit(69));
}

TEST(BitVector, SliceBasic) {
  BitVector value(16, 0xabcd);
  EXPECT_EQ(value.slice(7, 0).to_uint64(), 0xcdu);
  EXPECT_EQ(value.slice(15, 8).to_uint64(), 0xabu);
  EXPECT_EQ(value.slice(11, 4).to_uint64(), 0xbcu);
  EXPECT_EQ(value.slice(0, 0).width(), 1u);
}

TEST(BitVector, SliceAcrossWordBoundary) {
  BitVector value = BitVector(100, 0).bit_not();
  EXPECT_EQ(value.slice(70, 60), BitVector::all_ones(11));
}

TEST(BitVector, SliceOutOfRange) {
  BitVector value(8, 0);
  EXPECT_THROW(value.slice(8, 0), std::invalid_argument);
  EXPECT_THROW(value.slice(2, 3), std::invalid_argument);
}

TEST(BitVector, Concat) {
  BitVector high(8, 0xab);
  BitVector low(8, 0xcd);
  BitVector joined = high.concat(low);
  EXPECT_EQ(joined.width(), 16u);
  EXPECT_EQ(joined.to_uint64(), 0xabcdu);
}

TEST(BitVector, ResizeZeroExtend) {
  BitVector value(4, 0b1010);
  EXPECT_EQ(value.resize(8).to_uint64(), 0b1010u);
  EXPECT_EQ(value.resize(2).to_uint64(), 0b10u);
}

TEST(BitVector, ResizeSignExtend) {
  BitVector value(4, 0b1010);  // -6 as 4-bit signed
  EXPECT_EQ(value.resize(8, true).to_uint64(), 0b11111010u);
  EXPECT_EQ(value.resize(8, true).to_int64(), -6);
}

TEST(BitVector, AddWithCarryChains) {
  BitVector a = BitVector::all_ones(128);
  BitVector one(128, 1);
  EXPECT_TRUE(a.add(one).is_zero());  // wraps
}

TEST(BitVector, SubWraps) {
  BitVector zero(8, 0);
  BitVector one(8, 1);
  EXPECT_EQ(zero.sub(one).to_uint64(), 0xffu);
}

TEST(BitVector, MulTruncates) {
  BitVector a(8, 200);
  BitVector b(8, 3);
  EXPECT_EQ(a.mul(b).to_uint64(), (200u * 3u) & 0xffu);
}

TEST(BitVector, MulWide) {
  BitVector a = BitVector(128, 0).bit_not();  // 2^128 - 1
  BitVector b(128, 2);
  // (2^128 - 1) * 2 mod 2^128 = 2^128 - 2
  BitVector expected = BitVector::all_ones(128);
  expected.set_bit(0, false);
  EXPECT_EQ(a.mul(b), expected);
}

TEST(BitVector, UdivUrem) {
  BitVector a(16, 1000);
  BitVector b(16, 7);
  EXPECT_EQ(a.udiv(b).to_uint64(), 142u);
  EXPECT_EQ(a.urem(b).to_uint64(), 6u);
}

TEST(BitVector, DivisionByZeroConventions) {
  BitVector a(8, 42);
  BitVector zero(8, 0);
  EXPECT_EQ(a.udiv(zero), BitVector::all_ones(8));
  EXPECT_EQ(a.urem(zero), a);
}

TEST(BitVector, WideDivision) {
  // 2^100 / 3
  BitVector a(128, 0);
  a.set_bit(100, true);
  BitVector b(128, 3);
  BitVector quotient = a.udiv(b);
  // verify: q*3 + r == 2^100
  BitVector reconstructed = quotient.mul(b).add(a.urem(b));
  EXPECT_EQ(reconstructed, a);
}

TEST(BitVector, SignedDivision) {
  BitVector a(8, static_cast<uint64_t>(-20) & 0xff);
  BitVector b(8, 3);
  EXPECT_EQ(a.sdiv(b).to_int64(), -6);
  EXPECT_EQ(a.srem(b).to_int64(), -2);  // remainder takes dividend sign
}

TEST(BitVector, NegateTwosComplement) {
  BitVector a(8, 5);
  EXPECT_EQ(a.negate().to_int64(), -5);
  EXPECT_EQ(a.negate().negate(), a);
}

TEST(BitVector, BitwiseOps) {
  BitVector a(8, 0b11001100);
  BitVector b(8, 0b10101010);
  EXPECT_EQ(a.bit_and(b).to_uint64(), 0b10001000u);
  EXPECT_EQ(a.bit_or(b).to_uint64(), 0b11101110u);
  EXPECT_EQ(a.bit_xor(b).to_uint64(), 0b01100110u);
  EXPECT_EQ(a.bit_not().to_uint64(), 0b00110011u);
}

TEST(BitVector, Reductions) {
  EXPECT_TRUE(BitVector::all_ones(9).reduce_and().to_bool());
  EXPECT_FALSE(BitVector(9, 0x1ff ^ 1).reduce_and().to_bool());
  EXPECT_TRUE(BitVector(9, 4).reduce_or().to_bool());
  EXPECT_FALSE(BitVector(9, 0).reduce_or().to_bool());
  EXPECT_TRUE(BitVector(8, 0b0111).reduce_xor().to_bool());
  EXPECT_FALSE(BitVector(8, 0b0110).reduce_xor().to_bool());
}

TEST(BitVector, ShiftLeftConstant) {
  BitVector a(8, 0b00001111);
  EXPECT_EQ(a.shl(2u).to_uint64(), 0b00111100u);
  EXPECT_EQ(a.shl(8u).to_uint64(), 0u);  // full shift-out
}

TEST(BitVector, ShiftRightLogical) {
  BitVector a(8, 0b11110000);
  EXPECT_EQ(a.lshr(4u).to_uint64(), 0b00001111u);
  EXPECT_EQ(a.lshr(9u).to_uint64(), 0u);
}

TEST(BitVector, ShiftRightArithmetic) {
  BitVector a(8, 0b10000000);
  EXPECT_EQ(a.ashr(3u).to_uint64(), 0b11110000u);
  BitVector positive(8, 0b01000000);
  EXPECT_EQ(positive.ashr(3u).to_uint64(), 0b00001000u);
  EXPECT_EQ(a.ashr(20u), BitVector::all_ones(8));
}

TEST(BitVector, ShiftAcrossWords) {
  BitVector a(128, 1);
  BitVector shifted = a.shl(100u);
  EXPECT_TRUE(shifted.bit(100));
  EXPECT_EQ(shifted.popcount(), 1u);
  EXPECT_EQ(shifted.lshr(100u), a);
}

TEST(BitVector, DynamicShiftOverflowYieldsZero) {
  BitVector a(8, 0xff);
  BitVector amount(8, 200);
  EXPECT_EQ(a.shl(amount).to_uint64(), 0u);
  EXPECT_EQ(a.lshr(amount).to_uint64(), 0u);
}

TEST(BitVector, UnsignedComparisons) {
  BitVector a(8, 10);
  BitVector b(8, 200);
  EXPECT_TRUE(a.ult(b));
  EXPECT_TRUE(a.ule(b));
  EXPECT_FALSE(b.ult(a));
  EXPECT_TRUE(a.ule(a));
  EXPECT_TRUE(a.eq(a));
}

TEST(BitVector, SignedComparisons) {
  BitVector minus_one = BitVector::all_ones(8);
  BitVector one(8, 1);
  EXPECT_TRUE(minus_one.slt(one));
  EXPECT_FALSE(one.slt(minus_one));
  EXPECT_TRUE(minus_one.sle(minus_one));
}

TEST(BitVector, WidthMismatchThrows) {
  BitVector a(8, 1);
  BitVector b(9, 1);
  EXPECT_THROW(a.add(b), std::invalid_argument);
  EXPECT_THROW(a.ult(b), std::invalid_argument);
  EXPECT_THROW(a.bit_and(b), std::invalid_argument);
}

TEST(BitVector, DecimalStringSmall) {
  EXPECT_EQ(BitVector(8, 42).to_string(), "42");
  EXPECT_EQ(BitVector(8, 0).to_string(), "0");
}

TEST(BitVector, DecimalStringWide) {
  // 2^100 = 1267650600228229401496703205376
  BitVector value(128, 0);
  value.set_bit(100, true);
  EXPECT_EQ(value.to_string(), "1267650600228229401496703205376");
}

TEST(BitVector, HexAndBinaryStrings) {
  BitVector value(12, 0xabc);
  EXPECT_EQ(value.to_string(16), "abc");
  EXPECT_EQ(value.to_string(2), "101010111100");
}

TEST(BitVector, VcdStringDropsLeadingZeros) {
  EXPECT_EQ(BitVector(8, 5).to_vcd_string(), "101");
  EXPECT_EQ(BitVector(8, 0).to_vcd_string(), "0");
}

TEST(BitVector, HashDiffersByWidthAndValue) {
  EXPECT_NE(BitVector(8, 1).hash(), BitVector(9, 1).hash());
  EXPECT_NE(BitVector(8, 1).hash(), BitVector(8, 2).hash());
  EXPECT_EQ(BitVector(8, 1).hash(), BitVector(8, 1).hash());
}

TEST(BitVector, RoundTripThroughString) {
  BitVector value = BitVector::from_string("64'hdeadbeefcafebabe");
  BitVector parsed = BitVector::from_string("64'h" + value.to_string(16));
  EXPECT_EQ(parsed, value);
}

// -- property sweeps ----------------------------------------------------------

class BitVectorWidthSweep : public ::testing::TestWithParam<uint32_t> {};

TEST_P(BitVectorWidthSweep, AddCommutesAndMatchesUint64) {
  const uint32_t width = GetParam();
  std::mt19937_64 rng(width * 977);
  const uint64_t mask =
      width >= 64 ? ~uint64_t{0} : ((uint64_t{1} << width) - 1);
  for (int i = 0; i < 50; ++i) {
    const uint64_t a = rng() & mask;
    const uint64_t b = rng() & mask;
    BitVector va(width, a);
    BitVector vb(width, b);
    EXPECT_EQ(va.add(vb), vb.add(va));
    if (width <= 64) {
      EXPECT_EQ(va.add(vb).to_uint64(), (a + b) & mask);
      EXPECT_EQ(va.mul(vb).to_uint64(), (a * b) & mask);
      EXPECT_EQ(va.sub(vb).to_uint64(), (a - b) & mask);
    }
  }
}

TEST_P(BitVectorWidthSweep, DivisionReconstruction) {
  const uint32_t width = GetParam();
  std::mt19937_64 rng(width * 31 + 7);
  for (int i = 0; i < 30; ++i) {
    BitVector a(width, rng());
    BitVector b(width, rng() | 1);  // nonzero
    // a == (a/b)*b + a%b
    EXPECT_EQ(a.udiv(b).mul(b).add(a.urem(b)), a);
    EXPECT_TRUE(a.urem(b).ult(b));
  }
}

TEST_P(BitVectorWidthSweep, ShiftInverse) {
  const uint32_t width = GetParam();
  if (width < 4) return;
  std::mt19937_64 rng(width);
  for (int i = 0; i < 30; ++i) {
    BitVector a(width, rng());
    const uint32_t amount = static_cast<uint32_t>(rng() % (width / 2));
    // (a << k) >> k recovers the low width-k bits
    BitVector masked = a.shl(amount).lshr(amount);
    EXPECT_EQ(masked, a.resize(width - amount).resize(width));
  }
}

TEST_P(BitVectorWidthSweep, DeMorgan) {
  const uint32_t width = GetParam();
  std::mt19937_64 rng(width ^ 0x5a5a);
  for (int i = 0; i < 30; ++i) {
    BitVector a(width, rng());
    BitVector b(width, rng());
    EXPECT_EQ(a.bit_and(b).bit_not(), a.bit_not().bit_or(b.bit_not()));
    EXPECT_EQ(a.bit_or(b).bit_not(), a.bit_not().bit_and(b.bit_not()));
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, BitVectorWidthSweep,
                         ::testing::Values(1u, 3u, 8u, 16u, 31u, 32u, 33u,
                                           63u, 64u, 65u, 96u, 128u, 200u));

}  // namespace
}  // namespace hgdb::common
