#include "common/json.h"

#include <gtest/gtest.h>

namespace hgdb::common {
namespace {

TEST(Json, DefaultIsNull) {
  Json value;
  EXPECT_TRUE(value.is_null());
}

TEST(Json, ScalarConstruction) {
  EXPECT_TRUE(Json(true).as_bool());
  EXPECT_EQ(Json(42).as_int(), 42);
  EXPECT_DOUBLE_EQ(Json(2.5).as_double(), 2.5);
  EXPECT_EQ(Json("hi").as_string(), "hi");
}

TEST(Json, IntDoubleInterop) {
  EXPECT_EQ(Json(2.0).as_int(), 2);
  EXPECT_DOUBLE_EQ(Json(3).as_double(), 3.0);
  EXPECT_EQ(Json(2), Json(2.0));
}

TEST(Json, TypeMismatchThrows) {
  EXPECT_THROW(Json(42).as_string(), std::runtime_error);
  EXPECT_THROW(Json("x").as_int(), std::runtime_error);
}

TEST(Json, ObjectAccess) {
  Json object = Json::object();
  object["a"] = Json(1);
  object["b"] = Json("two");
  EXPECT_TRUE(object.contains("a"));
  EXPECT_FALSE(object.contains("c"));
  EXPECT_EQ(object.get_int("a"), 1);
  EXPECT_EQ(object.get_string("b"), "two");
  EXPECT_EQ(object.get_string("missing", "fallback"), "fallback");
  EXPECT_EQ(object.size(), 2u);
}

TEST(Json, ArrayAccess) {
  Json array = Json::array();
  array.push_back(Json(1));
  array.push_back(Json(2));
  EXPECT_EQ(array.size(), 2u);
  EXPECT_EQ(array.at(1).as_int(), 2);
}

TEST(Json, DumpScalars) {
  EXPECT_EQ(Json().dump(), "null");
  EXPECT_EQ(Json(true).dump(), "true");
  EXPECT_EQ(Json(-7).dump(), "-7");
  EXPECT_EQ(Json("x").dump(), "\"x\"");
}

TEST(Json, DumpDeterministicKeyOrder) {
  Json object = Json::object();
  object["zebra"] = Json(1);
  object["apple"] = Json(2);
  EXPECT_EQ(object.dump(), "{\"apple\":2,\"zebra\":1}");
}

TEST(Json, DumpEscapes) {
  Json value(std::string("a\"b\\c\nd\te"));
  EXPECT_EQ(value.dump(), "\"a\\\"b\\\\c\\nd\\te\"");
}

TEST(Json, ParseScalars) {
  EXPECT_TRUE(Json::parse("null").is_null());
  EXPECT_TRUE(Json::parse("true").as_bool());
  EXPECT_FALSE(Json::parse("false").as_bool());
  EXPECT_EQ(Json::parse("-42").as_int(), -42);
  EXPECT_DOUBLE_EQ(Json::parse("2.5e2").as_double(), 250.0);
  EXPECT_EQ(Json::parse("\"hi\"").as_string(), "hi");
}

TEST(Json, ParseNested) {
  const Json value = Json::parse(R"({"a": [1, 2, {"b": "c"}], "d": null})");
  EXPECT_EQ(value.get("a")->get().at(2).get_string("b"), "c");
  EXPECT_TRUE(value.get("d")->get().is_null());
}

TEST(Json, ParseEscapesAndUnicode) {
  EXPECT_EQ(Json::parse(R"("a\nb")").as_string(), "a\nb");
  EXPECT_EQ(Json::parse(R"("A")").as_string(), "A");
  EXPECT_EQ(Json::parse(R"("é")").as_string(), "\xc3\xa9");  // é
}

TEST(Json, ParseWhitespaceTolerant) {
  const Json value = Json::parse("  {  \"a\" :\n[ 1 ,2 ]\t}  ");
  EXPECT_EQ(value.get("a")->get().size(), 2u);
}

TEST(Json, ParseErrors) {
  EXPECT_THROW(Json::parse(""), std::runtime_error);
  EXPECT_THROW(Json::parse("{"), std::runtime_error);
  EXPECT_THROW(Json::parse("[1,]"), std::runtime_error);
  EXPECT_THROW(Json::parse("{\"a\":1,}"), std::runtime_error);
  EXPECT_THROW(Json::parse("tru"), std::runtime_error);
  EXPECT_THROW(Json::parse("1 2"), std::runtime_error);
  EXPECT_THROW(Json::parse("\"unterminated"), std::runtime_error);
}

TEST(Json, RoundTrip) {
  const std::string text =
      R"({"breakpoints":[{"id":1,"line":42}],"status":"success","time":1024})";
  EXPECT_EQ(Json::parse(text).dump(), text);
}

TEST(Json, RoundTripLargeIntegers) {
  const int64_t big = 0x7fffffffffffffffll;
  Json value(big);
  EXPECT_EQ(Json::parse(value.dump()).as_int(), big);
}

TEST(Json, EqualityDeep) {
  const Json a = Json::parse(R"({"x":[1,{"y":2}]})");
  const Json b = Json::parse(R"({"x":[1,{"y":2}]})");
  const Json c = Json::parse(R"({"x":[1,{"y":3}]})");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

class JsonFuzzRoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(JsonFuzzRoundTrip, ParseDumpParseIsStable) {
  const Json first = Json::parse(GetParam());
  const Json second = Json::parse(first.dump());
  EXPECT_EQ(first, second);
  EXPECT_EQ(first.dump(), second.dump());
}

INSTANTIATE_TEST_SUITE_P(
    Documents, JsonFuzzRoundTrip,
    ::testing::Values("{}", "[]", "[[[[1]]]]", R"({"a":{"b":{"c":[null]}}})",
                      R"([1,2.5,"x",true,null,{"k":[]}])",
                      R"({"empty":"","zero":0,"neg":-1})"));

}  // namespace
}  // namespace hgdb::common
