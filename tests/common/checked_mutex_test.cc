#include "common/checked_mutex.h"

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <thread>
#include <vector>

namespace hgdb::common {
namespace {

// Rank checking is compiled out in NDEBUG builds unless the build forces
// it (-DHGDB_FORCE_LOCK_RANK_CHECKS=ON); the checks-dependent tests skip
// themselves rather than assert behaviour the build cannot exhibit.
constexpr bool kChecksEnabled = HGDB_CHECK_LOCK_RANKS != 0;

TEST(CheckedMutex, LockUnlockRoundTrip) {
  StateMutex mutex{"test::state"};
  mutex.lock();
  mutex.unlock();
  mutex.lock();
  mutex.unlock();
}

TEST(CheckedMutex, TryLockReportsContention) {
  StateMutex mutex{"test::state"};
  ASSERT_TRUE(mutex.try_lock());
  std::atomic<bool> other_got{true};
  // try_lock from another thread must fail while held here (same-thread
  // try_lock on a std::mutex would be UB).
  std::thread prober([&] { other_got.store(mutex.try_lock()); });
  prober.join();
  EXPECT_FALSE(other_got.load());
  mutex.unlock();
  ASSERT_TRUE(mutex.try_lock());
  mutex.unlock();
}

TEST(CheckedMutex, DescendingRanksNest) {
  CommandMutex command{"test::command"};
  ClientsMutex clients{"test::clients"};
  StateMutex state{"test::state"};
  RpcMutex rpc{"test::rpc"};
  // command(80) -> clients(70) -> state(50) -> rpc(10): the full descent
  // the session stack actually performs.
  LockGuard a(command);
  LockGuard b(clients);
  LockGuard c(state);
  LockGuard d(rpc);
}

TEST(CheckedMutex, SequentialEqualRanksAllowed) {
  TransportMutex send{"test::send"};
  TransportMutex state{"test::state"};
  // Same rank is fine when not nested (DAP connections hold send_mutex
  // and state_mutex strictly one-at-a-time).
  { LockGuard lock(state); }
  { LockGuard lock(send); }
}

TEST(CheckedMutexDeathTest, AscendingAcquireAborts) {
  if (!kChecksEnabled) GTEST_SKIP() << "rank checks compiled out";
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  StateMutex state{"test::state"};
  CommandMutex command{"test::command"};
  // state(50) held, then command(80): an inversion against the hierarchy.
  // The abort message must name both locks and show the held list.
  EXPECT_DEATH(
      {
        LockGuard inner(state);
        LockGuard outer(command);
      },
      "lock rank inversion.*test::command.*test::state");
}

TEST(CheckedMutexDeathTest, EqualRankNestingAborts) {
  if (!kChecksEnabled) GTEST_SKIP() << "rank checks compiled out";
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  TransportMutex send{"test::send"};
  TransportMutex state{"test::state"};
  EXPECT_DEATH(
      {
        LockGuard a(state);
        LockGuard b(send);
      },
      "lock rank inversion.*test::send.*test::state");
}

TEST(CheckedMutexDeathTest, AssertHeldAbortsWhenUnheld) {
  if (!kChecksEnabled) GTEST_SKIP() << "rank checks compiled out";
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  StateMutex state{"test::state"};
  EXPECT_DEATH(state.assert_held(), "required but not held");
}

TEST(CheckedMutex, AssertHeldPassesUnderLock) {
  StateMutex state{"test::state"};
  LockGuard lock(state);
  state.assert_held();  // aborts (fails the test) if the flag is wrong
}

TEST(CheckedMutex, AssertHeldSeesParentHoldFromWorkerThread) {
  // The ThreadPool::parallel_for pattern: the parent takes the lock, the
  // workers assert it. The capability is held by *somebody* — that is
  // exactly what the fork/join contract needs.
  StateMutex state{"test::state"};
  LockGuard lock(state);
  std::thread worker([&] { state.assert_held(); });
  worker.join();
}

TEST(CheckedMutex, OutOfOrderReleaseIsLegal) {
  // Hand-over-hand: acquire A then B, release A before B. The held-stack
  // must tolerate non-LIFO release (UniqueLock + condition_variable_any
  // does this inside every wait).
  ClientsMutex a{"test::a"};
  StateMutex b{"test::b"};
  a.lock();
  b.lock();
  a.unlock();
  b.unlock();
}

TEST(CheckedMutex, UniqueLockWorksWithConditionVariableAny) {
  RpcMutex mutex{"test::queue"};
  std::condition_variable_any ready;
  bool flag = false;
  std::thread producer([&] {
    {
      LockGuard lock(mutex);
      flag = true;
    }
    ready.notify_one();
  });
  {
    UniqueLock lock(mutex);
    while (!flag) ready.wait(lock);
    EXPECT_TRUE(lock.owns_lock());
  }
  producer.join();
}

TEST(CheckedMutex, EightThreadsDriveTheHierarchy) {
  // TSan-facing stress: 8 threads repeatedly walk a descending chain of
  // the real hierarchy while two more hammer try_lock on the middle rank.
  // Under -fsanitize=thread this doubles as a data-race check on the
  // rank bookkeeping itself.
  CommandMutex command{"test::command"};
  ClientsMutex clients{"test::clients"};
  StateMutex state{"test::state"};
  WaveformMutex waveform{"test::waveform"};
  RpcMutex rpc{"test::rpc"};
  std::atomic<uint64_t> counter{0};
  constexpr int kThreads = 8;
  constexpr int kIterations = 400;
  std::vector<std::thread> threads;
  threads.reserve(kThreads + 2);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIterations; ++i) {
        LockGuard a(command);
        LockGuard b(clients);
        LockGuard c(state);
        LockGuard d(waveform);
        LockGuard e(rpc);
        counter.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIterations; ++i) {
        if (state.try_lock()) {
          counter.fetch_add(1, std::memory_order_relaxed);
          state.unlock();
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_GE(counter.load(), static_cast<uint64_t>(kThreads) * kIterations);
}

TEST(CheckedMutex, NamesSurviveOnlyWithChecks) {
  StateMutex mutex{"test::named"};
  if (kChecksEnabled) {
    EXPECT_STREQ(mutex.name(), "test::named");
  } else {
    // Release builds drop the name member entirely (zero-overhead claim).
    EXPECT_STREQ(mutex.name(), "<unchecked>");
  }
  EXPECT_EQ(StateMutex::rank(), LockRank::kRuntimeState);
}

TEST(CheckedMutex, RankToStringCoversHierarchy) {
  EXPECT_STREQ(to_string(LockRank::kSessionCommand), "session::command");
  EXPECT_STREQ(to_string(LockRank::kSessionClients), "session::clients");
  EXPECT_STREQ(to_string(LockRank::kRuntimeState), "runtime::state");
  EXPECT_STREQ(to_string(LockRank::kRpc), "rpc");
}

}  // namespace
}  // namespace hgdb::common
