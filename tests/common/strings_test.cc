#include "common/strings.h"

#include <gtest/gtest.h>

namespace hgdb::common {
namespace {

TEST(Strings, SplitBasic) {
  const auto parts = split("a.b.c", '.');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(Strings, SplitKeepsEmptyTokens) {
  const auto parts = split("a..b.", '.');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[3], "");
}

TEST(Strings, SplitNoDelimiter) {
  const auto parts = split("abc", '.');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(Strings, JoinInvertsSplit) {
  EXPECT_EQ(join(split("top.dut.alu", '.'), "."), "top.dut.alu");
  EXPECT_EQ(join({}, "."), "");
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  hello \t\n"), "hello");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(Strings, LongestCommonSubstring) {
  EXPECT_EQ(longest_common_substring("testbench_dut", "dut"), 3u);
  EXPECT_EQ(longest_common_substring("abc", "xyz"), 0u);
  EXPECT_EQ(longest_common_substring("", "abc"), 0u);
  EXPECT_EQ(longest_common_substring("same", "same"), 4u);
  // The paper's use case: matching symbol instance names against VCD
  // hierarchy names.
  EXPECT_EQ(longest_common_substring("tb.rocket_tile", "RocketTile"), 5u);
}

TEST(Strings, EndsWithPath) {
  EXPECT_TRUE(ends_with_path("tb.dut.core.alu", "core.alu"));
  EXPECT_TRUE(ends_with_path("core.alu", "core.alu"));
  EXPECT_FALSE(ends_with_path("tb.dut.score.alu", "core.alu"));
  EXPECT_FALSE(ends_with_path("alu", "core.alu"));
  EXPECT_FALSE(ends_with_path("tb.dut", ""));
}

}  // namespace
}  // namespace hgdb::common
