// Fuzz harness for rpc::parse_request_v2: the v2 envelope parser is the
// first thing that touches untrusted session input, and its contract is
// total — every input yields a DecodedRequestV2 (with an error code for
// garbage), never an exception or a crash.

#include <cstdint>
#include <string>

#include "rpc/protocol_v2.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);
  const auto decoded = hgdb::rpc::parse_request_v2(text);
  (void)decoded;
  return 0;
}

#ifndef HGDB_FUZZ_LIBFUZZER
#include "standalone_driver.h"
int main(int argc, char** argv) { return hgdb_fuzz_replay(argc, argv); }
#endif
