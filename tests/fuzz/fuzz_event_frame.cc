// Fuzz harness for rpc::decode_event_frame: the binary event-frame
// decoder consumes bytes straight off the wire, so its contract is
// "decode successfully or throw std::runtime_error" — any other escape
// (crash, ASan report, a different exception type) is a bug.
//
// Built two ways:
//   - libFuzzer (clang, -fsanitize=fuzzer,address, -DHGDB_FUZZ_LIBFUZZER):
//     the CI fuzz-smoke job explores from the committed corpus.
//   - standalone (any compiler): main() replays the corpus files given as
//     argv, making the seeds a ctest regression suite.

#include <cstdint>
#include <stdexcept>
#include <string_view>

#include "rpc/event_frame.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string_view message(reinterpret_cast<const char*>(data), size);
  // is_event_frame must never throw, on any input
  (void)hgdb::rpc::is_event_frame(message);
  try {
    const auto decoded = hgdb::rpc::decode_event_frame(message);
    (void)decoded;
  } catch (const std::runtime_error&) {
    // malformed/truncated input: the documented failure mode
  }
  return 0;
}

#ifndef HGDB_FUZZ_LIBFUZZER
#include "standalone_driver.h"
int main(int argc, char** argv) { return hgdb_fuzz_replay(argc, argv); }
#endif
