// Fuzz harness for waveform::parse_manifest: a .wvx shard manifest is
// read from disk before anything about it is trusted, so the parser's
// contract is "return a validated Manifest or throw WvxError" — any
// other escape (crash, ASan report, over-read past the input buffer, a
// different exception type) is a bug. Shard-name validation is part of
// the contract: no parsed name may carry separators or traversal, or a
// hostile manifest could point a reader outside its own directory.
//
// Built two ways:
//   - libFuzzer (clang, -fsanitize=fuzzer,address, -DHGDB_FUZZ_LIBFUZZER):
//     the CI fuzz-smoke job explores from the committed corpus.
//   - standalone (any compiler): main() replays the corpus files given as
//     argv, making the seeds a ctest regression suite.

#include <cstdint>
#include <cstdlib>

#include "waveform/manifest.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const char* bytes = reinterpret_cast<const char*>(data);
  // The magic sniff must never throw, on any input.
  (void)hgdb::waveform::is_manifest_bytes(bytes, size);
  try {
    const auto manifest = hgdb::waveform::parse_manifest(bytes, size);
    // Anything the parser accepts must honor its own validation rules.
    if (manifest.shards.empty()) std::abort();
    for (const auto& name : manifest.shards) {
      if (name.empty()) std::abort();
      for (const char c : name) {
        if (c == '/' || c == '\\' || c == '\0') std::abort();
      }
      if (name == "." || name == "..") std::abort();
    }
  } catch (const hgdb::waveform::WvxError&) {
    // malformed/truncated/corrupt input: the documented failure mode
  }
  return 0;
}

#ifndef HGDB_FUZZ_LIBFUZZER
#include "standalone_driver.h"
int main(int argc, char** argv) { return hgdb_fuzz_replay(argc, argv); }
#endif
