// Fuzz harness for the DAP Content-Length codec: feed() accepts arbitrary
// TCP chunks; next() yields payloads, resyncs past leading garbage, or
// throws std::runtime_error (the documented drop-the-connection path).
// Anything else — a crash, an ASan report, a different exception type, an
// infinite loop — is a bug. The input is also split at its midpoint to
// exercise the partial-header/partial-body resume paths every run.

#include <cstdint>
#include <stdexcept>
#include <string_view>

#include "session/dap_protocol.h"

namespace {

void drain(hgdb::session::dap::FrameCodec& codec) {
  try {
    while (codec.next().has_value()) {
    }
  } catch (const std::runtime_error&) {
    // malformed framing: the documented failure mode
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string_view bytes(reinterpret_cast<const char*>(data), size);

  hgdb::session::dap::FrameCodec whole;
  whole.feed(bytes);
  drain(whole);

  hgdb::session::dap::FrameCodec split;
  split.feed(bytes.substr(0, size / 2));
  drain(split);
  split.feed(bytes.substr(size / 2));
  drain(split);
  return 0;
}

#ifndef HGDB_FUZZ_LIBFUZZER
#include "standalone_driver.h"
int main(int argc, char** argv) { return hgdb_fuzz_replay(argc, argv); }
#endif
