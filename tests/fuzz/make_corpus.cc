// Seed-corpus generator: emits one file per interesting wire shape into
// the corpus directories, using the real encoders so seeds stay valid as
// the formats evolve. Run manually after a wire-format change:
//
//   cmake --build build --target fuzz_make_corpus
//   ./build/tests/fuzz_make_corpus tests/fuzz/corpus
//
// The generated files are committed; ctest replays them (standalone
// driver) and the CI fuzz-smoke job mutates from them (libFuzzer).

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "rpc/event_frame.h"
#include "session/dap_protocol.h"
#include "waveform/manifest.h"

namespace {

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::cerr << "cannot write " << path << "\n";
    std::exit(1);
  }
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

struct Change {
  std::string signal;
  std::string value;
  uint32_t width = 0;
};

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::cerr << "usage: " << argv[0] << " <corpus-root>\n";
    return 2;
  }
  const std::string root = argv[1];
  using namespace hgdb::rpc;

  // -- event_frame: one seed per FrameKind plus edge shapes ----------------
  {
    const std::string dir = root + "/event_frame/";
    StopEvent stop;
    stop.time = 1234;
    Frame frame;
    frame.breakpoint_id = 7;
    frame.instance_id = 3;
    frame.instance_name = "top.dut";
    frame.filename = "design.sv";
    frame.line = 42;
    frame.column = 8;
    frame.matched_conditions.push_back("a == b");
    stop.frames.push_back(frame);
    WatchHit hit;
    hit.id = 9;
    hit.expression = "counter";
    hit.old_value = "4";
    hit.new_value = "5";
    stop.watch_hits.push_back(hit);
    const std::string stop_bytes =
        make_event_frame(FrameKind::Stop, encode_stop_body(stop))
            .channel_message();
    write_file(dir + "stop", stop_bytes);

    write_file(dir + "stop_empty",
               make_event_frame(FrameKind::Stop, encode_stop_body(StopEvent{}))
                   .channel_message());

    const std::vector<Change> changes = {{"top.clk", "1", 1},
                                         {"top.bus", "3735928559", 32}};
    write_file(dir + "value_change",
               make_value_change_frame(
                   11, encode_value_change_body(5678, changes))
                   .channel_message());

    write_file(dir + "lifecycle",
               make_event_frame(FrameKind::Lifecycle,
                                encode_lifecycle_body("simulation-done"))
                   .channel_message());

    BreakpointChangeEvent bp;
    bp.action = "armed";
    bp.filename = "design.sv";
    bp.line = 42;
    bp.condition = "a == b";
    bp.client = 2;
    write_file(dir + "breakpoint_changed",
               make_event_frame(FrameKind::BreakpointChanged,
                                encode_breakpoint_change_body(bp))
                   .channel_message());

    // truncated body: exercises every Reader bounds check
    write_file(dir + "stop_truncated",
               stop_bytes.substr(0, stop_bytes.size() / 2));
  }

  // -- protocol_v2: envelopes the session parser must survive -------------
  {
    const std::string dir = root + "/protocol_v2/";
    write_file(dir + "request",
               R"({"hgdb": 2, "id": 1, "command": "evaluate",)"
               R"( "payload": {"expression": "a + b"}})");
    write_file(dir + "no_payload",
               R"({"hgdb": 2, "id": 2, "command": "info"})");
    write_file(dir + "bad_version", R"({"hgdb": 99, "id": 3})");
    write_file(dir + "not_object", R"([1, 2, 3])");
    write_file(dir + "not_json", "hello, world");
    write_file(dir + "empty", "");
    write_file(dir + "nested",
               R"({"hgdb": 2, "id": 4, "command": "subscribe",)"
               R"( "payload": {"signals": ["a", "b"], "decimation": 10}})");
  }

  // -- dap_codec: Content-Length framings -----------------------------------
  {
    const std::string dir = root + "/dap_codec/";
    using hgdb::session::dap::FrameCodec;
    write_file(dir + "single",
               FrameCodec::encode(R"({"seq": 1, "type": "request"})"));
    write_file(dir + "coalesced",
               FrameCodec::encode(R"({"seq": 1})") +
                   FrameCodec::encode(R"({"seq": 2})"));
    write_file(dir + "empty_payload", FrameCodec::encode(""));
    write_file(dir + "garbage_then_frame",
               "HTTP/1.1 200 OK\r\n\r\n" + FrameCodec::encode(R"({"s":3})"));
    write_file(dir + "bad_length", "Content-Length: banana\r\n\r\n{}");
    write_file(dir + "huge_length", "Content-Length: 4294967295\r\n\r\n{}");
    write_file(dir + "truncated", "Content-Length: 100\r\n\r\n{\"partial\":");
  }

  // -- wvx_manifest: shard manifests the waveform reader must survive ------
  {
    const std::string dir = root + "/wvx_manifest/";
    using hgdb::waveform::Manifest;
    using hgdb::waveform::encode_manifest;

    Manifest single;
    single.max_time = 1000;
    single.signal_count = 12;
    single.shards = {"dump.shard0.wvx"};
    write_file(dir + "single_shard", encode_manifest(single));

    Manifest multi;
    multi.max_time = 987654321;
    multi.signal_count = 4096;
    multi.shards = {"dump.shard0.wvx", "dump.shard1.wvx", "dump.shard2.wvx",
                    "dump.shard3.wvx"};
    const std::string multi_bytes = encode_manifest(multi);
    write_file(dir + "four_shards", multi_bytes);

    Manifest long_name;
    long_name.shards = {std::string(200, 'n') + ".wvx"};
    write_file(dir + "long_name", encode_manifest(long_name));

    // Invalid shapes, built from the real encoder so every prefix up to
    // the defect is well-formed (deep coverage, not an early bail-out).
    Manifest hostile;
    hostile.shards = {"../escape.wvx"};
    write_file(dir + "traversal_name", encode_manifest(hostile));

    Manifest empty;  // zero shards: rejected after the fixed header
    write_file(dir + "zero_shards", encode_manifest(empty));

    write_file(dir + "truncated",
               multi_bytes.substr(0, multi_bytes.size() / 2));

    std::string bad_crc = multi_bytes;
    bad_crc.back() = static_cast<char>(bad_crc.back() ^ 1);
    write_file(dir + "bad_crc", bad_crc);

    write_file(dir + "trailing_bytes", multi_bytes + "??");

    std::string bad_magic = multi_bytes;
    bad_magic[0] = 'Z';
    write_file(dir + "bad_magic", bad_magic);
  }

  std::cout << "seed corpus written under " << root << "\n";
  return 0;
}
