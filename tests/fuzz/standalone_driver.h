// Standalone replay driver for the fuzz harnesses: when a harness is
// built without libFuzzer (plain g++, the default toolchain), main()
// replays every file passed on the command line through
// LLVMFuzzerTestOneInput. ctest points this at the committed seed corpus,
// so the corpus doubles as a parser regression suite on every build.

#ifndef HGDB_TESTS_FUZZ_STANDALONE_DRIVER_H
#define HGDB_TESTS_FUZZ_STANDALONE_DRIVER_H

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

inline int hgdb_fuzz_replay(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <corpus-file>...\n", argv[0]);
    return 2;
  }
  int replayed = 0;
  for (int i = 1; i < argc; ++i) {
    std::ifstream in(argv[i], std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "cannot open corpus file %s\n", argv[i]);
      return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string bytes = buffer.str();
    LLVMFuzzerTestOneInput(
        reinterpret_cast<const uint8_t*>(bytes.data()), bytes.size());
    ++replayed;
  }
  std::printf("replayed %d corpus file(s)\n", replayed);
  return 0;
}

#endif  // HGDB_TESTS_FUZZ_STANDALONE_DRIVER_H
