#include "workloads/workloads.h"

#include <gtest/gtest.h>

#include "frontend/compile.h"
#include "ir/parser.h"
#include "ir/printer.h"
#include "sim/simulator.h"
#include "symbols/symbol_table.h"

namespace hgdb::workloads {
namespace {

constexpr uint64_t kCycles = 64;

uint64_t checksum_after(const ir::Circuit& reference, bool debug_mode,
                        const std::string& top) {
  auto circuit = reference.clone();
  frontend::CompileOptions options;
  options.debug_mode = debug_mode;
  auto compiled = frontend::compile(std::move(circuit), options);
  sim::Simulator simulator(compiled.netlist);
  simulator.run(kCycles);
  return simulator.value(top + ".checksum").to_uint64();
}

class WorkloadSweep : public ::testing::TestWithParam<std::string> {};

/// The strongest whole-pipeline property: the optimized build and the
/// debug (DontTouch, unoptimized symbol) build must simulate identically —
/// optimizations change the netlist, never the behaviour.
TEST_P(WorkloadSweep, OptimizedAndDebugBuildsAgree) {
  const auto& info = workload(GetParam());
  auto reference = info.build();
  const uint64_t optimized = checksum_after(*reference, false, info.top);
  const uint64_t debug = checksum_after(*reference, true, info.top);
  EXPECT_EQ(optimized, debug);
  EXPECT_NE(optimized, 0u) << "design degenerated to a constant";
}

/// Determinism: two independent elaborations + simulations agree (no
/// hidden global state in generators or the simulator).
TEST_P(WorkloadSweep, ElaborationIsDeterministic) {
  const auto& info = workload(GetParam());
  const uint64_t first = checksum_after(*info.build(), false, info.top);
  const uint64_t second = checksum_after(*info.build(), false, info.top);
  EXPECT_EQ(first, second);
}

/// The IR text format round-trips the whole design: print -> parse ->
/// compile -> simulate gives the same checksum.
TEST_P(WorkloadSweep, TextFormatRoundTripPreservesBehaviour) {
  const auto& info = workload(GetParam());
  auto original = info.build();
  auto reparsed = ir::parse_circuit(ir::print_circuit(*original));
  EXPECT_EQ(checksum_after(*original, false, info.top),
            checksum_after(*reparsed, false, info.top));
}

/// Debug mode must never shrink the symbol table (paper Sec. 4.1: it grows
/// because DontTouch pins breakpointable nodes).
TEST_P(WorkloadSweep, DebugSymbolTableIsLarger) {
  const auto& info = workload(GetParam());
  frontend::CompileOptions optimized;
  frontend::CompileOptions debug;
  debug.debug_mode = true;
  auto opt_result = frontend::compile(info.build(), optimized);
  auto dbg_result = frontend::compile(info.build(), debug);
  EXPECT_GT(dbg_result.symbols.total_rows(), opt_result.symbols.total_rows());
  EXPECT_GE(dbg_result.symbols.breakpoints.size(),
            opt_result.symbols.breakpoints.size());
}

/// Every workload exposes breakpoints with resolvable scope variables.
TEST_P(WorkloadSweep, SymbolTableIsWellFormed) {
  const auto& info = workload(GetParam());
  frontend::CompileOptions options;
  options.debug_mode = true;
  auto compiled = frontend::compile(info.build(), options);
  symbols::MemorySymbolTable table(compiled.symbols);
  ASSERT_FALSE(table.all_breakpoints().empty());
  // Every RTL-valued variable must point at a real netlist signal of its
  // instance.
  for (const auto& bp : table.all_breakpoints()) {
    auto instance = table.instance(bp.instance_id);
    ASSERT_TRUE(instance.has_value());
    for (const auto& variable : table.scope_variables(bp.id)) {
      if (!variable.is_rtl) continue;
      const std::string full = instance->name + "." + variable.value;
      EXPECT_TRUE(compiled.netlist.signal_id(full).has_value())
          << "dangling scope variable " << full;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Fig5, WorkloadSweep,
    ::testing::Values("multiply", "mm", "mt-matmul", "vvadd", "qsort",
                      "dhrystone", "median", "towers", "spmv", "mt-vvadd"),
    [](const auto& info) {
      std::string name = info.param;
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(Workloads, QsortNetworkActuallySorts) {
  // The sortedness witness is folded into the checksum; verify it directly
  // by probing the sorted_flag's final SSA value on the debug build.
  frontend::CompileOptions options;
  options.debug_mode = true;
  auto compiled = frontend::compile(workload("qsort").build(), options);
  symbols::MemorySymbolTable table(compiled.symbols);
  auto top = table.instance_by_name("Qsort");
  ASSERT_TRUE(top.has_value());
  auto flag = table.resolve_generator_variable(top->id, "sorted_flag");
  ASSERT_TRUE(flag.has_value());
  sim::Simulator simulator(compiled.netlist);
  for (int i = 0; i < 32; ++i) {
    simulator.tick();
    EXPECT_EQ(simulator.value("Qsort." + flag->value).to_uint64(), 1u)
        << "network produced unsorted output at cycle " << i;
  }
}

TEST(Workloads, MtWorkloadsDifferentiateThreads) {
  // The two cores must not shadow each other (distinct seeds).
  auto compiled = frontend::compile(workload("mt-matmul").build());
  sim::Simulator simulator(compiled.netlist);
  simulator.run(32);
  EXPECT_NE(simulator.value("MtMatmul.thread0.checksum"),
            simulator.value("MtMatmul.thread1.checksum"));
}

TEST(Workloads, ScalableMatmulGrowsQuadratically) {
  auto small = frontend::compile(build_matmul(2));
  auto large = frontend::compile(build_matmul(8));
  // 16x the MACs: the instruction count must grow superlinearly.
  EXPECT_GT(large.netlist.instrs().size(), 8 * small.netlist.instrs().size());
}

TEST(Workloads, UnknownNameThrows) {
  EXPECT_THROW(workload("rocketchip"), std::out_of_range);
}

TEST(Workloads, AllTenFig5NamesPresent) {
  EXPECT_EQ(fig5_workloads().size(), 10u);
}

}  // namespace
}  // namespace hgdb::workloads
