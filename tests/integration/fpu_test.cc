// Reproduces the paper's Sec. 4.2 case study: a seeded bug in the FPU
// control logic (dcmp.io.signaling wired permanently high) is located with
// source-level breakpoints and generator-variable inspection.
#include <gtest/gtest.h>

#include "frontend/compile.h"
#include "runtime/runtime.h"
#include "sim/simulator.h"
#include "symbols/symbol_table.h"
#include "vpi/native_backend.h"
#include "workloads/workloads.h"

namespace hgdb::workloads {
namespace {

using runtime::Runtime;
using Command = Runtime::Command;

constexpr uint64_t kCycles = 256;

struct Session {
  explicit Session(bool with_bug) {
    frontend::CompileOptions options;
    options.debug_mode = true;
    auto compiled = frontend::compile(build_fpu_compare(with_bug), options);
    table = std::make_unique<symbols::MemorySymbolTable>(compiled.symbols);
    simulator = std::make_unique<sim::Simulator>(compiled.netlist);
    backend = std::make_unique<vpi::NativeBackend>(*simulator);
    runtime = std::make_unique<Runtime>(*backend, *table);
    runtime->attach();
  }
  std::unique_ptr<symbols::MemorySymbolTable> table;
  std::unique_ptr<sim::Simulator> simulator;
  std::unique_ptr<vpi::NativeBackend> backend;
  std::unique_ptr<Runtime> runtime;
};

TEST(FpuCaseStudy, BugChangesObservableBehaviour) {
  // "the FPU output mismatches with the functional model": the buggy and
  // fixed designs diverge in their exception flags.
  Session buggy(true);
  Session fixed(false);
  bool diverged = false;
  for (uint64_t i = 0; i < kCycles; ++i) {
    buggy.simulator->tick();
    fixed.simulator->tick();
    if (buggy.simulator->value("FpuCtrl.exc_flags") !=
        fixed.simulator->value("FpuCtrl.exc_flags")) {
      diverged = true;
      break;
    }
  }
  EXPECT_TRUE(diverged);
}

TEST(FpuCaseStudy, BreakpointInsideWhenWflags) {
  // "we first use our IDE to set a tentative breakpoint on the floating
  // point control logic ... inside the when statement, since this is the
  // condition where floating-point comparison is enabled."
  Session session(true);
  const FpuSourceInfo source = fpu_source_info();
  auto ids = session.runtime->add_breakpoint(source.filename, source.toint_line);
  ASSERT_FALSE(ids.empty());

  int hits = 0;
  session.runtime->set_stop_handler([&](const rpc::StopEvent& event) {
    ++hits;
    // The enable condition (inside when(wflags)) guarantees wflags==1.
    EXPECT_EQ(event.frames[0].generator.get_string("wflags"), "1");
    return Command::Continue;
  });
  while (session.simulator->cycle() < kCycles) session.simulator->tick();
  EXPECT_GT(hits, 0);
  // The breakpoint only fires when the enable holds — strictly fewer hits
  // than cycles.
  EXPECT_LT(hits, static_cast<int>(kCycles));
}

TEST(FpuCaseStudy, InspectingDcmpRevealsStuckSignaling) {
  // "With a quick glance, we can see that dcmp.io.signaling is not set
  // properly since it is permanently asserted."
  Session buggy(true);
  Session fixed(false);
  std::vector<uint64_t> buggy_samples;
  std::vector<uint64_t> fixed_samples;
  for (uint64_t i = 0; i < 64; ++i) {
    buggy.simulator->tick();
    fixed.simulator->tick();
    buggy_samples.push_back(
        buggy.runtime->evaluate("signaling", std::nullopt, "FpuCtrl.dcmp")
            ->to_uint64());
    fixed_samples.push_back(
        fixed.runtime->evaluate("signaling", std::nullopt, "FpuCtrl.dcmp")
            ->to_uint64());
  }
  // Buggy: permanently asserted. Fixed: toggles with the decoded rm field.
  for (uint64_t sample : buggy_samples) EXPECT_EQ(sample, 1u);
  EXPECT_NE(std::count(fixed_samples.begin(), fixed_samples.end(), 0), 0);
}

TEST(FpuCaseStudy, ExceptionFlagsOnlySpuriousWithQuietNaN) {
  // The bug manifests exactly when a quiet NaN reaches a quiet compare:
  // invalid (NV) asserted although no signaling NaN is present.
  Session buggy(true);
  bool spurious_nv = false;
  for (uint64_t i = 0; i < kCycles && !spurious_nv; ++i) {
    buggy.simulator->tick();
    const auto runtime_eval = [&](const std::string& expr) {
      return buggy.runtime->evaluate(expr, std::nullopt, "FpuCtrl.dcmp")
          ->to_uint64();
    };
    const bool any_nan = runtime_eval("a_nan | b_nan") != 0;
    const bool any_snan = runtime_eval("a_snan | b_snan") != 0;
    const bool nv = runtime_eval("exceptionFlags") >= 16;  // bit 4
    if (any_nan && !any_snan && nv) spurious_nv = true;
  }
  EXPECT_TRUE(spurious_nv);
}

TEST(FpuCaseStudy, FrameShowsReconstructedState) {
  // The paper highlights structured-variable reconstruction at the
  // breakpoint: locals and generator variables arrive as readable values.
  Session session(true);
  const FpuSourceInfo source = fpu_source_info();
  session.runtime->add_breakpoint(source.filename, source.toint_line);
  std::optional<rpc::Frame> frame;
  session.runtime->set_stop_handler([&](const rpc::StopEvent& event) {
    if (!frame) frame = event.frames[0];
    return Command::Continue;
  });
  while (session.simulator->cycle() < kCycles && !frame) {
    session.simulator->tick();
  }
  ASSERT_TRUE(frame.has_value());
  EXPECT_TRUE(frame->locals.contains("toint"));
  EXPECT_TRUE(frame->generator.contains("rm"));
  EXPECT_TRUE(frame->generator.contains("in1"));
}

TEST(FpuCaseStudy, FixedDesignStillComparesCorrectly) {
  // Sanity: the fix doesn't break ordinary comparisons; lt/eq behave like
  // an unsigned-magnitude model for non-NaN operands.
  Session fixed(false);
  int checked = 0;
  for (uint64_t i = 0; i < kCycles && checked < 20; ++i) {
    fixed.simulator->tick();
    auto eval = [&](const std::string& expr) {
      return fixed.runtime->evaluate(expr, std::nullopt, "FpuCtrl.dcmp")
          ->to_uint64();
    };
    if (eval("a_nan | b_nan") != 0) continue;
    ++checked;
    const bool lt = eval("lt") != 0;
    const bool eq = eval("eq") != 0;
    EXPECT_FALSE(lt && eq);
  }
  EXPECT_GT(checked, 0);
}

}  // namespace
}  // namespace hgdb::workloads
