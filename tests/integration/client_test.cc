#include "debugger/client.h"

#include <gtest/gtest.h>

#include <thread>

#include "frontend/compile.h"
#include "ir/parser.h"
#include "rpc/tcp.h"
#include "runtime/runtime.h"
#include "sim/simulator.h"
#include "symbols/symbol_table.h"
#include "vpi/native_backend.h"

namespace hgdb::debugger {
namespace {

constexpr const char* kDesign = R"(circuit Demo
  module Demo
    input clock : Clock
    output out : UInt<8>
    reg cycle_reg : UInt<8> clock clock
    connect cycle_reg = add(cycle_reg, UInt<8>(1)) @[demo.cc 5 1]
    wire t : UInt<8> @[demo.cc 6 1]
    connect t = add(cycle_reg, UInt<8>(7)) @[demo.cc 7 1]
    connect out = t @[demo.cc 8 1]
  end
end
)";

/// Full stack: DebugClient <-(protocol)-> Runtime <-(VPI)-> Simulator,
/// with the simulation on its own thread like a live simulator process.
class ClientTest : public ::testing::Test {
 protected:
  void SetUp() override {
    frontend::CompileOptions options;
    options.debug_mode = true;
    auto compiled = frontend::compile(ir::parse_circuit(kDesign), options);
    table_ = std::make_unique<symbols::MemorySymbolTable>(compiled.symbols);
    simulator_ = std::make_unique<sim::Simulator>(compiled.netlist);
    backend_ = std::make_unique<vpi::NativeBackend>(*simulator_);
    runtime_ = std::make_unique<runtime::Runtime>(*backend_, *table_);
    runtime_->attach();

    auto [client_side, server_side] = rpc::make_channel_pair();
    runtime_->serve(std::move(server_side));
    // Explicitly v1: these tests pin the legacy wire format through the
    // session layer's compat shim (v2-native coverage lives in
    // tests/session/).
    client_ = std::make_unique<DebugClient>(std::move(client_side),
                                            Protocol::V1);
  }

  void TearDown() override {
    if (sim_thread_.joinable()) sim_thread_.join();
    runtime_->stop_service();
  }

  void run_async(uint64_t cycles) {
    sim_thread_ = std::thread([this, cycles] {
      while (simulator_->cycle() < cycles) simulator_->tick();
    });
  }

  std::unique_ptr<symbols::MemorySymbolTable> table_;
  std::unique_ptr<sim::Simulator> simulator_;
  std::unique_ptr<vpi::NativeBackend> backend_;
  std::unique_ptr<runtime::Runtime> runtime_;
  std::unique_ptr<DebugClient> client_;
  std::thread sim_thread_;
};

TEST_F(ClientTest, SetBreakpointAndHit) {
  auto ids = client_->set_breakpoint("demo.cc", 7);
  ASSERT_EQ(ids.size(), 1u);
  run_async(5);
  auto stop = client_->wait_stop(std::chrono::milliseconds(5000));
  ASSERT_TRUE(stop.has_value());
  ASSERT_EQ(stop->frames.size(), 1u);
  EXPECT_EQ(stop->frames[0].line, 7u);
  EXPECT_EQ(stop->frames[0].instance_name, "Demo");
  client_->detach();
}

TEST_F(ClientTest, UnknownLocationReportsError) {
  auto ids = client_->set_breakpoint("demo.cc", 999);
  EXPECT_TRUE(ids.empty());
  EXPECT_NE(client_->last_error().find("no breakpoint"), std::string::npos);
}

TEST_F(ClientTest, ListLocations) {
  auto locations = client_->list_locations("demo.cc");
  EXPECT_EQ(locations.size(), 3u);  // lines 5, 7 and... plus reg next
  auto line7 = client_->list_locations("demo.cc", 7);
  ASSERT_EQ(line7.size(), 1u);
  EXPECT_EQ(line7.at(0).get_int("line"), 7);
}

TEST_F(ClientTest, ContinueStepEvaluateFlow) {
  client_->set_breakpoint("demo.cc", 5);
  run_async(4);
  auto first = client_->wait_stop(std::chrono::milliseconds(5000));
  ASSERT_TRUE(first.has_value());
  const int64_t bp_id = first->frames[0].breakpoint_id;

  // Evaluate while stopped (the register latched 1 at this first edge).
  auto value = client_->evaluate("cycle_reg + 1", bp_id);
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(*value, "2");

  // Step over: next statement is line 7.
  ASSERT_TRUE(client_->step_over());
  auto second = client_->wait_stop(std::chrono::milliseconds(5000));
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->frames[0].line, 7u);

  ASSERT_TRUE(client_->detach());
}

TEST_F(ClientTest, ConditionalBreakpointOverRpc) {
  client_->set_breakpoint("demo.cc", 5, "cycle_reg == 3");
  run_async(6);
  auto stop = client_->wait_stop(std::chrono::milliseconds(5000));
  ASSERT_TRUE(stop.has_value());
  EXPECT_EQ(stop->frames[0].generator.get_string("cycle_reg"), "3");
  client_->detach();
}

TEST_F(ClientTest, InfoReportsState) {
  client_->set_breakpoint("demo.cc", 7);
  auto info = client_->info();
  EXPECT_EQ(info["breakpoints"].size(), 1u);
  ASSERT_TRUE(info.contains("files"));
  EXPECT_EQ(info["files"].at(0).as_string(), "demo.cc");
  client_->remove_breakpoint("demo.cc", 7);
  EXPECT_EQ(client_->info()["breakpoints"].size(), 0u);
}

TEST_F(ClientTest, EvaluationErrorsSurfaceReason) {
  auto result = client_->evaluate("no_such_signal + 1", std::nullopt);
  EXPECT_FALSE(result.has_value());
  EXPECT_FALSE(client_->last_error().empty());
}

TEST(ClientTcp, FullSessionOverTcp) {
  frontend::CompileOptions options;
  options.debug_mode = true;
  auto compiled = frontend::compile(ir::parse_circuit(kDesign), options);
  symbols::MemorySymbolTable table(compiled.symbols);
  sim::Simulator simulator(compiled.netlist);
  vpi::NativeBackend backend(simulator);
  runtime::Runtime runtime(backend, table);
  runtime.attach();

  rpc::TcpServer server;
  std::unique_ptr<rpc::Channel> server_side;
  std::thread acceptor([&] { server_side = server.accept(); });
  auto client_channel = rpc::tcp_connect("127.0.0.1", server.port());
  acceptor.join();
  runtime.serve(std::move(server_side));
  DebugClient client(std::move(client_channel), Protocol::V1);

  ASSERT_EQ(client.set_breakpoint("demo.cc", 7).size(), 1u);
  std::thread sim_thread([&] {
    while (simulator.cycle() < 3) simulator.tick();
  });
  auto stop = client.wait_stop(std::chrono::milliseconds(5000));
  ASSERT_TRUE(stop.has_value());
  EXPECT_EQ(stop->frames[0].line, 7u);
  client.detach();
  sim_thread.join();
  runtime.stop_service();
}

}  // namespace
}  // namespace hgdb::debugger
