// Regression tests for the callback-slot setters: replacing the stop
// handler or change listener used to destroy the *previous* std::function
// while still holding the slot mutex. A callback owning a resource whose
// destructor re-enters the runtime (the session layer resetting its
// listener during teardown does exactly this) would then self-deadlock —
// or, in rank-checked builds, abort on the equal-rank re-acquisition.
// The setters now swap under the lock and let the retired callback die
// after release.
#include <gtest/gtest.h>

#include <memory>
#include <utility>

#include "frontend/compile.h"
#include "ir/parser.h"
#include "runtime/runtime.h"
#include "sim/simulator.h"
#include "symbols/symbol_table.h"
#include "vpi/native_backend.h"

namespace hgdb::runtime {
namespace {

constexpr const char* kDesign = R"(circuit Slot
  module Slot
    input clock : Clock
    output out : UInt<8>
    reg cycle_reg : UInt<8> clock clock
    connect cycle_reg = add(cycle_reg, UInt<8>(1)) @[slot.cc 5 1]
    connect out = cycle_reg @[slot.cc 6 1]
  end
end
)";

class CallbackSlotTest : public ::testing::Test {
 protected:
  void SetUp() override {
    frontend::CompileOptions compile_options;
    compile_options.debug_mode = true;
    auto compiled =
        frontend::compile(ir::parse_circuit(kDesign), compile_options);
    table_ = std::make_unique<symbols::MemorySymbolTable>(compiled.symbols);
    simulator_ = std::make_unique<sim::Simulator>(compiled.netlist);
    backend_ = std::make_unique<vpi::NativeBackend>(*simulator_);
    runtime_ = std::make_unique<Runtime>(*backend_, *table_,
                                         RuntimeOptions{});
    runtime_->attach();
  }

  std::unique_ptr<symbols::MemorySymbolTable> table_;
  std::unique_ptr<sim::Simulator> simulator_;
  std::unique_ptr<vpi::NativeBackend> backend_;
  std::unique_ptr<Runtime> runtime_;
};

/// Captured by a callback; its destructor re-enters the runtime through
/// the same setter that is destroying it.
struct HandlerResetter {
  Runtime* runtime;
  explicit HandlerResetter(Runtime* r) : runtime(r) {}
  ~HandlerResetter() {
    if (runtime != nullptr) runtime->set_stop_handler({});
  }
};

struct ListenerResetter {
  Runtime* runtime;
  explicit ListenerResetter(Runtime* r) : runtime(r) {}
  ~ListenerResetter() {
    if (runtime != nullptr) runtime->set_change_listener({});
  }
};

using Changes = std::vector<Runtime::SignalChange>;

TEST_F(CallbackSlotTest, ReplacingStopHandlerRunsOldDestructorUnlocked) {
  auto resetter = std::make_shared<HandlerResetter>(runtime_.get());
  runtime_->set_stop_handler(
      [resetter](const rpc::StopEvent&) { return Runtime::Command::Continue; });
  resetter.reset();  // the handler now holds the last reference

  // Replacing the handler destroys the old one, whose captured resetter
  // calls set_stop_handler again. With the old locking this deadlocked
  // (aborted under rank checks) right here.
  runtime_->set_stop_handler(
      [](const rpc::StopEvent&) { return Runtime::Command::Continue; });

  // The slot still works after the re-entrant replacement.
  int stops = 0;
  runtime_->set_stop_handler([&stops](const rpc::StopEvent&) {
    ++stops;
    return Runtime::Command::Continue;
  });
  runtime_->add_breakpoint("slot.cc", 5, "");
  simulator_->tick();
  EXPECT_GE(stops, 1);
}

TEST_F(CallbackSlotTest, ReplacingChangeListenerRunsOldDestructorUnlocked) {
  auto resetter = std::make_shared<ListenerResetter>(runtime_.get());
  runtime_->set_change_listener(
      [resetter](int64_t, uint64_t, const Changes&) {});
  resetter.reset();

  runtime_->set_change_listener([](int64_t, uint64_t, const Changes&) {});

  int batches = 0;
  runtime_->set_change_listener(
      [&batches](int64_t, uint64_t, const Changes&) { ++batches; });
  ASSERT_GT(runtime_->add_signal_subscription({"cycle_reg"}), 0);
  simulator_->tick();
  EXPECT_GE(batches, 1);
}

TEST_F(CallbackSlotTest, ClearingSlotsDestroysCallbacksOutsideLock) {
  auto handler_resetter = std::make_shared<HandlerResetter>(runtime_.get());
  auto listener_resetter = std::make_shared<ListenerResetter>(runtime_.get());
  runtime_->set_stop_handler([handler_resetter](const rpc::StopEvent&) {
    return Runtime::Command::Continue;
  });
  runtime_->set_change_listener(
      [listener_resetter](int64_t, uint64_t, const Changes&) {});
  handler_resetter.reset();
  listener_resetter.reset();
  // Clearing both slots triggers both re-entrant destructors.
  runtime_->set_stop_handler({});
  runtime_->set_change_listener({});
}

}  // namespace
}  // namespace hgdb::runtime
