#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>

#include "frontend/compile.h"
#include "ir/parser.h"
#include "runtime/runtime.h"
#include "sim/simulator.h"
#include "sim/vcd_writer.h"
#include "symbols/symbol_table.h"
#include "trace/vcd_reader.h"
#include "vpi/native_backend.h"
#include "vpi/replay_backend.h"

namespace hgdb::runtime {
namespace {

using Command = Runtime::Command;

/// Self-stimulating counter design with two breakpointable lines per cycle.
constexpr const char* kDesign = R"(circuit Rev
  module Rev
    input clock : Clock
    output out : UInt<8>
    reg cycle_reg : UInt<8> clock clock
    connect cycle_reg = add(cycle_reg, UInt<8>(1)) @[rev.cc 3 1]
    wire doubled : UInt<8> @[rev.cc 4 1]
    connect doubled = add(cycle_reg, cycle_reg) @[rev.cc 5 1]
    connect out = doubled @[rev.cc 6 1]
  end
end
)";

frontend::CompileResult compile_design() {
  frontend::CompileOptions options;
  options.debug_mode = true;
  return frontend::compile(ir::parse_circuit(kDesign), options);
}

// -- intra-cycle reverse (works on ANY backend, paper Sec. 3.2) ----------------

TEST(ReverseDebug, IntraCycleStepBackRevisitsEarlierStatement) {
  auto compiled = compile_design();
  symbols::MemorySymbolTable table(compiled.symbols);
  sim::Simulator simulator(compiled.netlist);
  simulator.enable_checkpoints(true);
  vpi::NativeBackend backend(simulator);
  Runtime runtime(backend, table);
  runtime.attach();

  runtime.add_breakpoint("rev.cc", 5);
  std::vector<std::pair<uint32_t, uint64_t>> stops;  // (line, time)
  runtime.set_stop_handler([&](const rpc::StopEvent& event) {
    stops.emplace_back(event.frames.empty() ? 0 : event.frames[0].line,
                       event.time);
    // On the first stop at line 5, step back: should revisit line 3 of the
    // SAME cycle (intra-cycle reverse debugging).
    if (stops.size() == 1) return Command::StepBack;
    return Command::Continue;
  });
  while (simulator.cycle() < 3) simulator.tick();
  ASSERT_GE(stops.size(), 2u);
  EXPECT_EQ(stops[0].first, 5u);
  EXPECT_EQ(stops[1].first, 3u);
  EXPECT_EQ(stops[1].second, stops[0].second);  // same timestamp
}

// -- cross-cycle reverse on the native simulator (checkpoints) -----------------

TEST(ReverseDebug, StepBackCrossesIntoPreviousCycle) {
  auto compiled = compile_design();
  symbols::MemorySymbolTable table(compiled.symbols);
  sim::Simulator simulator(compiled.netlist);
  simulator.enable_checkpoints(true);
  vpi::NativeBackend backend(simulator);
  Runtime runtime(backend, table);
  runtime.attach();

  runtime.add_breakpoint("rev.cc", 3);  // first statement of each cycle
  std::vector<std::pair<uint32_t, std::string>> stops;  // (line, cycle_reg)
  runtime.set_stop_handler([&](const rpc::StopEvent& event) {
    std::string reg_value =
        event.frames.empty() ? ""
                             : event.frames[0].generator.get_string("cycle_reg");
    stops.emplace_back(event.frames.empty() ? 0 : event.frames[0].line,
                       reg_value);
    // Third stop (cycle_reg==2): step back across the cycle boundary.
    if (stops.size() == 3) return Command::StepBack;
    if (stops.size() == 4) return Command::Continue;
    return Command::Continue;
  });
  while (simulator.cycle() < 6) simulator.tick();
  ASSERT_GE(stops.size(), 4u);
  // Registers latch before the rising edge, so stops 1..3 observe
  // cycle_reg = 1, 2, 3; step-back re-enters the previous cycle and stops
  // at its LAST enabled statement (line 6) with the earlier state.
  EXPECT_EQ(stops[2].second, "3");
  EXPECT_EQ(stops[3].first, 6u);
  EXPECT_EQ(stops[3].second, "2");  // register state of the previous cycle
}

TEST(ReverseDebug, ReverseContinueFindsPreviousHit) {
  auto compiled = compile_design();
  symbols::MemorySymbolTable table(compiled.symbols);
  sim::Simulator simulator(compiled.netlist);
  simulator.enable_checkpoints(true);
  vpi::NativeBackend backend(simulator);
  Runtime runtime(backend, table);
  runtime.attach();

  // Break only when cycle_reg == 4, then reverse-continue with a looser
  // breakpoint to land on an earlier cycle's hit.
  runtime.add_breakpoint("rev.cc", 3, "cycle_reg == 4");
  std::vector<std::string> reg_values;
  bool reversed = false;
  runtime.set_stop_handler([&](const rpc::StopEvent& event) {
    reg_values.push_back(
        event.frames.empty() ? ""
                             : event.frames[0].generator.get_string("cycle_reg"));
    if (!reversed) {
      reversed = true;
      runtime.clear_breakpoints();
      runtime.add_breakpoint("rev.cc", 3, "cycle_reg == 2");
      return Command::ReverseContinue;
    }
    return Command::Continue;
  });
  while (simulator.cycle() < 8) simulator.tick();
  ASSERT_GE(reg_values.size(), 2u);
  EXPECT_EQ(reg_values[0], "4");
  EXPECT_EQ(reg_values[1], "2");  // found backwards in time
}

TEST(ReverseDebug, ForwardReExecutionAfterReverseIsConsistent) {
  auto compiled = compile_design();
  symbols::MemorySymbolTable table(compiled.symbols);
  sim::Simulator simulator(compiled.netlist);
  simulator.enable_checkpoints(true);
  vpi::NativeBackend backend(simulator);
  Runtime runtime(backend, table);
  runtime.attach();

  runtime.add_breakpoint("rev.cc", 3, "cycle_reg == 3");
  int hits = 0;
  runtime.set_stop_handler([&](const rpc::StopEvent&) {
    ++hits;
    // Step back once, then continue forward; the breakpoint must hit again
    // when the timeline re-reaches cycle_reg == 3.
    return hits == 1 ? Command::StepBack : Command::Continue;
  });
  while (simulator.cycle() < 8) simulator.tick();
  // hit at 3, one reverse stop, then re-hit at 3 after re-execution.
  EXPECT_GE(hits, 3);
  EXPECT_EQ(simulator.value("Rev.cycle_reg").to_uint64(), 8u);
}

// -- reverse debugging from a VCD trace (the paper's replay tool) ---------------

class ReplayReverseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // pid + test name: unique across concurrent ctest processes.
    path_ = ::testing::TempDir() + "hgdb_reverse_replay_" +
            std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() +
            ".vcd";
    auto compiled = compile_design();
    data_ = compiled.symbols;
    sim::Simulator simulator(compiled.netlist);
    sim::VcdWriter writer(simulator, path_);
    writer.attach();
    simulator.run(10);
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::string path_;
  symbols::SymbolTableData data_;
};

TEST_F(ReplayReverseTest, BreakpointsHitDuringReplay) {
  symbols::MemorySymbolTable table(data_);
  vpi::ReplayBackend backend{trace::ReplayEngine(trace::parse_vcd_file(path_))};
  Runtime runtime(backend, table);
  runtime.attach();
  runtime.add_breakpoint("rev.cc", 5);
  int stops = 0;
  runtime.set_stop_handler([&](const rpc::StopEvent& event) {
    ++stops;
    EXPECT_EQ(event.frames[0].line, 5u);
    return Command::Continue;
  });
  backend.run_forward();
  EXPECT_EQ(stops, 10);
}

TEST_F(ReplayReverseTest, ReverseContinueThroughHistory) {
  symbols::MemorySymbolTable table(data_);
  vpi::ReplayBackend backend{trace::ReplayEngine(trace::parse_vcd_file(path_))};
  Runtime runtime(backend, table);
  runtime.attach();

  runtime.add_breakpoint("rev.cc", 3, "cycle_reg == 7");
  std::vector<std::string> values;
  bool reversed = false;
  runtime.set_stop_handler([&](const rpc::StopEvent& event) {
    values.push_back(event.frames.empty()
                         ? "<none>"
                         : event.frames[0].generator.get_string("cycle_reg"));
    if (!reversed) {
      reversed = true;
      runtime.clear_breakpoints();
      runtime.add_breakpoint("rev.cc", 3, "cycle_reg == 1");
      return Command::ReverseContinue;
    }
    return Command::Continue;
  });
  backend.run_forward();
  ASSERT_GE(values.size(), 2u);
  EXPECT_EQ(values[0], "7");
  EXPECT_EQ(values[1], "1");
}

TEST_F(ReplayReverseTest, ReverseBottomsOutWithEmptyStop) {
  symbols::MemorySymbolTable table(data_);
  vpi::ReplayBackend backend{trace::ReplayEngine(trace::parse_vcd_file(path_))};
  Runtime runtime(backend, table);
  runtime.attach();

  runtime.add_breakpoint("rev.cc", 3, "cycle_reg == 2");
  bool saw_empty = false;
  bool reversed = false;
  runtime.set_stop_handler([&](const rpc::StopEvent& event) {
    if (event.frames.empty()) {
      saw_empty = true;
      return Command::Continue;
    }
    if (!reversed) {
      reversed = true;
      // Nothing earlier will match: reverse exhausts history.
      runtime.clear_breakpoints();
      runtime.add_breakpoint("rev.cc", 3, "cycle_reg == 250");
      return Command::ReverseContinue;
    }
    return Command::Continue;
  });
  backend.run_forward();
  EXPECT_TRUE(saw_empty);
}

}  // namespace
}  // namespace hgdb::runtime
