#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <random>
#include <string>
#include <vector>

#include "runtime/expression.h"

namespace hgdb::runtime {
namespace {

using common::BitVector;

// ---------------------------------------------------------------------------
// Harness: evaluate one expression both ways and compare.
// ---------------------------------------------------------------------------

using Env = std::map<std::string, BitVector>;

std::optional<BitVector> run_interpreted(const Expression& expr,
                                         const Env& env) {
  try {
    return expr.evaluate(
        [&](const std::string& name) -> std::optional<BitVector> {
          auto it = env.find(name);
          if (it == env.end()) return std::nullopt;
          return it->second;
        });
  } catch (const std::exception&) {
    return std::nullopt;  // faults (unresolved name, bad slice, ...)
  }
}

std::optional<BitVector> run_compiled(const Expression& expr, const Env& env) {
  const CompiledExpression compiled = expr.compile();
  std::vector<const BitVector*> slots;
  slots.reserve(compiled.symbols().size());
  for (const auto& symbol : compiled.symbols()) {
    auto it = env.find(symbol);
    slots.push_back(it == env.end() ? nullptr : &it->second);
  }
  CompiledExpression::Scratch scratch;
  const BitVector* result = compiled.evaluate(slots.data(), scratch);
  if (result == nullptr) return std::nullopt;
  return *result;
}

void expect_equivalent(const std::string& text, const Env& env) {
  const Expression expr = Expression::parse(text);
  const auto interpreted = run_interpreted(expr, env);
  const auto compiled = run_compiled(expr, env);
  ASSERT_EQ(interpreted.has_value(), compiled.has_value())
      << text << " (interpreted "
      << (interpreted ? "succeeded" : "faulted") << ", compiled "
      << (compiled ? "succeeded" : "faulted") << ")";
  if (interpreted) {
    EXPECT_EQ(*interpreted, *compiled)
        << text << ": interpreted " << interpreted->to_string(16) << "/"
        << interpreted->width() << "b vs compiled "
        << compiled->to_string(16) << "/" << compiled->width() << "b";
  }
}

Env basic_env() {
  Env env;
  env.emplace("a", BitVector(8, 200));
  env.emplace("b", BitVector(8, 3));
  env.emplace("c", BitVector(16, 40000));
  env.emplace("data[0]", BitVector(8, 5));
  env.emplace("io.out.bits", BitVector(32, 0xdeadbeef));
  env.emplace("narrow", BitVector(1, 1));
  env.emplace("wide", BitVector::from_words(100, {0x123456789abcdef0ull,
                                                  0xffffffffull}));
  return env;
}

// ---------------------------------------------------------------------------
// Directed cases
// ---------------------------------------------------------------------------

TEST(CompiledExpression, MatchesInterpretedOnDirectedCases) {
  const Env env = basic_env();
  const char* cases[] = {
      "42",
      "0x2a",
      "UInt<16>(300)",
      "SInt<8>(200)",
      "a",
      "a + b",
      "a - b",
      "a * b",
      "a / b",
      "a % b",
      "a / 0",
      "a % 0",
      "a == 200 && b < 4",
      "a != b || !narrow",
      "(a >> 2) + (b << 1)",
      "~a & 0xff",
      "-b",
      "data[0] % 2 == 1",
      "io.out.bits > 100",
      "a < b",
      "a <= b",
      "a > b",
      "a >= b",
      "a ^ b",
      "a | b",
      "a & b",
      // IR call syntax over the full primitive set.
      "add(a, b)",
      "sub(a, b)",
      "mul(a, b)",
      "div(a, b)",
      "rem(a, b)",
      "and(a, b)",
      "or(a, b)",
      "xor(a, b)",
      "not(a)",
      "neg(a)",
      "andr(a)",
      "orr(a)",
      "xorr(a)",
      "cat(a, b)",
      "bits(a, 7, 0)",
      "bits(a, 3, 1)",
      "bits(a, 9, 0)",   // hi >= width: fault in both engines
      "bits(a, 1, 3)",   // lo > hi: fault in both engines
      "pad(a, 16)",
      "pad(c, 4)",
      "shl(a, 3)",
      "shr(a, 3)",
      "shl(a, 200)",
      "shr(a, 200)",
      "dshl(a, b)",
      "dshr(a, b)",
      "dshl(a, c)",
      "asUInt(a)",
      "asSInt(a)",
      "mux(narrow, a, c)",
      "mux(b == 3, cat(a, b), pad(a, 16))",
      // Signed propagation through arithmetic.
      "SInt<8>(200) / SInt<8>(3)",
      "SInt<8>(200) % SInt<8>(3)",
      "SInt<8>(200) < SInt<8>(3)",
      "SInt<8>(200) > b",
      "asSInt(a) / b",
      "shr(asSInt(a), 2)",
      "dshr(asSInt(a), b)",
      "pad(asSInt(a), 16)",
      // Wide (>64-bit) operands exercise the eval_prim slow path.
      "wide + wide",
      "wide == wide",
      "wide > c",
      "bits(wide, 70, 3)",
      "orr(wide)",
      "andr(wide)",
      "xorr(wide)",
      "cat(wide, a)",
      "pad(a, 100) + wide",
      "mux(narrow, wide, c)",
      "wide && narrow",
      "!wide",
      // The paper's listing condition shape.
      "data[0] % 2 == 1 && a > 10",
  };
  for (const char* text : cases) {
    SCOPED_TRACE(text);
    expect_equivalent(text, env);
  }
}

TEST(CompiledExpression, UnresolvedSlotReportsUnavailable) {
  const Expression expr = Expression::parse("ghost + 1");
  const auto compiled = run_compiled(expr, basic_env());
  EXPECT_FALSE(compiled.has_value());
}

TEST(CompiledExpression, SymbolsDeduplicatedInSlotOrder) {
  const CompiledExpression compiled =
      Expression::parse("a + b * a + data[3]").compile();
  EXPECT_EQ(compiled.symbols(),
            (std::vector<std::string>{"a", "b", "data[3]"}));
}

TEST(CompiledExpression, ScratchReuseAcrossEvaluations) {
  const Env env = basic_env();
  const Expression expr = Expression::parse("(a + b) * 2 == c % 100");
  const CompiledExpression compiled = expr.compile();
  std::vector<const BitVector*> slots;
  for (const auto& symbol : compiled.symbols()) {
    slots.push_back(&env.at(symbol));
  }
  CompiledExpression::Scratch scratch;
  const BitVector* first = compiled.evaluate(slots.data(), scratch);
  ASSERT_NE(first, nullptr);
  const BitVector expected = *first;
  for (int i = 0; i < 100; ++i) {
    const BitVector* again = compiled.evaluate(slots.data(), scratch);
    ASSERT_NE(again, nullptr);
    EXPECT_EQ(*again, expected);
  }
}

TEST(CompiledExpression, CallArityIsValidatedAtParseTime) {
  EXPECT_THROW(Expression::parse("add(a)"), std::invalid_argument);
  EXPECT_THROW(Expression::parse("add(a, b, c)"), std::invalid_argument);
  EXPECT_THROW(Expression::parse("not(a, b)"), std::invalid_argument);
  EXPECT_THROW(Expression::parse("mux(a, b)"), std::invalid_argument);
  EXPECT_THROW(Expression::parse("bits(a)"), std::invalid_argument);
  EXPECT_THROW(Expression::parse("bits(a, 1)"), std::invalid_argument);
  EXPECT_THROW(Expression::parse("pad(a)"), std::invalid_argument);
  EXPECT_THROW(Expression::parse("shl(a)"), std::invalid_argument);
  EXPECT_NO_THROW(Expression::parse("bits(a, 3, 1)"));
  EXPECT_NO_THROW(Expression::parse("mux(a, b, c)"));
}

// ---------------------------------------------------------------------------
// Logical short-circuit (&& / ||)
// ---------------------------------------------------------------------------

/// Evaluates and returns (result, instructions executed) for one run.
std::pair<std::optional<BitVector>, uint64_t> run_counted(
    const std::string& text, const Env& env) {
  const Expression expr = Expression::parse(text);
  const CompiledExpression compiled = expr.compile();
  std::vector<const BitVector*> slots;
  for (const auto& symbol : compiled.symbols()) {
    auto it = env.find(symbol);
    slots.push_back(it == env.end() ? nullptr : &it->second);
  }
  CompiledExpression::Scratch scratch;
  const BitVector* result = compiled.evaluate(slots.data(), scratch);
  return {result ? std::optional<BitVector>(*result) : std::nullopt,
          scratch.ops_executed};
}

TEST(CompiledExpressionShortCircuit, DeadOperandIsSkipped) {
  Env env = basic_env();
  env.emplace("zero", BitVector(1, 0));
  env.emplace("one", BitVector(1, 1));

  // && with a false left side: the expensive right operand never runs —
  // visibly fewer instructions than the taken path.
  const auto [and_false, and_false_ops] =
      run_counted("zero && (a * a + b * b > c)", env);
  ASSERT_TRUE(and_false.has_value());
  EXPECT_FALSE(and_false->to_bool());
  const auto [and_true, and_true_ops] =
      run_counted("one && (a * a + b * b > c)", env);
  ASSERT_TRUE(and_true.has_value());
  EXPECT_LT(and_false_ops, and_true_ops);

  // || mirrors with a true left side.
  const auto [or_true, or_true_ops] =
      run_counted("one || (a * a + b * b > c)", env);
  ASSERT_TRUE(or_true.has_value());
  EXPECT_TRUE(or_true->to_bool());
  const auto [or_false, or_false_ops] =
      run_counted("zero || (a * a + b * b > c)", env);
  ASSERT_TRUE(or_false.has_value());
  EXPECT_LT(or_true_ops, or_false_ops);
}

TEST(CompiledExpressionShortCircuit, DeadOperandFaultsAreUnobservable) {
  // C semantics: the dead operand is not evaluated, so a fault (bad slice)
  // or an unresolvable symbol in it cannot poison the result. Both engines
  // must agree — the interpreted walk short-circuits identically.
  Env env = basic_env();
  env.emplace("zero", BitVector(1, 0));
  env.emplace("one", BitVector(1, 1));
  const char* cases[] = {
      "zero && bits(a, 100, 0)",  // fault in the dead operand
      "one || bits(a, 100, 0)",
      "zero && ghost_signal",  // unresolved symbol in the dead operand
      "one || ghost_signal",
  };
  for (const char* text : cases) {
    SCOPED_TRACE(text);
    expect_equivalent(text, env);
    const auto [result, ops] = run_counted(text, env);
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(result->to_bool(), std::string(text).find("||") !=
                                     std::string::npos);
  }
  // The same fault in a LIVE operand still faults, in both engines.
  expect_equivalent("one && bits(a, 100, 0)", env);
  EXPECT_FALSE(run_counted("one && bits(a, 100, 0)", env).first.has_value());
}

TEST(CompiledExpressionShortCircuit, NestedChainsSkipTransitively) {
  Env env = basic_env();
  env.emplace("zero", BitVector(1, 0));
  // The first false operand kills the whole right-hand spine.
  const auto [result, ops] = run_counted(
      "zero && ((a + b) * c > 100 && (c % 7 == 3 || a * b * c > 5))", env);
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->to_bool());
  // Branch + lhs-load + combine-skip: only a handful of instructions ran.
  EXPECT_LE(ops, 3u);
}

// ---------------------------------------------------------------------------
// Differential fuzzing over the full grammar
// ---------------------------------------------------------------------------

class Fuzzer {
 public:
  explicit Fuzzer(uint32_t seed) : gen_(seed) {}

  Env random_env() {
    static const uint32_t kWidths[] = {1, 5, 8, 16, 32, 63, 64, 65, 100, 128};
    Env env;
    for (const char* name : kNames) {
      const uint32_t width = kWidths[pick(std::size(kWidths))];
      std::vector<uint64_t> words((width + 63) / 64);
      for (auto& word : words) word = word_dist_(gen_);
      env.emplace(name, BitVector::from_words(width, std::move(words)));
    }
    return env;
  }

  std::string expression(int depth) {
    if (depth <= 0) return terminal();
    switch (pick(8)) {
      case 0:
        return terminal();
      case 1: {  // infix binary
        static const char* kInfix[] = {"+", "-", "*", "/", "%", "&", "|",
                                       "^", "==", "!=", "<", "<=", ">", ">=",
                                       "&&", "||", "<<", ">>"};
        return "(" + expression(depth - 1) + " " + kInfix[pick(std::size(kInfix))] +
               " " + expression(depth - 1) + ")";
      }
      case 2: {  // unary
        static const char* kUnary[] = {"!", "~", "-"};
        return kUnary[pick(3)] + ("(" + expression(depth - 1) + ")");
      }
      case 3: {  // binary call
        static const char* kCalls[] = {"add", "sub", "mul", "div", "rem",
                                       "lt", "leq", "gt", "geq", "eq", "neq",
                                       "and", "or", "xor", "cat", "dshl",
                                       "dshr"};
        return std::string(kCalls[pick(std::size(kCalls))]) + "(" +
               expression(depth - 1) + ", " + expression(depth - 1) + ")";
      }
      case 4: {  // unary call
        static const char* kCalls[] = {"not", "neg", "andr", "orr", "xorr",
                                       "asUInt", "asSInt"};
        return std::string(kCalls[pick(std::size(kCalls))]) + "(" +
               expression(depth - 1) + ")";
      }
      case 5: {  // param call: bits / pad / shl / shr (params may fault)
        switch (pick(4)) {
          case 0: {
            const uint32_t lo = pick(70);
            const uint32_t hi = lo + pick(40);
            return "bits(" + expression(depth - 1) + ", " +
                   std::to_string(hi) + ", " + std::to_string(lo) + ")";
          }
          case 1:
            return "pad(" + expression(depth - 1) + ", " +
                   std::to_string(pick(130)) + ")";
          case 2:
            return "shl(" + expression(depth - 1) + ", " +
                   std::to_string(pick(80)) + ")";
          default:
            return "shr(" + expression(depth - 1) + ", " +
                   std::to_string(pick(80)) + ")";
        }
      }
      case 6:
        return "mux(" + expression(depth - 1) + ", " + expression(depth - 1) +
               ", " + expression(depth - 1) + ")";
      default:
        return "(" + expression(depth - 1) + ")";
    }
  }

 private:
  static constexpr const char* kNames[] = {"a",       "b",          "c",
                                           "data[0]", "io.out.bits", "wide"};

  std::string terminal() {
    switch (pick(5)) {
      case 0:
        return kNames[pick(std::size(kNames))];
      case 1:
        return std::to_string(pick(1000000));
      case 2: {
        const uint32_t width = 1 + pick(100);
        return "UInt<" + std::to_string(width) + ">(" +
               std::to_string(pick(100000)) + ")";
      }
      case 3: {
        const uint32_t width = 1 + pick(64);
        const int64_t value =
            static_cast<int64_t>(pick(1000)) - 500;
        return "SInt<" + std::to_string(width) + ">(" +
               std::to_string(value) + ")";
      }
      default:
        return "0x" + [this] {
          static const char* kHex = "0123456789abcdef";
          std::string digits;
          const size_t count = 1 + pick(8);
          for (size_t i = 0; i < count; ++i) digits.push_back(kHex[pick(16)]);
          return digits;
        }();
    }
  }

  uint32_t pick(size_t bound) {
    return static_cast<uint32_t>(gen_() % bound);
  }

  std::mt19937 gen_;
  std::uniform_int_distribution<uint64_t> word_dist_;
};

TEST(CompiledExpressionFuzz, CompiledMatchesInterpreted) {
  constexpr int kIterations = 4000;
  Fuzzer fuzzer(20260728u);
  for (int i = 0; i < kIterations; ++i) {
    const Env env = fuzzer.random_env();
    const std::string text = fuzzer.expression(1 + static_cast<int>(i % 4));
    SCOPED_TRACE("iteration " + std::to_string(i) + ": " + text);
    Expression expr = Expression::parse(text);
    expect_equivalent(text, env);
  }
}

TEST(CompiledExpressionFuzz, SecondSeedAndDeeperTrees) {
  constexpr int kIterations = 1000;
  Fuzzer fuzzer(0xC0FFEEu);
  for (int i = 0; i < kIterations; ++i) {
    const Env env = fuzzer.random_env();
    const std::string text = fuzzer.expression(5);
    SCOPED_TRACE("iteration " + std::to_string(i) + ": " + text);
    expect_equivalent(text, env);
  }
}

TEST(CompiledExpressionFuzz, LogicalShortCircuitHeavy) {
  // Random subexpressions (which may fault via bits()/pad() params or
  // divide wildly) glued together with && / || : the short-circuit branch
  // program and the short-circuiting interpreted walk must agree on every
  // composition, including whether a dead-operand fault is observable.
  constexpr int kIterations = 1500;
  Fuzzer fuzzer(0x5C5C5C5Cu);
  std::mt19937 gen(0x5C5C5C5Cu);
  for (int i = 0; i < kIterations; ++i) {
    const Env env = fuzzer.random_env();
    std::string text = "(" + fuzzer.expression(2) + ")";
    const int joins = 1 + static_cast<int>(gen() % 3);
    for (int j = 0; j < joins; ++j) {
      text += (gen() % 2 == 0) ? " && " : " || ";
      text += "(" + fuzzer.expression(2) + ")";
    }
    SCOPED_TRACE("iteration " + std::to_string(i) + ": " + text);
    expect_equivalent(text, env);
  }
}

}  // namespace
}  // namespace hgdb::runtime
