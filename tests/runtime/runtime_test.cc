#include "runtime/runtime.h"

#include <gtest/gtest.h>

#include "frontend/compile.h"
#include "ir/parser.h"
#include "sim/simulator.h"
#include "symbols/symbol_table.h"
#include "vpi/native_backend.h"

namespace hgdb::runtime {
namespace {

using Command = Runtime::Command;

/// A small design with known synthetic source locations ("demo.cc"):
///   line 5: register increment (always enabled)
///   line 7: unconditional assignment to t
///   line 8: when condition
///   line 9: conditional assignment (enabled when cycle_reg > 3)
constexpr const char* kDemo = R"(circuit Demo
  module Demo
    input clock : Clock
    output out : UInt<8>
    reg cycle_reg : UInt<8> clock clock
    connect cycle_reg = add(cycle_reg, UInt<8>(1)) @[demo.cc 5 1]
    wire t : UInt<8> @[demo.cc 6 1]
    connect t = cycle_reg @[demo.cc 7 1]
    when gt(cycle_reg, UInt<8>(3)) @[demo.cc 8 1]
      connect t = add(t, UInt<8>(10)) @[demo.cc 9 3]
    end
    connect out = t @[demo.cc 10 1]
  end
end
)";

class RuntimeTest : public ::testing::Test {
 protected:
  void SetUp() override { build(kDemo); }

  void build(const char* text, RuntimeOptions options = {}) {
    // Tear down in dependency order before rebuilding: the runtime holds
    // pointers into the backend and table.
    runtime_.reset();
    backend_.reset();
    simulator_.reset();
    table_.reset();
    frontend::CompileOptions compile_options;
    compile_options.debug_mode = true;
    auto compiled = frontend::compile(ir::parse_circuit(text), compile_options);
    table_ = std::make_unique<symbols::MemorySymbolTable>(compiled.symbols);
    simulator_ = std::make_unique<sim::Simulator>(compiled.netlist);
    backend_ = std::make_unique<vpi::NativeBackend>(*simulator_);
    runtime_ = std::make_unique<Runtime>(*backend_, *table_, options);
    runtime_->attach();
  }

  /// Collects (line, frame-count) for every stop while running `cycles`.
  std::vector<std::pair<uint32_t, size_t>> run_collecting(
      uint64_t cycles, Command command = Command::Continue) {
    std::vector<std::pair<uint32_t, size_t>> stops;
    runtime_->set_stop_handler([&](const rpc::StopEvent& event) {
      stops.emplace_back(event.frames.empty() ? 0 : event.frames[0].line,
                         event.frames.size());
      return command;
    });
    simulator_->run(cycles);
    return stops;
  }

  std::unique_ptr<symbols::MemorySymbolTable> table_;
  std::unique_ptr<sim::Simulator> simulator_;
  std::unique_ptr<vpi::NativeBackend> backend_;
  std::unique_ptr<Runtime> runtime_;
};

TEST_F(RuntimeTest, AddBreakpointUnknownLocationEmpty) {
  EXPECT_TRUE(runtime_->add_breakpoint("demo.cc", 999).empty());
  EXPECT_TRUE(runtime_->add_breakpoint("ghost.cc", 7).empty());
  EXPECT_EQ(runtime_->inserted_count(), 0u);
}

TEST_F(RuntimeTest, UnconditionalBreakpointHitsEveryCycle) {
  ASSERT_FALSE(runtime_->add_breakpoint("demo.cc", 7).empty());
  auto stops = run_collecting(5);
  ASSERT_EQ(stops.size(), 5u);
  for (const auto& [line, frames] : stops) {
    EXPECT_EQ(line, 7u);
    EXPECT_EQ(frames, 1u);
  }
}

TEST_F(RuntimeTest, EnableConditionGatesBreakpoint) {
  // Line 9 is only enabled when cycle_reg > 3; the register latches 1..8
  // across 8 cycles, so values 4..8 enable it: 5 stops.
  ASSERT_FALSE(runtime_->add_breakpoint("demo.cc", 9).empty());
  auto stops = run_collecting(8);
  EXPECT_EQ(stops.size(), 5u);
}

TEST_F(RuntimeTest, UserConditionFiltersHits) {
  ASSERT_FALSE(
      runtime_->add_breakpoint("demo.cc", 7, "cycle_reg % 2 == 0").empty());
  auto stops = run_collecting(8);
  EXPECT_EQ(stops.size(), 4u);
}

TEST_F(RuntimeTest, BadConditionExpressionThrows) {
  EXPECT_THROW(runtime_->add_breakpoint("demo.cc", 7, "((("),
               std::invalid_argument);
}

TEST_F(RuntimeTest, RemoveBreakpointStopsHits) {
  runtime_->add_breakpoint("demo.cc", 7);
  EXPECT_EQ(runtime_->remove_breakpoint("demo.cc", 7), 1u);
  auto stops = run_collecting(5);
  EXPECT_TRUE(stops.empty());
  EXPECT_EQ(runtime_->inserted_count(), 0u);
}

TEST_F(RuntimeTest, FramesCarryScopeVariables) {
  runtime_->add_breakpoint("demo.cc", 9);
  std::optional<rpc::Frame> frame;
  runtime_->set_stop_handler([&](const rpc::StopEvent& event) {
    if (!frame && !event.frames.empty()) frame = event.frames[0];
    return Command::Continue;
  });
  simulator_->run(6);
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->filename, "demo.cc");
  EXPECT_EQ(frame->line, 9u);
  // Scope shows t's incoming SSA value (== cycle_reg at that point).
  ASSERT_TRUE(frame->locals.contains("t"));
  EXPECT_EQ(frame->locals.get_string("t"), "4");
  // Generator variables include the register.
  EXPECT_TRUE(frame->generator.contains("cycle_reg"));
}

TEST_F(RuntimeTest, StepOverWalksStatementsInOrder) {
  runtime_->add_breakpoint("demo.cc", 5);
  std::vector<uint32_t> lines;
  runtime_->set_stop_handler([&](const rpc::StopEvent& event) {
    lines.push_back(event.frames.empty() ? 0 : event.frames[0].line);
    return lines.size() < 6 ? Command::StepOver : Command::Continue;
  });
  simulator_->run(6);
  ASSERT_GE(lines.size(), 5u);
  // Statement order within a cycle: 5 (reg), 7 (t=...), 8 (when), then
  // 9 if enabled else next cycle's 5.
  EXPECT_EQ(lines[0], 5u);
  EXPECT_EQ(lines[1], 7u);
  EXPECT_EQ(lines[2], 8u);
}

TEST_F(RuntimeTest, StepOverCrossesCycleBoundary) {
  runtime_->add_breakpoint("demo.cc", 10);
  std::vector<std::pair<uint32_t, uint64_t>> stops;
  runtime_->set_stop_handler([&](const rpc::StopEvent& event) {
    stops.emplace_back(event.frames[0].line, event.time);
    return stops.size() == 1 ? Command::StepOver : Command::Continue;
  });
  simulator_->run(3);
  ASSERT_GE(stops.size(), 2u);
  EXPECT_EQ(stops[0].first, 10u);
  // After line 10 (last statement), stepping lands on line 5 of the NEXT
  // cycle.
  EXPECT_EQ(stops[1].first, 5u);
  EXPECT_GT(stops[1].second, stops[0].second);
}

TEST_F(RuntimeTest, FastPathWhenNothingInserted) {
  simulator_->run(100);
  auto stats = runtime_->stats();
  EXPECT_EQ(stats.clock_edges, 100u);
  EXPECT_EQ(stats.fast_path_exits, 100u);
  EXPECT_EQ(stats.batches_evaluated, 0u);
  EXPECT_EQ(stats.stops, 0u);
}

TEST_F(RuntimeTest, SchedulerOnlyEvaluatesWhenInserted) {
  runtime_->add_breakpoint("demo.cc", 7);
  run_collecting(10);
  auto stats = runtime_->stats();
  EXPECT_EQ(stats.stops, 10u);
  EXPECT_GT(stats.batches_evaluated, 0u);
  EXPECT_EQ(stats.fast_path_exits, 0u);
}

TEST_F(RuntimeTest, EvaluateInBreakpointScope) {
  runtime_->add_breakpoint("demo.cc", 9);
  std::optional<int64_t> bp_id;
  runtime_->set_stop_handler([&](const rpc::StopEvent& event) {
    if (!bp_id && !event.frames.empty()) {
      bp_id = event.frames[0].breakpoint_id;
      auto value = runtime_->evaluate("t + 100", bp_id);
      EXPECT_TRUE(value.has_value());
      EXPECT_EQ(value->to_uint64(), 104u);  // t == 4 at the first hit
    }
    return Command::Continue;
  });
  simulator_->run(6);
  ASSERT_TRUE(bp_id.has_value());
}

TEST_F(RuntimeTest, EvaluateAgainstInstance) {
  simulator_->run(3);
  auto value = runtime_->evaluate("cycle_reg", std::nullopt, "Demo");
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(value->to_uint64(), 3u);
  // Default instance = top.
  EXPECT_EQ(runtime_->evaluate("cycle_reg", std::nullopt)->to_uint64(), 3u);
  EXPECT_FALSE(runtime_->evaluate("ghost_signal", std::nullopt).has_value());
  EXPECT_FALSE(runtime_->evaluate("x", std::nullopt, "NoSuchInstance").has_value());
}

TEST_F(RuntimeTest, BuildFrameOnDemand) {
  simulator_->run(2);
  auto rows = table_->breakpoints_at("demo.cc", 7);
  ASSERT_FALSE(rows.empty());
  auto frame = runtime_->build_frame(rows[0].id);
  EXPECT_EQ(frame.line, 7u);
  EXPECT_THROW(runtime_->build_frame(99999), std::invalid_argument);
}

TEST_F(RuntimeTest, DetachSilencesCallbacks) {
  runtime_->add_breakpoint("demo.cc", 7);
  runtime_->detach();
  auto stops = run_collecting(5);
  EXPECT_TRUE(stops.empty());
  EXPECT_EQ(runtime_->stats().clock_edges, 0u);
}

TEST_F(RuntimeTest, SequentialEvalMatchesParallel) {
  // Ablation hook: 1-thread pool must produce identical stops.
  RuntimeOptions options;
  options.eval_threads = 1;
  build(kDemo, options);
  runtime_->add_breakpoint("demo.cc", 9);
  auto stops = run_collecting(8);
  EXPECT_EQ(stops.size(), 5u);  // same as the parallel-pool run
}

// -- concurrent instances: the paper's Fig. 4 B "threads" ----------------------

constexpr const char* kMultiInstance = R"(circuit Top
  module Worker
    input clock : Clock
    input bias : UInt<8>
    output out : UInt<8>
    reg acc : UInt<8> clock clock
    connect acc = add(acc, bias) @[worker.cc 3 1]
    connect out = acc @[worker.cc 4 1]
  end
  module Top
    input clock : Clock
    output out : UInt<8>
    inst w0 of Worker
    inst w1 of Worker
    inst w2 of Worker
    connect w0.clock = clock
    connect w1.clock = clock
    connect w2.clock = clock
    connect w0.bias = UInt<8>(1)
    connect w1.bias = UInt<8>(2)
    connect w2.bias = UInt<8>(3)
    connect out = add(w0.out, add(w1.out, w2.out))
  end
end
)";

TEST_F(RuntimeTest, OneStopCarriesAllInstanceFrames) {
  build(kMultiInstance);
  ASSERT_EQ(runtime_->add_breakpoint("worker.cc", 3).size(), 3u);
  std::vector<rpc::Frame> frames;
  runtime_->set_stop_handler([&](const rpc::StopEvent& event) {
    if (frames.empty()) frames = event.frames;
    return Command::Continue;
  });
  simulator_->run(2);
  ASSERT_EQ(frames.size(), 3u);
  EXPECT_EQ(frames[0].instance_name, "Top.w0");
  EXPECT_EQ(frames[1].instance_name, "Top.w1");
  EXPECT_EQ(frames[2].instance_name, "Top.w2");
  // Same source line, different data per thread.
  EXPECT_EQ(frames[0].generator.get_string("bias"), "1");
  EXPECT_EQ(frames[2].generator.get_string("bias"), "3");
}

TEST_F(RuntimeTest, ConditionSelectsSingleInstance) {
  build(kMultiInstance);
  runtime_->add_breakpoint("worker.cc", 3, "bias == 2");
  std::vector<rpc::Frame> frames;
  runtime_->set_stop_handler([&](const rpc::StopEvent& event) {
    if (frames.empty()) frames = event.frames;
    return Command::Continue;
  });
  simulator_->run(2);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].instance_name, "Top.w1");
}

TEST_F(RuntimeTest, HierarchicalEvaluatePerInstance) {
  build(kMultiInstance);
  simulator_->run(4);
  EXPECT_EQ(runtime_->evaluate("acc", std::nullopt, "Top.w0")->to_uint64(), 4u);
  EXPECT_EQ(runtime_->evaluate("acc", std::nullopt, "Top.w2")->to_uint64(), 12u);
}

// -- compiled evaluation pipeline ---------------------------------------------

TEST_F(RuntimeTest, InterpretedModeMatchesCompiledStops) {
  // Differential check at the scheduler level: the same scenario run
  // through the interpreted reference path must stop identically.
  for (const bool compiled : {true, false}) {
    RuntimeOptions options;
    options.compiled_eval = compiled;
    build(kDemo, options);
    ASSERT_FALSE(
        runtime_->add_breakpoint("demo.cc", 7, "cycle_reg % 2 == 0").empty());
    auto stops = run_collecting(8);
    EXPECT_EQ(stops.size(), 4u) << "compiled=" << compiled;
    build(kDemo, options);
    ASSERT_FALSE(runtime_->add_breakpoint("demo.cc", 9).empty());
    stops = run_collecting(8);
    EXPECT_EQ(stops.size(), 5u) << "compiled=" << compiled;
  }
}

TEST_F(RuntimeTest, ConditionsEvaluatedCountsActualEvaluations) {
  // Line 7 has neither an enable nor a condition: nothing is evaluated,
  // so the counter must stay zero even though the breakpoint hits.
  runtime_->add_breakpoint("demo.cc", 7);
  auto stops = run_collecting(5);
  EXPECT_EQ(stops.size(), 5u);
  EXPECT_EQ(runtime_->stats().conditions_evaluated, 0u);

  // A condition over cycle_reg (changes every cycle) evaluates exactly
  // once per edge — nothing double-counted for the non-inserted sibling
  // batches.
  build(kDemo);
  runtime_->add_breakpoint("demo.cc", 7, "cycle_reg % 2 == 0");
  run_collecting(8);
  const auto stats = runtime_->stats();
  EXPECT_EQ(stats.conditions_evaluated, 8u);
  // The union of referenced signals is fetched through the batched entry
  // point, at least once per edge (a mid-edge stop re-fetches).
  EXPECT_GE(stats.batch_fetches, 8u);
  EXPECT_GE(stats.batch_signals, stats.batch_fetches);
}

TEST_F(RuntimeTest, ChangeDrivenSkipOnSsaEnable) {
  // Line 9's enable reads the SSA-precomputed when_cond0, which changes
  // only twice in 8 cycles (0->1 at cycle 4): two evaluations, six reuses
  // of the cached verdict — while still stopping on all 5 enabled cycles.
  runtime_->add_breakpoint("demo.cc", 9);
  auto stops = run_collecting(8);
  EXPECT_EQ(stops.size(), 5u);
  const auto stats = runtime_->stats();
  EXPECT_EQ(stats.conditions_evaluated, 2u);
  EXPECT_EQ(stats.dirty_skips, 6u);
}

TEST_F(RuntimeTest, DirtySetSkipsMembersWithUnchangedInputs) {
  // bias is a constant port: after the first edge the condition's inputs
  // never change again, so the compiled engine reuses the cached verdicts.
  build(kMultiInstance);
  ASSERT_EQ(runtime_->add_breakpoint("worker.cc", 3, "bias == 2").size(), 3u);
  auto stops = run_collecting(8);
  EXPECT_EQ(stops.size(), 8u);  // w1 fires every cycle
  const auto stats = runtime_->stats();
  EXPECT_EQ(stats.conditions_evaluated, 3u);   // once per instance
  EXPECT_EQ(stats.dirty_skips, 3u * 7u);       // cached on the other 7 edges
}

TEST_F(RuntimeTest, EvalTimeIsTracked) {
  runtime_->add_breakpoint("demo.cc", 9);
  run_collecting(8);
  EXPECT_GT(runtime_->stats().eval_ns, 0u);
}

TEST_F(RuntimeTest, UnknownSymbolInConditionThrowsAtArmTime) {
  EXPECT_THROW(runtime_->add_breakpoint("demo.cc", 7, "ghost_signal > 1"),
               std::out_of_range);
  // Nothing was armed by the failed insertion.
  EXPECT_EQ(runtime_->inserted_count(), 0u);
  auto stops = run_collecting(4);
  EXPECT_TRUE(stops.empty());
}

TEST_F(RuntimeTest, UnknownSymbolInWatchThrowsAtArmTime) {
  EXPECT_THROW(runtime_->add_watchpoint("ghost_signal + 1"),
               std::out_of_range);
  EXPECT_EQ(runtime_->watchpoint_count(), 0u);
}

TEST_F(RuntimeTest, WatchpointDirtySkipStillFiresOnRealChanges) {
  // cycle_reg changes every cycle; t mirrors it. The watch must fire per
  // cycle in compiled mode exactly as the interpreted engine did.
  const int64_t id = runtime_->add_watchpoint("cycle_reg");
  ASSERT_GT(id, 0);
  size_t watch_stops = 0;
  runtime_->set_stop_handler([&](const rpc::StopEvent& event) {
    watch_stops += event.watch_hits.size();
    return Command::Continue;
  });
  simulator_->run(6);
  EXPECT_GE(watch_stops, 5u);
  EXPECT_GT(runtime_->stats().watchpoints_evaluated, 0u);
}

TEST_F(RuntimeTest, ConditionOverConstantWatchIsSkipped) {
  // A watch over a constant generator input never re-evaluates after its
  // first pass — and never fires.
  build(kMultiInstance);
  simulator_->run(1);  // settle: constant ports read 0 before the first eval
  runtime_->add_watchpoint("bias", "Top.w1");
  size_t watch_stops = 0;
  runtime_->set_stop_handler([&](const rpc::StopEvent& event) {
    watch_stops += event.watch_hits.size();
    return Command::Continue;
  });
  simulator_->run(8);
  EXPECT_EQ(watch_stops, 0u);
  EXPECT_GT(runtime_->stats().dirty_skips, 0u);
}

TEST_F(RuntimeTest, EvaluateUsesCompiledPipeline) {
  // One-off evaluation rides the compiled path by default; results must
  // match the interpreted reference mode bit for bit.
  simulator_->run(4);
  const auto compiled_value =
      runtime_->evaluate("cycle_reg * 2 + 1", std::nullopt);
  ASSERT_TRUE(compiled_value.has_value());

  RuntimeOptions options;
  options.compiled_eval = false;
  build(kDemo, options);
  simulator_->run(4);
  const auto interpreted_value =
      runtime_->evaluate("cycle_reg * 2 + 1", std::nullopt);
  ASSERT_TRUE(interpreted_value.has_value());
  EXPECT_EQ(*compiled_value, *interpreted_value);
}

TEST_F(RuntimeTest, IdenticalConditionsShareOneCompiledProgram) {
  // Three instances arm the same condition text: one program, three slot
  // maps (CSE keyed on the normalized AST). Behavior is unchanged — every
  // instance still evaluates against its own bias/acc bindings.
  build(kMultiInstance);
  ASSERT_EQ(runtime_->add_breakpoint("worker.cc", 3, "acc % 2 == 0").size(),
            3u);
  const auto armed = runtime_->stats();
  // The shared condition lowered exactly once; the enable-free location
  // compiles nothing else for it.
  EXPECT_EQ(armed.programs_compiled, 1u);
  EXPECT_EQ(armed.program_cache_hits, 2u);

  // A different spelling of the same expression is still one program...
  runtime_->add_breakpoint("worker.cc", 4, "acc%2==0");
  EXPECT_EQ(runtime_->stats().programs_compiled, 1u);
  // ...while a genuinely different condition compiles a new one.
  runtime_->remove_breakpoint("worker.cc", 4);
  runtime_->add_breakpoint("worker.cc", 4, "acc % 2 == 1");
  EXPECT_EQ(runtime_->stats().programs_compiled, 2u);

  // Per-instance evaluation still fires independently and correctly.
  std::vector<std::string> hit_instances;
  runtime_->set_stop_handler([&](const rpc::StopEvent& event) {
    for (const auto& frame : event.frames) {
      hit_instances.push_back(frame.instance_name);
    }
    return Command::Continue;
  });
  simulator_->run(4);
  EXPECT_FALSE(hit_instances.empty());
}

TEST_F(RuntimeTest, ProgramCacheShedsUnreferencedPrograms) {
  // Arm/disarm churn on a long-lived server must not grow the program
  // cache monotonically: a removed condition's program is swept on the
  // next plan rebuild, so re-arming it compiles afresh.
  build(kMultiInstance);
  runtime_->add_breakpoint("worker.cc", 3, "acc > 1");
  EXPECT_EQ(runtime_->stats().programs_compiled, 1u);
  runtime_->remove_breakpoint("worker.cc", 3);  // rebuild sweeps the program
  runtime_->add_breakpoint("worker.cc", 3, "acc > 1");
  EXPECT_EQ(runtime_->stats().programs_compiled, 2u);
  // A program still referenced by another live arm survives the sweep.
  runtime_->add_breakpoint("worker.cc", 4, "acc > 1");
  runtime_->remove_breakpoint("worker.cc", 3);
  runtime_->add_breakpoint("worker.cc", 3, "acc > 1");
  EXPECT_EQ(runtime_->stats().programs_compiled, 2u);
}

TEST_F(RuntimeTest, SharedProgramsMatchInterpretedVerdicts) {
  // Differential check: the CSE-shared compiled path and the interpreted
  // reference produce identical stop grids on the multi-instance design.
  auto run_stops = [&](bool compiled_eval) {
    RuntimeOptions options;
    options.compiled_eval = compiled_eval;
    build(kMultiInstance, options);
    runtime_->add_breakpoint("worker.cc", 3, "acc > 4");
    std::vector<std::pair<uint64_t, size_t>> stops;
    runtime_->set_stop_handler([&](const rpc::StopEvent& event) {
      stops.emplace_back(event.time, event.frames.size());
      return Command::Continue;
    });
    simulator_->run(8);
    return stops;
  };
  const auto compiled = run_stops(true);
  const auto interpreted = run_stops(false);
  ASSERT_FALSE(compiled.empty());
  EXPECT_EQ(compiled, interpreted);
}

}  // namespace
}  // namespace hgdb::runtime
