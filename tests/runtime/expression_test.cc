#include "runtime/expression.h"

#include <gtest/gtest.h>

#include <map>

namespace hgdb::runtime {
namespace {

using common::BitVector;

Expression::Resolver env(std::map<std::string, uint64_t> values,
                         uint32_t width = 8) {
  return [values = std::move(values),
          width](const std::string& name) -> std::optional<BitVector> {
    auto it = values.find(name);
    if (it == values.end()) return std::nullopt;
    return BitVector(width, it->second);
  };
}

uint64_t eval(const std::string& text, std::map<std::string, uint64_t> values = {},
              uint32_t width = 8) {
  return Expression::parse(text).evaluate(env(std::move(values), width)).to_uint64();
}

TEST(Expression, Numbers) {
  EXPECT_EQ(eval("42"), 42u);
  EXPECT_EQ(eval("0x2a"), 42u);
  EXPECT_EQ(eval("0"), 0u);
}

TEST(Expression, TypedLiterals) {
  EXPECT_EQ(eval("UInt<8>(200)"), 200u);
  auto value = Expression::parse("UInt<16>(300)").evaluate(env({}));
  EXPECT_EQ(value.width(), 16u);
  EXPECT_EQ(value.to_uint64(), 300u);
}

TEST(Expression, NameResolution) {
  EXPECT_EQ(eval("a + b", {{"a", 3}, {"b", 4}}), 7u);
  EXPECT_THROW(eval("ghost"), std::runtime_error);
}

TEST(Expression, PathNamesMatchVerbatim) {
  // data[0] and io.out.bits are single symbol names, as stored in the
  // symbol table for flattened vectors/bundles.
  EXPECT_EQ(eval("data[0] % 2", {{"data[0]", 5}}), 1u);
  EXPECT_EQ(eval("io.out.bits + 1", {{"io.out.bits", 9}}), 10u);
}

TEST(Expression, NamesCollected) {
  auto expression = Expression::parse("a + b.c * data[3]");
  EXPECT_EQ(expression.names(),
            (std::set<std::string>{"a", "b.c", "data[3]"}));
}

TEST(Expression, ArithmeticPrecedence) {
  EXPECT_EQ(eval("2 + 3 * 4"), 14u);
  EXPECT_EQ(eval("(2 + 3) * 4"), 20u);
  EXPECT_EQ(eval("10 - 2 - 3"), 5u);  // left associative
  EXPECT_EQ(eval("100 / 5 / 2"), 10u);
  EXPECT_EQ(eval("17 % 5"), 2u);
}

TEST(Expression, Comparisons) {
  EXPECT_EQ(eval("3 < 5"), 1u);
  EXPECT_EQ(eval("5 <= 5"), 1u);
  EXPECT_EQ(eval("3 > 5"), 0u);
  EXPECT_EQ(eval("a == 7", {{"a", 7}}), 1u);
  EXPECT_EQ(eval("a != 7", {{"a", 7}}), 0u);
}

TEST(Expression, LogicalOperatorsCoerceToBool) {
  // 4 && 2 is true(1) logically, not 4&2==0.
  EXPECT_EQ(eval("4 && 2"), 1u);
  EXPECT_EQ(eval("4 & 2"), 0u);
  EXPECT_EQ(eval("0 || 8"), 1u);
  EXPECT_EQ(eval("!5"), 0u);
  EXPECT_EQ(eval("!0"), 1u);
  // Bitwise ~ keeps the operand width (a variable's width here).
  EXPECT_EQ(eval("~a", {{"a", 1}}, 8), 0xfeu);
}

TEST(Expression, BitwiseAndShifts) {
  EXPECT_EQ(eval("0xf0 | 0x0f"), 0xffu);
  EXPECT_EQ(eval("0xff ^ 0x0f"), 0xf0u);
  EXPECT_EQ(eval("1 << 4"), 16u);
  EXPECT_EQ(eval("0x80 >> 3"), 16u);
}

TEST(Expression, ThePaperListingCondition) {
  // "data[0] % 2" — the enable condition from the paper's Listing 2.
  auto expression = Expression::parse("data[0] % 2");
  EXPECT_TRUE(expression.evaluate_bool(env({{"data[0]", 3}})));
  EXPECT_FALSE(expression.evaluate_bool(env({{"data[0]", 4}})));
}

TEST(Expression, IrCallSyntaxEnables) {
  // SSA enables arrive in IR printer syntax.
  EXPECT_EQ(eval("and(a, not(b))", {{"a", 1}, {"b", 0}}, 1), 1u);
  EXPECT_EQ(eval("and(a, not(b))", {{"a", 1}, {"b", 1}}, 1), 0u);
  EXPECT_EQ(eval("eq(a, UInt<8>(5))", {{"a", 5}}), 1u);
  EXPECT_EQ(eval("mux(c, a, b)", {{"c", 1}, {"a", 10}, {"b", 20}}), 10u);
  EXPECT_EQ(eval("orr(a)", {{"a", 0}}), 0u);
  EXPECT_EQ(eval("xorr(a)", {{"a", 7}}), 1u);
}

TEST(Expression, IrCallIntParams) {
  EXPECT_EQ(eval("bits(a, 7, 4)", {{"a", 0xab}}), 0xau);
  EXPECT_EQ(eval("shl(a, 2)", {{"a", 3}}), 12u);
  EXPECT_EQ(eval("pad(a, 16)", {{"a", 0xff}}), 0xffu);
  EXPECT_EQ(eval("cat(a, b)", {{"a", 0x1}, {"b", 0x2}}), 0x102u);
}

TEST(Expression, NestedCallsAndInfixMix) {
  EXPECT_EQ(eval("add(a, b) * 2 == 14", {{"a", 3}, {"b", 4}}), 1u);
  EXPECT_EQ(eval("bits(add(a, b), 3, 0)", {{"a", 0xf8}, {"b", 0x10}}), 8u);
}

TEST(Expression, WidthExtensionAcrossOperands) {
  // 8-bit 200 + 8-bit 100 extends to... the max width of operands (8):
  // wraps. With a wider literal, no wrap.
  EXPECT_EQ(eval("a + b", {{"a", 200}, {"b", 100}}), (200u + 100u) & 0xffu);
  EXPECT_EQ(eval("a + UInt<16>(100)", {{"a", 200}}), 300u);
}

TEST(Expression, UnaryMinus) {
  EXPECT_EQ(eval("a + -1", {{"a", 5}}), 4u);
}

TEST(Expression, SyntaxErrors) {
  EXPECT_THROW(Expression::parse(""), std::invalid_argument);
  EXPECT_THROW(Expression::parse("a +"), std::invalid_argument);
  EXPECT_THROW(Expression::parse("(a"), std::invalid_argument);
  EXPECT_THROW(Expression::parse("a b"), std::invalid_argument);
  EXPECT_THROW(Expression::parse("a @ b"), std::invalid_argument);
  EXPECT_THROW(Expression::parse("bits(a, b, c)"), std::invalid_argument);
}

TEST(Expression, TextPreserved) {
  const std::string text = "a + b * 2";
  EXPECT_EQ(Expression::parse(text).text(), text);
}

TEST(Expression, EvaluateBoolOnWideValues) {
  EXPECT_TRUE(Expression::parse("a").evaluate_bool(env({{"a", 0x80}})));
  EXPECT_FALSE(Expression::parse("a").evaluate_bool(env({{"a", 0}})));
}

TEST(Expression, CacheKeyNormalizesSpelling) {
  // Textual variations of one AST share a key (the CSE program cache
  // unifies them)...
  EXPECT_EQ(Expression::parse("a && b").cache_key(),
            Expression::parse("a&&b").cache_key());
  EXPECT_EQ(Expression::parse("x + 10").cache_key(),
            Expression::parse("x + 0xa").cache_key());
  EXPECT_EQ(Expression::parse("and(a, b)").cache_key(),
            Expression::parse("a & b").cache_key());
  // ...while different trees never collide.
  EXPECT_NE(Expression::parse("a && b").cache_key(),
            Expression::parse("a || b").cache_key());
  EXPECT_NE(Expression::parse("a && b").cache_key(),
            Expression::parse("a & b").cache_key());  // logical vs bitwise
  EXPECT_NE(Expression::parse("a").cache_key(),
            Expression::parse("ab").cache_key());
  EXPECT_NE(Expression::parse("x + 10").cache_key(),
            Expression::parse("x + UInt<32>(10)").cache_key());  // widths
  EXPECT_NE(Expression::parse("bits(x, 3, 1)").cache_key(),
            Expression::parse("bits(x, 3, 2)").cache_key());  // params
}

class ExpressionGolden
    : public ::testing::TestWithParam<std::tuple<const char*, uint64_t>> {};

TEST_P(ExpressionGolden, Matches) {
  const auto& [text, expected] = GetParam();
  EXPECT_EQ(eval(text, {{"x", 12}, {"y", 5}}), expected) << text;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ExpressionGolden,
    ::testing::Values(
        std::make_tuple("x + y", 17ull), std::make_tuple("x - y", 7ull),
        std::make_tuple("x * y", 60ull), std::make_tuple("x / y", 2ull),
        std::make_tuple("x % y", 2ull), std::make_tuple("x & y", 4ull),
        std::make_tuple("x | y", 13ull), std::make_tuple("x ^ y", 9ull),
        std::make_tuple("x == 12 && y == 5", 1ull),
        std::make_tuple("x < y || y < x", 1ull),
        std::make_tuple("(x >> 2) + (y << 1)", 13ull),
        std::make_tuple("x % 2 == 0", 1ull),
        std::make_tuple("y % 2 == 0", 0ull)));

}  // namespace
}  // namespace hgdb::runtime
