#include "runtime/thread_pool.h"

#include <gtest/gtest.h>

#include <numeric>

namespace hgdb::runtime {
namespace {

TEST(ThreadPool, SizeCountsCaller) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  ThreadPool solo(1);
  EXPECT_EQ(solo.size(), 1u);
  ThreadPool zero(0);
  EXPECT_EQ(zero.size(), 1u);
}

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr size_t kTasks = 1000;
  std::vector<std::atomic<int>> counts(kTasks);
  pool.parallel_for(kTasks, [&](size_t i) { counts[i]++; });
  for (size_t i = 0; i < kTasks; ++i) EXPECT_EQ(counts[i].load(), 1);
}

TEST(ThreadPool, EmptyJobIsNoOp) {
  ThreadPool pool(4);
  pool.parallel_for(0, [](size_t) { FAIL(); });
}

TEST(ThreadPool, SequentialFallbackForSingleItem) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  pool.parallel_for(1, [&](size_t) { count++; });
  EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPool, ReusableAcrossJobs) {
  ThreadPool pool(3);
  std::atomic<uint64_t> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.parallel_for(100, [&](size_t i) { total += i; });
  }
  EXPECT_EQ(total.load(), 50ull * (99ull * 100ull / 2));
}

TEST(ThreadPool, ActuallyRunsConcurrently) {
  ThreadPool pool(4);
  std::set<std::thread::id> thread_ids;
  std::mutex mutex;
  pool.parallel_for(64, [&](size_t) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    std::lock_guard lock(mutex);
    thread_ids.insert(std::this_thread::get_id());
  });
  EXPECT_GT(thread_ids.size(), 1u);
}

TEST(ThreadPool, TinyBatchesDispatchInline) {
  // Jobs at or below the serial cutoff run on the caller: no worker
  // wake-up latency for single-breakpoint designs.
  ThreadPool pool(4);
  const auto caller = std::this_thread::get_id();
  for (size_t n = 1; n <= pool.serial_cutoff(); ++n) {
    size_t ran = 0;
    pool.parallel_for(n, [&](size_t) {
      EXPECT_EQ(std::this_thread::get_id(), caller);
      ++ran;  // safe: inline dispatch is single-threaded by definition
    });
    EXPECT_EQ(ran, n);
  }
}

TEST(ThreadPool, CustomSerialCutoff) {
  ThreadPool pool(4, 16);
  EXPECT_EQ(pool.serial_cutoff(), 16u);
  const auto caller = std::this_thread::get_id();
  pool.parallel_for(16, [&](size_t) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
  });
}

TEST(ThreadPool, SingleThreadPoolRunsInCaller) {
  ThreadPool pool(1);
  const auto caller = std::this_thread::get_id();
  pool.parallel_for(10, [&](size_t) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
  });
}

}  // namespace
}  // namespace hgdb::runtime
