// hgdb-analyze seeded-violation fixture: user-supplied callables invoked
// while a lock is held — std::function members, parameters, and EventSink
// style observer interfaces.

#include <functional>
#include <string>

#include "common/checked_mutex.h"

namespace fixture_callback {

class EventSink {
 public:
  virtual ~EventSink() = default;
  virtual bool deliver(const std::string& event) = 0;
};

class BadNotifier {
 public:
  void notify(int value) {
    const common::LockGuard lock(listeners_mutex_);
    on_change_(value);  // EXPECT-FINDING: callback-under-lock
  }

  void fan_out(const std::string& event) {
    const common::LockGuard lock(listeners_mutex_);
    sink_->deliver(event);  // EXPECT-FINDING: callback-under-lock
  }

  void run_handler(const std::function<void()>& handler) {
    const common::LockGuard lock(listeners_mutex_);
    handler();  // EXPECT-FINDING: callback-under-lock
  }

 private:
  EventSink* sink_ = nullptr;
  std::function<void(int)> on_change_;
  common::ListenerMutex listeners_mutex_{"fixture_callback::listeners"};
};

}  // namespace fixture_callback
