// hgdb-analyze good-pattern fixture for callback-under-lock: snapshot
// under the lock, invoke outside it; documented delivery brackets and
// callable contracts from model.json are not findings.

#include <functional>
#include <string>
#include <utility>

#include "common/checked_mutex.h"

namespace fixture_callback_good {

class EventSink {
 public:
  virtual ~EventSink() = default;
  virtual bool deliver(const std::string& event) = 0;
};

class GoodNotifier {
 public:
  // the canonical shape: move the callable out under the lock, call it off
  // the lock
  void notify(int value) {
    std::function<void(int)> snapshot;
    {
      const common::LockGuard lock(listeners_mutex_);
      snapshot = on_change_;
    }
    snapshot(value);
  }

  // "session::delivery" is the documented sink bracket (model.json
  // callback_checker.lock_allowlist): this lock exists to keep the sink
  // alive through the call
  void fan_out(const std::string& event) {
    const common::LockGuard lock(delivery_mutex_);
    sink_->deliver(event);
  }

 private:
  EventSink* sink_ = nullptr;
  std::function<void(int)> on_change_;
  common::ListenerMutex listeners_mutex_{"fixture_callback_good::listeners"};
  common::DeliveryMutex delivery_mutex_{"session::delivery"};
};

}  // namespace fixture_callback_good
