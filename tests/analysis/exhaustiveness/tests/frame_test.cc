// exhaustiveness fixture: equivalence-test coverage marker file. Covers
// Stop and Data; the third enumerator has no coverage and must be flagged.

void equivalence_coverage() {
  (void)fixture_frame::FrameKind::Stop;
  (void)fixture_frame::FrameKind::Data;
}
