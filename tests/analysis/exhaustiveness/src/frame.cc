// exhaustiveness fixture: FrameKind with one enumerator the decode switch
// misses, one with no equivalence-test coverage, and one ghost case the
// enum no longer declares.

#include <cstdint>

namespace fixture_frame {

enum class FrameKind : uint8_t {
  Stop = 1,
  Data = 2,
  Extra = 3,
};

struct Decoded {
  FrameKind kind;
};

bool decode(uint8_t raw, Decoded& out) {
  switch (raw) {
    case static_cast<uint8_t>(FrameKind::Stop): {
      out.kind = FrameKind::Stop;
      return true;
    }
    case static_cast<uint8_t>(FrameKind::Data): {
      out.kind = FrameKind::Data;
      return true;
    }
    case static_cast<uint8_t>(FrameKind::Ghost): {
      return true;
    }
  }
  return false;
}

}  // namespace fixture_frame
