// exhaustiveness fixture implementation: one enum value with no
// error_code_name case, one wire name missing from the README table, and
// metric registrations (one documented, one prefix-form, one not).

namespace fixture_proto {

enum class ErrorCode : int {
  None = 0,
  BadInput,
  NotDocumented,
  WithoutCase,
};

const char* error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::None: return "none";
    case ErrorCode::BadInput: return "bad-input";
    case ErrorCode::NotDocumented: return "not-documented";
  }
  return "?";
}

struct Registry {
  void* counter(const char* name) { return nullptr; }
};

void register_metrics(Registry& registry) {
  registry.counter("fixture.documented");
  registry.counter("fixture.command.");
  registry.counter("fixture.undocumented");
}

}  // namespace fixture_proto
