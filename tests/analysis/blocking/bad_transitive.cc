// hgdb-analyze seeded-violation fixture: the blocking primitive hides one
// or two calls away, including behind a virtual dispatch. The checker must
// propagate may-block through the call graph, not just match direct calls.

#include <unistd.h>

#include "common/checked_mutex.h"

namespace fixture_transitive {

class FlushTarget {
 public:
  virtual ~FlushTarget() = default;
  virtual void flush_now() = 0;
};

class DiskTarget : public FlushTarget {
 public:
  void flush_now() override {
    ::fsync(fd_);  // blocks, with no lock of its own: fine here
  }

 private:
  int fd_ = -1;
};

class BadFlusher {
 public:
  void write_helper(const char* data, int len) {
    ::write(fd_, data, len);
  }

  void flush_all(const char* data, int len) {
    const common::LockGuard lock(state_mutex_);
    write_helper(data, len);  // EXPECT-FINDING: blocking-under-lock
  }

  void flush_virtual() {
    const common::LockGuard lock(state_mutex_);
    target_->flush_now();  // EXPECT-FINDING: blocking-under-lock
  }

 private:
  int fd_ = -1;
  FlushTarget* target_ = nullptr;
  common::StateMutex state_mutex_{"fixture_transitive::state"};
};

}  // namespace fixture_transitive
