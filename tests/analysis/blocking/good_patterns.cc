// hgdb-analyze good-pattern fixture: everything here is lock-safe and the
// self-test fails on ANY finding in this file (a parser or checker false
// positive is a regression exactly like a missed seeded violation).

#include <sys/socket.h>

#include <condition_variable>
#include <functional>

#include "common/checked_mutex.h"

namespace fixture_good {

class GoodSender {
 public:
  // non-blocking flag: the kernel returns EAGAIN instead of parking
  void push_nonblocking(const char* data, int len) {
    const common::LockGuard lock(queue_mutex_);
    ::send(fd_, data, len, MSG_DONTWAIT | MSG_NOSIGNAL);
  }

  // the guard's scope ends before the syscall
  void push_after_scope(const char* data, int len) {
    {
      const common::LockGuard lock(queue_mutex_);
      pending_ += 1;
    }
    ::send(fd_, data, len, 0);
  }

  // explicit unlock before the syscall
  void push_after_unlock(const char* data, int len) {
    common::UniqueLock lock(queue_mutex_);
    pending_ += 1;
    lock.unlock();
    ::send(fd_, data, len, 0);
  }

  // a lambda body runs later, under the *caller's* locks, not the locks
  // held where it is written
  void queue_flush(const char* data, int len) {
    const common::LockGuard lock(queue_mutex_);
    deferred_ = [this, data, len] { ::send(fd_, data, len, 0); };
  }

  // cv wait that releases its only held lock is the normal parking idiom
  void wait_released() {
    common::UniqueLock lock(queue_mutex_);
    ready_.wait(lock);
  }

  // an io-serialization lock exists to bracket its syscall (model.json
  // io_lock_allowlist, same label as rpc/tcp.cc)
  void io_bracket(const char* data, int len) {
    const common::LockGuard lock(io_mutex_);
    ::send(fd_, data, len, 0);
  }

 private:
  int fd_ = -1;
  int pending_ = 0;
  std::function<void()> deferred_;
  std::condition_variable_any ready_;
  common::ConnectionsMutex queue_mutex_{"fixture_good::queue"};
  common::RpcMutex io_mutex_{"tcp::channel_send"};
};

}  // namespace fixture_good
