// hgdb-analyze seeded-violation fixture: blocking syscalls issued while a
// CheckedMutex is held. Parsed by the analyzer's self-test, never compiled
// (the directory is excluded from the test glob, like tests/negative_compile).

#include <sys/socket.h>

#include "common/checked_mutex.h"

namespace fixture_direct {

class BadSender {
 public:
  void push(const char* data, int len) {
    const common::LockGuard lock(send_mutex_);
    ::send(fd_, data, len, 0);  // EXPECT-FINDING: blocking-under-lock
  }

  void persist(const char* data, int len) {
    const common::LockGuard lock(send_mutex_);
    ::pwrite(fd_, data, len, 0);  // EXPECT-FINDING: blocking-under-lock
  }

 private:
  int fd_ = -1;
  common::SessionsMutex send_mutex_{"fixture_direct::send"};
};

}  // namespace fixture_direct
