// hgdb-analyze seeded-violation fixture: condition-variable waits that do
// NOT release every held lock, sleeps under a lock, and a blocking call
// reached from an HGDB_REQUIRES-annotated function (lock held at entry).

#include <sys/socket.h>

#include <chrono>
#include <condition_variable>
#include <thread>

#include "common/checked_mutex.h"

namespace fixture_wait {

class BadWaiter {
 public:
  void wait_holding_two() {
    const common::LockGuard outer(table_mutex_);
    common::UniqueLock lock(signal_mutex_);
    // releases signal_mutex_ but keeps table_mutex_ across the park:
    ready_.wait(lock);  // EXPECT-FINDING: blocking-under-lock
  }

  void nap_under_lock() {
    const common::LockGuard lock(table_mutex_);
    // EXPECT-FINDING: blocking-under-lock
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  void drain_locked(int fd) HGDB_REQUIRES(table_mutex_) {
    char buffer[64];
    // EXPECT-FINDING: blocking-under-lock
    ::recv(fd, buffer, sizeof(buffer), 0);
  }

 private:
  std::condition_variable_any ready_;
  common::ClientsMutex table_mutex_{"fixture_wait::table"};
  common::RpcMutex signal_mutex_{"fixture_wait::signal"};
};

}  // namespace fixture_wait
