// hgdb-analyze seeded-violation fixture: suppression syntax. A suppression
// with a justification waives the finding (and the self-test asserts it is
// reported as suppressed, not dropped); a suppression without one is
// itself a finding.

#include <sys/socket.h>

#include "common/checked_mutex.h"

namespace fixture_suppressed {

class SuppressedSender {
 public:
  void push(const char* data, int len) {
    const common::LockGuard lock(mutex_);
    // hgdb-analyze: suppress(blocking-under-lock) -- fixture: documented waiver
    ::send(fd_, data, len, 0);  // EXPECT-SUPPRESSED: blocking-under-lock
  }

  void push_bad_waiver(const char* data, int len) {
    const common::LockGuard lock(mutex_);
    // EXPECT-FINDING: suppression-syntax
    // hgdb-analyze: suppress(blocking-under-lock)
    ::send(fd_, data, len, 0);  // EXPECT-FINDING: blocking-under-lock
  }

 private:
  int fd_ = -1;
  common::PoolMutex mutex_{"fixture_suppressed::pool"};
};

}  // namespace fixture_suppressed
