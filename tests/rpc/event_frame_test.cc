// Binary event framing: frame assembly, binary <-> JSON equivalence for
// every event kind, and decoder robustness against malformed input.
#include "rpc/event_frame.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/json.h"
#include "rpc/protocol.h"

namespace hgdb::rpc {
namespace {

using common::Json;

StopEvent sample_stop() {
  StopEvent stop;
  stop.time = 123456789;
  stop.condition_routed = true;  // local routing flag: never on the wire
  Frame frame;
  frame.breakpoint_id = 42;
  frame.instance_id = 7;
  frame.instance_name = "top.dut";
  frame.filename = "design.py";
  frame.line = 91;
  frame.column = 5;
  frame.locals = Json::parse(R"({"a": "1", "b": {"c": "2"}})");
  frame.generator = Json::parse(R"({"state": "IDLE"})");
  frame.matched_conditions = {"a == 1", "b.c > 0"};
  stop.frames.push_back(frame);
  Frame second;
  second.breakpoint_id = 43;
  second.instance_id = 8;
  second.instance_name = "top.dut2";
  second.filename = "design.py";
  second.line = 92;
  second.column = 0;
  second.locals = Json::object();
  second.generator = Json::object();
  stop.frames.push_back(second);
  WatchHit hit;
  hit.id = 3;
  hit.expression = "counter + 1";
  hit.old_value = "4";
  hit.new_value = "5";
  stop.watch_hits.push_back(hit);
  return stop;
}

std::string wire_message(const OutboundFrame& frame) {
  // What the peer's Channel::receive() hands back after stripping the
  // 4-byte length prefix.
  return frame.channel_message();
}

// -- frame layout --------------------------------------------------------------

TEST(EventFrameTest, FrameCarriesMagicVersionAndKind) {
  auto frame =
      make_event_frame(FrameKind::Lifecycle, encode_lifecycle_body("shutdown"));
  const std::string message = wire_message(frame);
  ASSERT_GE(message.size(), 4u);
  EXPECT_EQ(static_cast<uint8_t>(message[0]), kEventFrameMagic);
  EXPECT_EQ(static_cast<uint8_t>(message[1]), kEventFrameVersion);
  EXPECT_EQ(static_cast<uint8_t>(message[2]),
            static_cast<uint8_t>(FrameKind::Lifecycle));
  EXPECT_EQ(static_cast<uint8_t>(message[3]), 0u);  // flags reserved
  EXPECT_TRUE(is_event_frame(message));
}

TEST(EventFrameTest, LengthPrefixMatchesSocketFraming) {
  auto frame = make_event_frame(FrameKind::Stop, encode_stop_body(sample_stop()));
  const std::string message = wire_message(frame);
  // The inline header holds the big-endian length of everything after it.
  const uint32_t length = (static_cast<uint32_t>(frame.header[0]) << 24) |
                          (static_cast<uint32_t>(frame.header[1]) << 16) |
                          (static_cast<uint32_t>(frame.header[2]) << 8) |
                          static_cast<uint32_t>(frame.header[3]);
  EXPECT_EQ(length, message.size());
  EXPECT_EQ(frame.size(), message.size() + 4);
}

TEST(EventFrameTest, JsonTextCanNeverLookLikeAFrame) {
  EXPECT_FALSE(is_event_frame(R"({"type": "event"})"));
  EXPECT_FALSE(is_event_frame(""));
  EXPECT_FALSE(is_event_frame("[1, 2]"));
}

TEST(EventFrameTest, TextFrameWrapsJsonVerbatim) {
  const std::string text = R"({"type": "response", "status": "success"})";
  auto frame = make_text_frame(text);
  EXPECT_EQ(wire_message(frame), text);
  EXPECT_EQ(frame.header_size, 4u);  // length-only header
  EXPECT_FALSE(is_event_frame(wire_message(frame)));
}

// -- binary <-> JSON equivalence ----------------------------------------------

TEST(EventFrameTest, StopRoundTripMatchesJsonRendering) {
  const StopEvent original = sample_stop();
  auto frame = make_event_frame(FrameKind::Stop, encode_stop_body(original));

  const auto decoded = decode_event_frame(wire_message(frame));
  ASSERT_EQ(decoded.kind, FrameKind::Stop);
  // The JSON path every legacy client takes, decoded back to the struct.
  const StopEvent via_json = stop_event_fields(stop_event_payload(original));

  ASSERT_EQ(decoded.stop.frames.size(), via_json.frames.size());
  EXPECT_EQ(decoded.stop.time, via_json.time);
  for (size_t i = 0; i < via_json.frames.size(); ++i) {
    const auto& binary = decoded.stop.frames[i];
    const auto& json = via_json.frames[i];
    EXPECT_EQ(binary.breakpoint_id, json.breakpoint_id) << "frame " << i;
    EXPECT_EQ(binary.instance_id, json.instance_id) << "frame " << i;
    EXPECT_EQ(binary.instance_name, json.instance_name) << "frame " << i;
    EXPECT_EQ(binary.filename, json.filename) << "frame " << i;
    EXPECT_EQ(binary.line, json.line) << "frame " << i;
    EXPECT_EQ(binary.column, json.column) << "frame " << i;
    EXPECT_EQ(binary.locals.dump(), json.locals.dump()) << "frame " << i;
    EXPECT_EQ(binary.generator.dump(), json.generator.dump()) << "frame " << i;
    EXPECT_EQ(binary.matched_conditions, json.matched_conditions)
        << "frame " << i;
  }
  ASSERT_EQ(decoded.stop.watch_hits.size(), via_json.watch_hits.size());
  for (size_t i = 0; i < via_json.watch_hits.size(); ++i) {
    EXPECT_EQ(decoded.stop.watch_hits[i].id, via_json.watch_hits[i].id);
    EXPECT_EQ(decoded.stop.watch_hits[i].expression,
              via_json.watch_hits[i].expression);
    EXPECT_EQ(decoded.stop.watch_hits[i].old_value,
              via_json.watch_hits[i].old_value);
    EXPECT_EQ(decoded.stop.watch_hits[i].new_value,
              via_json.watch_hits[i].new_value);
  }
}

TEST(EventFrameTest, ValueChangeRoundTripKeepsPerClientSubscription) {
  struct Change {
    std::string signal;
    std::string value;
    uint32_t width = 0;
  };
  const std::vector<Change> changes = {{"top.a", "15", 8},
                                       {"top.b", "xz01", 4}};
  // One shared body, two subscribers with different subscription ids —
  // the id lives in the per-client prefix, not the body.
  auto body = encode_value_change_body(987654321, changes);
  auto frame_a = make_value_change_frame(11, body);
  auto frame_b = make_value_change_frame(22, body);
  EXPECT_EQ(&frame_a.body.bytes(), &frame_b.body.bytes());  // zero-copy share

  for (const auto& [frame, subscription] :
       {std::pair{frame_a, uint64_t{11}}, std::pair{frame_b, uint64_t{22}}}) {
    const auto decoded = decode_event_frame(wire_message(frame));
    ASSERT_EQ(decoded.kind, FrameKind::ValueChange);
    EXPECT_EQ(decoded.value_change.subscription, subscription);
    EXPECT_EQ(decoded.value_change.time, 987654321u);
    ASSERT_EQ(decoded.value_change.changes.size(), changes.size());
    for (size_t i = 0; i < changes.size(); ++i) {
      EXPECT_EQ(decoded.value_change.changes[i].signal, changes[i].signal);
      EXPECT_EQ(decoded.value_change.changes[i].value, changes[i].value);
      EXPECT_EQ(decoded.value_change.changes[i].width, changes[i].width);
    }
  }
}

TEST(EventFrameTest, LifecycleRoundTrip) {
  auto frame =
      make_event_frame(FrameKind::Lifecycle, encode_lifecycle_body("shutdown"));
  const auto decoded = decode_event_frame(wire_message(frame));
  ASSERT_EQ(decoded.kind, FrameKind::Lifecycle);
  EXPECT_EQ(decoded.lifecycle, "shutdown");
}

TEST(EventFrameTest, BreakpointChangeRoundTrip) {
  BreakpointChangeEvent event;
  event.action = "armed";
  event.filename = "svc.cc";
  event.line = 7;
  event.condition = "cycle_reg % 2 == 0";
  event.client = 3;
  auto frame = make_event_frame(FrameKind::BreakpointChanged,
                                encode_breakpoint_change_body(event));
  const auto decoded = decode_event_frame(wire_message(frame));
  ASSERT_EQ(decoded.kind, FrameKind::BreakpointChanged);
  EXPECT_EQ(decoded.breakpoint_change.action, event.action);
  EXPECT_EQ(decoded.breakpoint_change.filename, event.filename);
  EXPECT_EQ(decoded.breakpoint_change.line, event.line);
  EXPECT_EQ(decoded.breakpoint_change.condition, event.condition);
  EXPECT_EQ(decoded.breakpoint_change.client, event.client);
}

// -- decoder robustness --------------------------------------------------------

TEST(EventFrameTest, TruncatedFrameThrows) {
  auto frame = make_event_frame(FrameKind::Stop, encode_stop_body(sample_stop()));
  const std::string message = wire_message(frame);
  for (const size_t keep : {size_t{0}, size_t{3}, size_t{5}, message.size() / 2,
                            message.size() - 1}) {
    EXPECT_THROW(decode_event_frame(message.substr(0, keep)),
                 std::runtime_error)
        << "kept " << keep << " bytes";
  }
}

TEST(EventFrameTest, TrailingBytesThrow) {
  auto frame =
      make_event_frame(FrameKind::Lifecycle, encode_lifecycle_body("pause"));
  EXPECT_THROW(decode_event_frame(wire_message(frame) + "x"),
               std::runtime_error);
}

TEST(EventFrameTest, WrongMagicOrVersionOrKindThrows) {
  auto frame =
      make_event_frame(FrameKind::Lifecycle, encode_lifecycle_body("pause"));
  std::string message = wire_message(frame);

  std::string bad_magic = message;
  bad_magic[0] = '{';
  EXPECT_THROW(decode_event_frame(bad_magic), std::runtime_error);

  std::string bad_version = message;
  bad_version[1] = 99;
  EXPECT_THROW(decode_event_frame(bad_version), std::runtime_error);

  std::string bad_kind = message;
  bad_kind[2] = 77;
  EXPECT_THROW(decode_event_frame(bad_kind), std::runtime_error);
}

}  // namespace
}  // namespace hgdb::rpc
