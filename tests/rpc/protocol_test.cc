#include "rpc/protocol.h"

#include <gtest/gtest.h>

namespace hgdb::rpc {
namespace {

TEST(Protocol, BreakpointRequestRoundTrip) {
  Request request;
  request.kind = Request::Kind::Breakpoint;
  request.token = 7;
  request.breakpoint.action = BreakpointRequest::Action::Add;
  request.breakpoint.filename = "gen.cc";
  request.breakpoint.line = 42;
  request.breakpoint.condition = "i == 3 && sum > 10";
  const Request parsed = parse_request(serialize_request(request));
  EXPECT_EQ(parsed.kind, Request::Kind::Breakpoint);
  EXPECT_EQ(parsed.token, 7);
  EXPECT_EQ(parsed.breakpoint.filename, "gen.cc");
  EXPECT_EQ(parsed.breakpoint.line, 42u);
  EXPECT_EQ(parsed.breakpoint.condition, "i == 3 && sum > 10");
}

TEST(Protocol, RemoveActionPreserved) {
  Request request;
  request.kind = Request::Kind::Breakpoint;
  request.breakpoint.action = BreakpointRequest::Action::Remove;
  request.breakpoint.filename = "x.cc";
  const Request parsed = parse_request(serialize_request(request));
  EXPECT_EQ(parsed.breakpoint.action, BreakpointRequest::Action::Remove);
}

TEST(Protocol, AllCommandsRoundTrip) {
  using Command = CommandRequest::Command;
  for (Command command :
       {Command::Continue, Command::Pause, Command::StepOver, Command::StepBack,
        Command::ReverseContinue, Command::Jump, Command::Detach}) {
    Request request;
    request.kind = Request::Kind::Command;
    request.command.command = command;
    request.command.time = 123;
    const Request parsed = parse_request(serialize_request(request));
    EXPECT_EQ(parsed.command.command, command);
    EXPECT_EQ(parsed.command.time, 123u);
  }
}

TEST(Protocol, EvaluationRequestScopes) {
  Request request;
  request.kind = Request::Kind::Evaluation;
  request.evaluation.expression = "sum + 1";
  request.evaluation.breakpoint_id = 5;
  const Request parsed = parse_request(serialize_request(request));
  EXPECT_EQ(parsed.evaluation.expression, "sum + 1");
  ASSERT_TRUE(parsed.evaluation.breakpoint_id.has_value());
  EXPECT_EQ(*parsed.evaluation.breakpoint_id, 5);

  Request by_instance;
  by_instance.kind = Request::Kind::Evaluation;
  by_instance.evaluation.expression = "acc";
  by_instance.evaluation.instance_name = "Top.child";
  const Request parsed2 = parse_request(serialize_request(by_instance));
  EXPECT_FALSE(parsed2.evaluation.breakpoint_id.has_value());
  EXPECT_EQ(parsed2.evaluation.instance_name, "Top.child");
}

TEST(Protocol, UnknownTypeRejected) {
  EXPECT_THROW(parse_request(R"({"type":"bogus","token":1})"),
               std::runtime_error);
  EXPECT_THROW(parse_request("not json"), std::runtime_error);
}

TEST(Protocol, MalformedRequestsAlwaysThrowRuntimeError) {
  // Hardening guarantee: missing fields, wrong types, truncated or
  // non-object JSON — every failure mode is a std::runtime_error (never
  // another exception type escaping into the service thread).
  for (const char* text : {
           "",
           "{",
           "[1,2]",
           "\"str\"",
           "null",
           R"({"token":1})",                                // no type
           R"({"type":5,"token":1})",                       // non-string type
           R"({"type":"breakpoint","token":1})",            // no filename
           R"({"type":"breakpoint","filename":3,"token":1})",
           R"({"type":"breakpoint","filename":"a","line":"x","token":1})",
           R"({"type":"breakpoint","filename":"a","action":"frobnicate"})",
           R"({"type":"bp-location","token":1})",
           R"({"type":"command","token":1})",               // no command
           R"({"type":"command","command":"warp","token":1})",
           R"({"type":"command","command":7,"token":1})",
           R"({"type":"evaluation","token":1})",            // no expression
           R"({"type":"evaluation","expression":1,"token":1})",
           R"({"type":"evaluation","expression":"x","breakpoint_id":"y"})",
           R"({"type":"evaluation","expression":"x","instance_name":9})",
           R"({"token":"str","type":"debugger-info"})",     // bad token type
       }) {
    try {
      parse_request(text);
      FAIL() << "expected std::runtime_error for: " << text;
    } catch (const std::runtime_error&) {
      // expected
    } catch (...) {
      FAIL() << "wrong exception type for: " << text;
    }
  }
}

TEST(Protocol, TruncatedRequestPrefixesNeverCrash) {
  Request request;
  request.kind = Request::Kind::Breakpoint;
  request.token = 3;
  request.breakpoint.filename = "gen.cc";
  request.breakpoint.line = 12;
  request.breakpoint.condition = "sum > 4";
  const std::string full = serialize_request(request);
  for (size_t length = 0; length < full.size(); ++length) {
    try {
      parse_request(full.substr(0, length));
      // Some prefixes may accidentally parse; only the exception type
      // matters.
    } catch (const std::runtime_error&) {
    } catch (...) {
      FAIL() << "wrong exception type at prefix length " << length;
    }
  }
}

TEST(Protocol, MalformedServerMessagesAlwaysThrowRuntimeError) {
  for (const char* text : {
           "",
           "not json",
           "[]",
           R"({"token":1})",                           // no type
           R"({"type":"mystery","token":1})",          // unknown type
           R"({"type":"generic","token":1})",          // no status
           R"({"type":"generic","token":1,"status":"perhaps"})",
           R"({"type":"generic","token":"x","status":"success"})",
           R"({"type":"stop","time":"later"})",
           R"({"type":"stop","time":1,"frames":5})",
           R"({"type":"stop","time":1,"frames":[42]})",
           R"({"type":"stop","time":1,"frames":[{"locals":[]}]})",
           R"({"type":"stop","time":1,"watches":{}})",
       }) {
    try {
      parse_server_message(text);
      FAIL() << "expected std::runtime_error for: " << text;
    } catch (const std::runtime_error&) {
    } catch (...) {
      FAIL() << "wrong exception type for: " << text;
    }
  }
}

TEST(Protocol, OptionalFieldsStayOptional) {
  // Absent optional fields default; only *present but ill-typed* ones
  // throw. An external v1 client may omit column/condition/line.
  const auto request =
      parse_request(R"({"type":"breakpoint","filename":"a.cc","token":2})");
  EXPECT_EQ(request.breakpoint.line, 0u);
  EXPECT_EQ(request.breakpoint.column, 0u);
  EXPECT_TRUE(request.breakpoint.condition.empty());
  EXPECT_EQ(request.breakpoint.action, BreakpointRequest::Action::Add);
}

TEST(Protocol, GenericResponseRoundTrip) {
  GenericResponse response;
  response.token = 9;
  response.success = false;
  response.reason = "no breakpoint at foo.cc:1";
  const auto message = parse_server_message(serialize_response(response));
  EXPECT_EQ(message.kind, ServerMessage::Kind::Generic);
  EXPECT_EQ(message.generic.token, 9);
  EXPECT_FALSE(message.generic.success);
  EXPECT_EQ(message.generic.reason, "no breakpoint at foo.cc:1");
}

TEST(Protocol, StopEventRoundTripWithFrames) {
  StopEvent event;
  event.time = 1024;
  Frame frame;
  frame.breakpoint_id = 3;
  frame.instance_id = 2;
  frame.instance_name = "Top.child";
  frame.filename = "gen.cc";
  frame.line = 21;
  insert_nested(frame.locals, "sum", common::Json("42"));
  insert_nested(frame.locals, "i", common::Json("1"));
  insert_nested(frame.generator, "io.out.bits", common::Json("7"));
  event.frames.push_back(frame);

  const auto message = parse_server_message(serialize_stop_event(event));
  EXPECT_EQ(message.kind, ServerMessage::Kind::Stop);
  EXPECT_EQ(message.stop.time, 1024u);
  ASSERT_EQ(message.stop.frames.size(), 1u);
  const Frame& parsed = message.stop.frames[0];
  EXPECT_EQ(parsed.instance_name, "Top.child");
  EXPECT_EQ(parsed.locals.get_string("sum"), "42");
  // Bundle re-aggregation survives the wire format.
  EXPECT_EQ(parsed.generator.get("io")->get().get("out")->get().get_string("bits"),
            "7");
}

TEST(Protocol, InsertNestedBuildsBundleTree) {
  common::Json object = common::Json::object();
  insert_nested(object, "io.a.b", common::Json("1"));
  insert_nested(object, "io.a.c", common::Json("2"));
  insert_nested(object, "flat", common::Json("3"));
  EXPECT_EQ(object.dump(), R"({"flat":"3","io":{"a":{"b":"1","c":"2"}}})");
}

TEST(Protocol, InsertNestedOverwritesLeaf) {
  common::Json object = common::Json::object();
  insert_nested(object, "x.y", common::Json("1"));
  insert_nested(object, "x.y", common::Json("2"));
  EXPECT_EQ(object.get("x")->get().get_string("y"), "2");
}

TEST(Protocol, EmptyStopEventAllowed) {
  // Reverse execution bottoming out sends a frame-less stop.
  StopEvent event;
  event.time = 3;
  const auto message = parse_server_message(serialize_stop_event(event));
  EXPECT_TRUE(message.stop.frames.empty());
}

}  // namespace
}  // namespace hgdb::rpc
