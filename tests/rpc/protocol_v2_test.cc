#include "rpc/protocol_v2.h"

#include <gtest/gtest.h>

namespace hgdb::rpc {
namespace {

TEST(ProtocolV2, RequestRoundTrip) {
  RequestV2 request;
  request.command = "breakpoint-add";
  request.token = 42;
  request.payload["filename"] = common::Json("gen.cc");
  request.payload["line"] = common::Json(int64_t{7});
  const auto decoded = parse_request_v2(serialize_request_v2(request));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.request.command, "breakpoint-add");
  EXPECT_EQ(decoded.request.token, 42);
  EXPECT_EQ(decoded.request.payload.get_string("filename"), "gen.cc");
  EXPECT_EQ(decoded.request.payload.get_int("line"), 7);
}

TEST(ProtocolV2, MalformedEnvelopesDecodeToTypedErrorsWithoutThrowing) {
  // None of these may throw; all must produce malformed-request.
  for (const char* text : {
           "not json at all",
           "[1,2,3]",
           "42",
           R"({"command":"x","token":1})",              // no version
           R"({"version":1,"command":"x","token":1})",  // v1 version
           R"({"version":2,"token":1})",                // no command
           R"({"version":2,"command":"","token":1})",   // empty command
           R"({"version":2,"command":5,"token":1})",    // non-string command
           R"({"version":2,"command":"x","token":"a"})",
           R"({"version":2,"command":"x","token":1,"payload":[]})",
       }) {
    const auto decoded = parse_request_v2(text);
    EXPECT_FALSE(decoded.ok()) << text;
    EXPECT_EQ(decoded.error, ErrorCode::MalformedRequest) << text;
    EXPECT_FALSE(decoded.reason.empty()) << text;
  }
}

TEST(ProtocolV2, TokenSurvivesBrokenEnvelope) {
  // Error responses must correlate back to the request when possible.
  const auto decoded = parse_request_v2(R"({"version":2,"token":9})");
  EXPECT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.request.token, 9);
}

TEST(ProtocolV2, ResponseRoundTrip) {
  ResponseV2 response;
  response.command = "evaluate";
  response.token = 17;
  response.payload["result"] = common::Json("255");
  const auto message = parse_server_message_v2(serialize_response_v2(response));
  EXPECT_EQ(message.kind, ServerMessageV2::Kind::Response);
  EXPECT_TRUE(message.response.ok());
  EXPECT_EQ(message.response.command, "evaluate");
  EXPECT_EQ(message.response.token, 17);
  EXPECT_EQ(message.response.payload.get_string("result"), "255");
}

TEST(ProtocolV2, ErrorResponseCarriesTypedCode) {
  ResponseV2 response;
  response.command = "jump";
  response.token = 3;
  response.fail(ErrorCode::UnsupportedCapability, "no time travel");
  const auto message = parse_server_message_v2(serialize_response_v2(response));
  EXPECT_FALSE(message.response.ok());
  EXPECT_EQ(message.response.error, ErrorCode::UnsupportedCapability);
  EXPECT_EQ(message.response.reason, "no time travel");
}

TEST(ProtocolV2, EveryErrorCodeHasAStableWireName) {
  for (auto code : {ErrorCode::None, ErrorCode::MalformedRequest,
                    ErrorCode::UnknownCommand, ErrorCode::InvalidPayload,
                    ErrorCode::UnsupportedCapability, ErrorCode::InvalidState,
                    ErrorCode::NoSuchLocation, ErrorCode::NoSuchEntity,
                    ErrorCode::EvaluationFailed, ErrorCode::InternalError}) {
    EXPECT_EQ(error_code_from_name(error_code_name(code)), code);
  }
  EXPECT_EQ(error_code_from_name("totally-unknown"), ErrorCode::InternalError);
}

TEST(ProtocolV2, EventRoundTripWithStopPayload) {
  StopEvent stop;
  stop.time = 64;
  Frame frame;
  frame.breakpoint_id = 2;
  frame.instance_name = "Top.child";
  frame.filename = "gen.cc";
  frame.line = 9;
  insert_nested(frame.locals, "io.a", common::Json("5"));
  stop.frames.push_back(frame);
  stop.watch_hits.push_back(WatchHit{4, "sum", "10", "11"});

  EventV2 event{"stop", stop_event_payload(stop)};
  const auto message = parse_server_message_v2(serialize_event_v2(event));
  EXPECT_EQ(message.kind, ServerMessageV2::Kind::Event);
  EXPECT_EQ(message.event.event, "stop");
  const StopEvent parsed = stop_event_fields(message.event.payload);
  EXPECT_EQ(parsed.time, 64u);
  ASSERT_EQ(parsed.frames.size(), 1u);
  EXPECT_EQ(parsed.frames[0].instance_name, "Top.child");
  EXPECT_EQ(
      parsed.frames[0].locals.get("io")->get().get_string("a"), "5");
  ASSERT_EQ(parsed.watch_hits.size(), 1u);
  EXPECT_EQ(parsed.watch_hits[0].id, 4);
  EXPECT_EQ(parsed.watch_hits[0].old_value, "10");
  EXPECT_EQ(parsed.watch_hits[0].new_value, "11");
}

TEST(ProtocolV2, WatchHitsAppearInV1StopFormatOnlyWhenPresent) {
  StopEvent stop;
  stop.time = 8;
  // No watches: the v1 wire format must not mention them at all.
  EXPECT_EQ(serialize_stop_event(stop).find("watches"), std::string::npos);

  stop.watch_hits.push_back(WatchHit{1, "x", "0", "1"});
  const auto message = parse_server_message(serialize_stop_event(stop));
  ASSERT_EQ(message.stop.watch_hits.size(), 1u);
  EXPECT_EQ(message.stop.watch_hits[0].expression, "x");
}

TEST(ProtocolV2, CapabilitiesRoundTrip) {
  Capabilities caps;
  caps.backend = "replay";
  caps.time_travel = true;
  caps.set_value = false;
  const auto parsed = Capabilities::from_json(caps.to_json());
  EXPECT_EQ(parsed.backend, "replay");
  EXPECT_TRUE(parsed.time_travel);
  EXPECT_FALSE(parsed.set_value);
  EXPECT_TRUE(parsed.multi_client);
  EXPECT_EQ(parsed.protocol_version, kProtocolV2);
}

TEST(ProtocolV2, V1RequestsTranslateOntoV2Commands) {
  Request v1;
  v1.kind = Request::Kind::Breakpoint;
  v1.token = 5;
  v1.breakpoint.action = BreakpointRequest::Action::Add;
  v1.breakpoint.filename = "a.cc";
  v1.breakpoint.line = 3;
  v1.breakpoint.condition = "x == 1";
  auto v2 = v2_from_v1(v1);
  EXPECT_EQ(v2.command, "breakpoint-add");
  EXPECT_EQ(v2.token, 5);
  EXPECT_EQ(v2.payload.get_string("filename"), "a.cc");
  EXPECT_EQ(v2.payload.get_string("condition"), "x == 1");

  v1.breakpoint.action = BreakpointRequest::Action::Remove;
  EXPECT_EQ(v2_from_v1(v1).command, "breakpoint-remove");

  Request command;
  command.kind = Request::Kind::Command;
  command.command.command = CommandRequest::Command::Jump;
  command.command.time = 99;
  v2 = v2_from_v1(command);
  EXPECT_EQ(v2.command, "jump");
  EXPECT_EQ(v2.payload.get_int("time"), 99);

  Request info;
  info.kind = Request::Kind::DebuggerInfo;
  EXPECT_EQ(v2_from_v1(info).command, "info");
}

TEST(ProtocolV2, V1ResponseRenderingMatchesLegacyWireFormat) {
  ResponseV2 response;
  response.command = "breakpoint-add";
  response.token = 7;
  response.fail(ErrorCode::NoSuchLocation, "no breakpoint at a.cc:9");
  const auto message = parse_server_message(serialize_response_as_v1(response));
  EXPECT_EQ(message.kind, ServerMessage::Kind::Generic);
  EXPECT_EQ(message.generic.token, 7);
  EXPECT_FALSE(message.generic.success);
  EXPECT_EQ(message.generic.reason, "no breakpoint at a.cc:9");
}

TEST(ProtocolV2, IsV2EnvelopeSniffsVersions) {
  EXPECT_TRUE(is_v2_envelope(common::Json::parse(
      R"({"version":2,"command":"x"})")));
  EXPECT_FALSE(is_v2_envelope(common::Json::parse(R"({"type":"command"})")));
  EXPECT_FALSE(is_v2_envelope(common::Json::parse(R"({"version":1})")));
  EXPECT_FALSE(is_v2_envelope(common::Json::parse("[]")));
}

TEST(ProtocolV2, ServerMessageParserRejectsGarbage) {
  for (const char* text : {
           "nope",
           "{}",
           R"({"version":2})",
           R"({"version":2,"type":"bogus"})",
           R"({"version":2,"type":"response","status":"maybe"})",
           R"({"version":2,"type":"event"})",
       }) {
    EXPECT_THROW(parse_server_message_v2(text), std::runtime_error) << text;
  }
}

}  // namespace
}  // namespace hgdb::rpc
