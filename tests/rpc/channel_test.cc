#include "rpc/channel.h"

#include <gtest/gtest.h>

#include <thread>

#include "rpc/tcp.h"

namespace hgdb::rpc {
namespace {

TEST(ChannelPair, MessagesCrossInBothDirections) {
  auto [a, b] = make_channel_pair();
  a->send("ping");
  EXPECT_EQ(b->receive(std::chrono::milliseconds(100)), "ping");
  b->send("pong");
  EXPECT_EQ(a->receive(std::chrono::milliseconds(100)), "pong");
}

TEST(ChannelPair, OrderingPreserved) {
  auto [a, b] = make_channel_pair();
  for (int i = 0; i < 10; ++i) a->send(std::to_string(i));
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(b->receive(std::chrono::milliseconds(100)), std::to_string(i));
  }
}

TEST(ChannelPair, ReceiveTimesOut) {
  auto [a, b] = make_channel_pair();
  EXPECT_EQ(b->receive(std::chrono::milliseconds(10)), std::nullopt);
}

TEST(ChannelPair, CloseWakesBlockedReceive) {
  auto [a, b] = make_channel_pair();
  std::thread closer([&a = a] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    a->close();
  });
  EXPECT_EQ(b->receive(), std::nullopt);
  closer.join();
}

TEST(ChannelPair, SendToClosedThrows) {
  auto [a, b] = make_channel_pair();
  b->close();
  EXPECT_THROW(a->send("x"), std::runtime_error);
}

TEST(ChannelPair, CrossThreadStress) {
  auto [a, b] = make_channel_pair();
  constexpr int kMessages = 2000;
  std::thread producer([&a = a] {
    for (int i = 0; i < kMessages; ++i) a->send(std::to_string(i));
  });
  for (int i = 0; i < kMessages; ++i) {
    auto message = b->receive(std::chrono::milliseconds(2000));
    ASSERT_TRUE(message.has_value());
    EXPECT_EQ(*message, std::to_string(i));
  }
  producer.join();
}

TEST(Tcp, RoundTripOverLoopback) {
  TcpServer server;
  ASSERT_GT(server.port(), 0);
  std::unique_ptr<Channel> server_side;
  std::thread acceptor([&] { server_side = server.accept(); });
  auto client = tcp_connect("127.0.0.1", server.port());
  acceptor.join();
  ASSERT_NE(server_side, nullptr);

  client->send("hello over tcp");
  EXPECT_EQ(server_side->receive(std::chrono::milliseconds(1000)),
            "hello over tcp");
  server_side->send("reply");
  EXPECT_EQ(client->receive(std::chrono::milliseconds(1000)), "reply");
}

TEST(Tcp, LargeMessageFraming) {
  TcpServer server;
  std::unique_ptr<Channel> server_side;
  std::thread acceptor([&] { server_side = server.accept(); });
  auto client = tcp_connect("127.0.0.1", server.port());
  acceptor.join();

  std::string large(1 << 20, 'x');
  large += "END";
  client->send(large);
  auto received = server_side->receive(std::chrono::milliseconds(5000));
  ASSERT_TRUE(received.has_value());
  EXPECT_EQ(received->size(), large.size());
  EXPECT_EQ(*received, large);
}

TEST(Tcp, PeerCloseEndsReceive) {
  TcpServer server;
  std::unique_ptr<Channel> server_side;
  std::thread acceptor([&] { server_side = server.accept(); });
  auto client = tcp_connect("127.0.0.1", server.port());
  acceptor.join();
  client->close();
  EXPECT_EQ(server_side->receive(std::chrono::milliseconds(1000)), std::nullopt);
}

TEST(Tcp, ConnectToClosedPortThrows) {
  TcpServer server;
  const uint16_t port = server.port();
  server.close();
  EXPECT_THROW(tcp_connect("127.0.0.1", port), std::runtime_error);
}

}  // namespace
}  // namespace hgdb::rpc
