#include "sim/simulator.h"

#include <gtest/gtest.h>

#include "frontend/compile.h"
#include "ir/parser.h"

namespace hgdb::sim {
namespace {

frontend::CompileResult compile_text(const char* text) {
  return frontend::compile(ir::parse_circuit(text));
}

constexpr const char* kCounter = R"(circuit Counter
  module Counter
    input clock : Clock
    input enable : UInt<1>
    output out : UInt<8>
    reg count : UInt<8> clock clock
    wire next : UInt<8>
    connect next = count
    when enable
      connect next = add(count, UInt<8>(1))
    end
    connect count = next
    connect out = count
  end
end
)";

TEST(Simulator, RegistersInitializeToZero) {
  auto compiled = compile_text(kCounter);
  Simulator simulator(compiled.netlist);
  simulator.eval();
  EXPECT_EQ(simulator.value("Counter.out").to_uint64(), 0u);
}

TEST(Simulator, CounterCountsWhenEnabled) {
  auto compiled = compile_text(kCounter);
  Simulator simulator(compiled.netlist);
  simulator.set_value("Counter.enable", 1);
  simulator.run(5);
  EXPECT_EQ(simulator.value("Counter.out").to_uint64(), 5u);
  simulator.set_value("Counter.enable", 0);
  simulator.run(3);
  EXPECT_EQ(simulator.value("Counter.out").to_uint64(), 5u);
}

TEST(Simulator, CombinationalLogicMatchesGoldenModel) {
  auto compiled = compile_text(R"(circuit Alu
  module Alu
    input a : UInt<8>
    input b : UInt<8>
    output sum : UInt<8>
    output prod : UInt<8>
    output is_lt : UInt<1>
    connect sum = add(a, b)
    connect prod = mul(a, b)
    connect is_lt = lt(a, b)
  end
end
)");
  Simulator simulator(compiled.netlist);
  for (uint64_t a = 0; a < 256; a += 37) {
    for (uint64_t b = 0; b < 256; b += 41) {
      simulator.set_value("Alu.a", a);
      simulator.set_value("Alu.b", b);
      simulator.eval();
      EXPECT_EQ(simulator.value("Alu.sum").to_uint64(), (a + b) & 0xff);
      EXPECT_EQ(simulator.value("Alu.prod").to_uint64(), (a * b) & 0xff);
      EXPECT_EQ(simulator.value("Alu.is_lt").to_uint64(), a < b ? 1u : 0u);
    }
  }
}

TEST(Simulator, SynchronousResetLoadsInit) {
  auto compiled = compile_text(R"(circuit T
  module T
    input clock : Clock
    input rst : UInt<1>
    output o : UInt<8>
    reg r : UInt<8> clock clock reset rst init UInt<8>(42)
    connect r = add(r, UInt<8>(1))
    connect o = r
  end
end
)");
  Simulator simulator(compiled.netlist);
  simulator.run(3);
  EXPECT_EQ(simulator.value("T.o").to_uint64(), 3u);
  simulator.set_value("T.rst", 1);
  simulator.run(1);
  EXPECT_EQ(simulator.value("T.o").to_uint64(), 42u);
  simulator.set_value("T.rst", 0);
  simulator.run(1);
  EXPECT_EQ(simulator.value("T.o").to_uint64(), 43u);
}

TEST(Simulator, RegisterUpdateUsesPreEdgeValues) {
  // Classic swap: two registers exchanging values every cycle must use
  // pre-edge values (zero-delay semantics), not fall through.
  auto compiled = compile_text(R"(circuit Swap
  module Swap
    input clock : Clock
    output oa : UInt<8>
    output ob : UInt<8>
    reg a : UInt<8> clock clock
    reg b : UInt<8> clock clock
    wire seeded_b : UInt<8>
    connect seeded_b = or(b, UInt<8>(1))
    connect a = seeded_b
    connect b = add(a, UInt<8>(2))
    connect oa = a
    connect ob = b
  end
end
)");
  Simulator simulator(compiled.netlist);
  simulator.run(1);
  // pre: a=0 b=0 -> a'=0|1=1, b'=0+2=2
  EXPECT_EQ(simulator.value("Swap.oa").to_uint64(), 1u);
  EXPECT_EQ(simulator.value("Swap.ob").to_uint64(), 2u);
  simulator.run(1);
  // pre: a=1 b=2 -> a'=3, b'=3
  EXPECT_EQ(simulator.value("Swap.oa").to_uint64(), 3u);
  EXPECT_EQ(simulator.value("Swap.ob").to_uint64(), 3u);
}

TEST(Simulator, HierarchyPropagatesThroughInstances) {
  auto compiled = compile_text(R"(circuit Top
  module Inv
    input in : UInt<8>
    output out : UInt<8>
    connect out = not(in)
  end
  module Top
    input a : UInt<8>
    output o : UInt<8>
    inst u of Inv
    inst v of Inv
    connect u.in = a
    connect v.in = u.out
    connect o = v.out
  end
end
)");
  Simulator simulator(compiled.netlist);
  simulator.set_value("Top.a", 0xab);
  simulator.eval();
  EXPECT_EQ(simulator.value("Top.o").to_uint64(), 0xabu);
  EXPECT_EQ(simulator.value("Top.u.out").to_uint64(), 0x54u);
}

TEST(Simulator, ClockCallbacksFireAtBothEdges) {
  auto compiled = compile_text(kCounter);
  Simulator simulator(compiled.netlist);
  int rising = 0;
  int falling = 0;
  const uint64_t handle = simulator.add_clock_callback(
      [&](Edge edge, uint64_t) { (edge == Edge::Rising ? rising : falling)++; });
  simulator.run(4);
  EXPECT_EQ(rising, 4);
  EXPECT_EQ(falling, 4);
  simulator.remove_clock_callback(handle);
  simulator.run(2);
  EXPECT_EQ(rising, 4);
}

TEST(Simulator, CallbackSeesSettledPostEdgeState) {
  auto compiled = compile_text(kCounter);
  Simulator simulator(compiled.netlist);
  simulator.set_value("Counter.enable", 1);
  std::vector<uint64_t> sampled;
  simulator.add_clock_callback([&](Edge edge, uint64_t) {
    if (edge == Edge::Rising) {
      sampled.push_back(simulator.value("Counter.out").to_uint64());
    }
  });
  simulator.run(3);
  // At each rising edge the register already latched: 1, 2, 3.
  EXPECT_EQ(sampled, (std::vector<uint64_t>{1, 2, 3}));
}

TEST(Simulator, TimeAdvancesTwoPerCycle) {
  auto compiled = compile_text(kCounter);
  Simulator simulator(compiled.netlist);
  EXPECT_EQ(simulator.time(), 0u);
  simulator.run(3);
  EXPECT_EQ(simulator.time(), 6u);
  EXPECT_EQ(simulator.cycle(), 3u);
}

TEST(Simulator, ForcingCombinationalSignalRejected) {
  auto compiled = compile_text(kCounter);
  Simulator simulator(compiled.netlist);
  // Outputs and internal nodes are combinational: forcing them is refused.
  auto out_id = simulator.signal_id("Counter.out");
  ASSERT_TRUE(out_id.has_value());
  EXPECT_THROW(simulator.set_value(*out_id, common::BitVector(8, 1)),
               std::invalid_argument);
  auto next_id = simulator.signal_id("Counter.next0");
  ASSERT_TRUE(next_id.has_value());
  EXPECT_THROW(simulator.set_value(*next_id, common::BitVector(8, 1)),
               std::invalid_argument);
}

TEST(Simulator, UnknownSignalThrows) {
  auto compiled = compile_text(kCounter);
  Simulator simulator(compiled.netlist);
  EXPECT_THROW(simulator.value("Counter.ghost"), std::invalid_argument);
  EXPECT_THROW(simulator.set_value("Counter.ghost", 1), std::invalid_argument);
}

TEST(Simulator, CheckpointRestoreRewindsState) {
  auto compiled = compile_text(kCounter);
  Simulator simulator(compiled.netlist);
  simulator.enable_checkpoints(true);
  simulator.set_value("Counter.enable", 1);
  simulator.run(10);
  EXPECT_EQ(simulator.value("Counter.out").to_uint64(), 10u);
  simulator.restore_cycle(4);
  EXPECT_EQ(simulator.cycle(), 4u);
  EXPECT_EQ(simulator.value("Counter.out").to_uint64(), 4u);
  // Re-execution from the restored point reproduces the timeline.
  simulator.run(6);
  EXPECT_EQ(simulator.value("Counter.out").to_uint64(), 10u);
}

TEST(Simulator, RestoreOutOfRangeThrows) {
  auto compiled = compile_text(kCounter);
  Simulator simulator(compiled.netlist);
  simulator.enable_checkpoints(true);
  simulator.run(3);
  EXPECT_THROW(simulator.restore_cycle(99), std::out_of_range);
}

TEST(Simulator, RestoreRestoresInputs) {
  auto compiled = compile_text(kCounter);
  Simulator simulator(compiled.netlist);
  simulator.enable_checkpoints(true);
  simulator.set_value("Counter.enable", 1);
  simulator.run(5);
  simulator.set_value("Counter.enable", 0);
  simulator.run(5);
  // enable was 1 at cycle 2; restore must bring it back.
  simulator.restore_cycle(2);
  EXPECT_EQ(simulator.value("Counter.enable").to_uint64(), 1u);
}

TEST(Simulator, MultiWordSignalsSimulate) {
  auto compiled = compile_text(R"(circuit Wide
  module Wide
    input a : UInt<100>
    output o : UInt<100>
    connect o = add(a, UInt<100>(1))
  end
end
)");
  Simulator simulator(compiled.netlist);
  auto a_id = simulator.signal_id("Wide.a");
  ASSERT_TRUE(a_id.has_value());
  simulator.set_value(*a_id, common::BitVector::all_ones(100));
  simulator.eval();
  EXPECT_TRUE(simulator.value("Wide.o").is_zero());  // wraps at 2^100
}

TEST(Simulator, NoClockTickThrows) {
  auto compiled = compile_text(R"(circuit Comb
  module Comb
    input a : UInt<8>
    output o : UInt<8>
    connect o = a
  end
end
)");
  Simulator simulator(compiled.netlist);
  EXPECT_THROW(simulator.tick(), std::runtime_error);
}

}  // namespace
}  // namespace hgdb::sim
