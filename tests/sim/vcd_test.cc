#include "sim/vcd_writer.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "frontend/compile.h"
#include "ir/parser.h"
#include "trace/vcd_reader.h"

namespace hgdb::sim {
namespace {

class VcdRoundTrip : public ::testing::Test {
 protected:
  void SetUp() override {
    // pid + test name: unique across concurrent ctest processes.
    path_ = ::testing::TempDir() + "hgdb_vcd_test_" +
            std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() +
            ".vcd";
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::string path_;
};

constexpr const char* kCounter = R"(circuit Counter
  module Counter
    input clock : Clock
    input enable : UInt<1>
    output out : UInt<8>
    reg count : UInt<8> clock clock
    connect count = add(count, pad(enable, 8))
    connect out = count
  end
end
)";

TEST_F(VcdRoundTrip, HeaderContainsHierarchyAndVars) {
  auto compiled = frontend::compile(ir::parse_circuit(kCounter));
  Simulator simulator(compiled.netlist);
  {
    VcdWriter writer(simulator, path_);
    writer.sample();
  }
  std::ifstream in(path_);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  EXPECT_NE(text.find("$scope module Counter $end"), std::string::npos);
  EXPECT_NE(text.find("$var wire 8"), std::string::npos);
  EXPECT_NE(text.find("$enddefinitions"), std::string::npos);
  EXPECT_NE(text.find("$dumpvars"), std::string::npos);
}

TEST_F(VcdRoundTrip, TraceValuesMatchSimulation) {
  auto compiled = frontend::compile(ir::parse_circuit(kCounter));
  Simulator simulator(compiled.netlist);
  simulator.set_value("Counter.enable", 1);
  std::vector<std::pair<uint64_t, uint64_t>> expected;  // (time, out)
  {
    VcdWriter writer(simulator, path_);
    writer.attach();
    for (int i = 0; i < 8; ++i) {
      simulator.tick();
      expected.emplace_back(simulator.time(), simulator.value("Counter.out").to_uint64());
    }
  }
  auto trace = trace::parse_vcd_file(path_);
  auto out_index = trace.var_index("Counter.out");
  ASSERT_TRUE(out_index.has_value());
  for (const auto& [time, value] : expected) {
    EXPECT_EQ(trace.value_at(*out_index, time).to_uint64(), value)
        << "at time " << time;
  }
}

TEST_F(VcdRoundTrip, ClockEdgesRecoverable) {
  auto compiled = frontend::compile(ir::parse_circuit(kCounter));
  Simulator simulator(compiled.netlist);
  {
    VcdWriter writer(simulator, path_);
    writer.attach();
    simulator.run(5);
  }
  auto trace = trace::parse_vcd_file(path_);
  auto clock_index = trace.var_index("Counter.clock");
  ASSERT_TRUE(clock_index.has_value());
  EXPECT_EQ(trace.rising_edges(*clock_index).size(), 5u);
}

TEST_F(VcdRoundTrip, OnlyChangesAreWritten) {
  auto compiled = frontend::compile(ir::parse_circuit(kCounter));
  Simulator simulator(compiled.netlist);
  // enable=0: count never changes; the file must not repeat its value.
  {
    VcdWriter writer(simulator, path_);
    writer.attach();
    simulator.run(50);
  }
  std::ifstream in(path_);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  // "b0 " appears once for count and once for out in $dumpvars only.
  size_t count = 0;
  for (size_t pos = 0; (pos = text.find("b0 ", pos)) != std::string::npos; ++pos) {
    ++count;
  }
  EXPECT_LE(count, 4u);
}

constexpr const char* kWideShift = R"(circuit WideShift
  module WideShift
    input clock : Clock
    input enable : UInt<1>
    output out : UInt<80>
    reg acc : UInt<80> clock clock
    connect acc = cat(bits(acc, 78, 0), enable)
    connect out = acc
  end
end
)";

TEST_F(VcdRoundTrip, WideVectorsSurviveWriterParserRoundTrip) {
  // >64-bit signals stress the multi-word VCD binary encode/decode path.
  auto compiled = frontend::compile(ir::parse_circuit(kWideShift));
  Simulator simulator(compiled.netlist);
  simulator.set_value("WideShift.enable", 1);
  std::vector<std::pair<uint64_t, common::BitVector>> expected;
  {
    VcdWriter writer(simulator, path_);
    writer.attach();
    for (int i = 0; i < 72; ++i) {
      simulator.tick();
      expected.emplace_back(simulator.time(),
                            simulator.value("WideShift.out"));
    }
  }
  auto trace = trace::parse_vcd_file(path_);
  auto out_index = trace.var_index("WideShift.out");
  ASSERT_TRUE(out_index.has_value());
  EXPECT_EQ(trace.vars()[*out_index].width, 80u);
  for (const auto& [time, value] : expected) {
    ASSERT_EQ(trace.value_at(*out_index, time), value) << "at time " << time;
  }
  // After 72 shifted-in ones the value has bits set above word 0.
  const auto& final_value = expected.back().second;
  EXPECT_EQ(final_value.popcount(), 72u);
  EXPECT_TRUE(final_value.bit(71));
}

TEST_F(VcdRoundTrip, XZValuesParseAsZeroWithoutError) {
  // The writer is two-state, but external simulator dumps carry x/z; the
  // parser must accept them in scalars and vectors and map them to 0.
  auto trace = trace::parse_vcd(
      "$var wire 1 ! f $end\n$var wire 8 \" v $end\n"
      "$enddefinitions $end\n"
      "#0\nx!\nbzzzzzzzz \"\n#1\n1!\nb1x1z \"\n");
  auto f = *trace.var_index("f");
  auto v = *trace.var_index("v");
  EXPECT_EQ(trace.value_at(f, 0).to_uint64(), 0u);
  EXPECT_EQ(trace.value_at(v, 0).to_uint64(), 0u);
  EXPECT_EQ(trace.value_at(f, 1).to_uint64(), 1u);
  EXPECT_EQ(trace.value_at(v, 1).to_uint64(), 0b1010u);
}

TEST_F(VcdRoundTrip, TemporariesNotTraced) {
  auto compiled = frontend::compile(ir::parse_circuit(kCounter));
  Simulator simulator(compiled.netlist);
  {
    VcdWriter writer(simulator, path_);
    writer.sample();
  }
  auto trace = trace::parse_vcd_file(path_);
  for (const auto& var : trace.vars()) {
    EXPECT_FALSE(var.hier_name.empty());
  }
  // Named signals only: ports + reg + node; far fewer than netlist slots.
  EXPECT_LT(trace.vars().size(), compiled.netlist.slot_count());
}

}  // namespace
}  // namespace hgdb::sim
