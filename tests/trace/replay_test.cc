#include "trace/replay.h"

#include <gtest/gtest.h>

#include "trace/vcd_reader.h"

namespace hgdb::trace {
namespace {

constexpr const char* kTrace = R"($date today $end
$timescale 1ns $end
$scope module top $end
$var wire 1 ! clock $end
$var wire 8 " data [7:0] $end
$scope module child $end
$var wire 1 # flag $end
$upscope $end
$upscope $end
$enddefinitions $end
#0
$dumpvars
0!
b0 "
0#
$end
#1
1!
b101 "
#2
0!
#3
1!
b1010 "
1#
#4
0!
#5
1!
)";

TEST(VcdReader, ParsesHierarchicalNames) {
  auto trace = parse_vcd(kTrace);
  EXPECT_TRUE(trace.var_index("top.clock").has_value());
  EXPECT_TRUE(trace.var_index("top.data").has_value());
  EXPECT_TRUE(trace.var_index("top.child.flag").has_value());
  EXPECT_FALSE(trace.var_index("top.ghost").has_value());
  EXPECT_EQ(trace.max_time(), 5u);
}

TEST(VcdReader, ValueAtInterpolatesBetweenChanges) {
  auto trace = parse_vcd(kTrace);
  auto data = *trace.var_index("top.data");
  EXPECT_EQ(trace.value_at(data, 0).to_uint64(), 0u);
  EXPECT_EQ(trace.value_at(data, 1).to_uint64(), 0b101u);
  EXPECT_EQ(trace.value_at(data, 2).to_uint64(), 0b101u);  // holds
  EXPECT_EQ(trace.value_at(data, 3).to_uint64(), 0b1010u);
  EXPECT_EQ(trace.value_at(data, 100).to_uint64(), 0b1010u);
}

TEST(VcdReader, ValueBeforeFirstChangeIsZero) {
  auto trace = parse_vcd("$var wire 4 ! x $end\n$enddefinitions $end\n#5\nb111 !\n");
  EXPECT_EQ(trace.value_at(0, 2).to_uint64(), 0u);
}

TEST(VcdReader, RisingEdges) {
  auto trace = parse_vcd(kTrace);
  auto clock = *trace.var_index("top.clock");
  EXPECT_EQ(trace.rising_edges(clock), (std::vector<uint64_t>{1, 3, 5}));
}

TEST(VcdReader, XZMapToZero) {
  auto trace = parse_vcd(
      "$var wire 1 ! x $end\n$enddefinitions $end\n#0\nx!\n#1\n1!\n#2\nz!\n");
  EXPECT_EQ(trace.value_at(0, 0).to_uint64(), 0u);
  EXPECT_EQ(trace.value_at(0, 1).to_uint64(), 1u);
  EXPECT_EQ(trace.value_at(0, 2).to_uint64(), 0u);
}

TEST(VcdReader, UnknownCodeRejected) {
  EXPECT_THROW(parse_vcd("$enddefinitions $end\n#0\n1?\n"), std::runtime_error);
}

TEST(VcdReader, AliasedVarsShareTheChangeStream) {
  // Two $var declarations with one id code: simulators emit this when a net
  // has several hierarchical names. Every alias must track the changes.
  auto trace = parse_vcd(
      "$scope module top $end\n"
      "$var wire 8 ! bus $end\n"
      "$scope module sub $end\n"
      "$var wire 8 ! bus_alias $end\n"
      "$upscope $end\n$upscope $end\n"
      "$enddefinitions $end\n"
      "#0\nb1100 !\n#4\nb11 !\n");
  auto a = trace.var_index("top.bus");
  auto b = trace.var_index("top.sub.bus_alias");
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_NE(*a, *b);
  EXPECT_EQ(trace.value_at(*a, 0).to_uint64(), 0b1100u);
  EXPECT_EQ(trace.value_at(*b, 0).to_uint64(), 0b1100u);
  EXPECT_EQ(trace.value_at(*a, 5).to_uint64(), 0b11u);
  EXPECT_EQ(trace.value_at(*b, 5).to_uint64(), 0b11u);
}

TEST(VcdReader, RealAndStringChangesSkippedNotFatal) {
  auto trace = parse_vcd(
      "$var wire 1 ! flag $end\n"
      "$var real 64 r temperature $end\n"
      "$enddefinitions $end\n"
      "#0\nr1.25 r\n1!\n#1\nsENUM_STATE r\n0!\n");
  auto flag = trace.var_index("flag");
  ASSERT_TRUE(flag.has_value());
  EXPECT_EQ(trace.value_at(*flag, 0).to_uint64(), 1u);
  EXPECT_EQ(trace.value_at(*flag, 1).to_uint64(), 0u);
}

TEST(ReplayEngine, FindsClockByLeafName) {
  ReplayEngine engine{parse_vcd(kTrace)};
  EXPECT_EQ(engine.cycle_count(), 3u);
  EXPECT_EQ(engine.edges(), (std::vector<uint64_t>{1, 3, 5}));
}

TEST(ReplayEngine, ExplicitClockBySuffix) {
  ReplayEngine engine{parse_vcd(kTrace), "clock"};
  EXPECT_EQ(engine.cycle_count(), 3u);
  EXPECT_THROW(ReplayEngine(parse_vcd(kTrace), "nope"), std::runtime_error);
}

TEST(ReplayEngine, ClockAutoDetectionIsCaseInsensitive) {
  for (const char* leaf : {"CLK", "Clock", "clk", "CLOCK"}) {
    const std::string text = std::string("$scope module top $end\n$var wire 1 ! ") +
                             leaf +
                             " $end\n$upscope $end\n$enddefinitions $end\n"
                             "#0\n0!\n#1\n1!\n#2\n0!\n#3\n1!\n";
    ReplayEngine engine{parse_vcd(text)};
    EXPECT_EQ(engine.cycle_count(), 2u) << leaf;
    EXPECT_EQ(engine.clock_name(), std::string("top.") + leaf);
  }
}

TEST(ReplayEngine, MissingClockGivesClearError) {
  const auto no_candidate =
      "$var wire 1 ! data $end\n$enddefinitions $end\n#0\n1!\n";
  try {
    ReplayEngine engine{parse_vcd(no_candidate)};
    FAIL() << "expected runtime_error";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("no clock candidate"),
              std::string::npos);
  }
}

TEST(ReplayEngine, ClockThatNeverRisesIsRejected) {
  // A clock stuck at 0 would yield an empty edge grid; the engine must
  // refuse loudly instead of replaying nothing.
  const auto stuck =
      "$var wire 1 c clk $end\n$enddefinitions $end\n#0\n0c\n#5\n0c\n";
  try {
    ReplayEngine engine{parse_vcd(stuck)};
    FAIL() << "expected runtime_error";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("never rises"), std::string::npos);
  }
}

TEST(ReplayEngine, SeekAndStep) {
  ReplayEngine engine{parse_vcd(kTrace)};
  engine.seek_cycle(0);
  EXPECT_EQ(engine.time(), 1u);
  EXPECT_EQ(engine.value("top.data")->to_uint64(), 0b101u);

  EXPECT_TRUE(engine.step_forward());
  EXPECT_EQ(engine.time(), 3u);
  EXPECT_EQ(engine.value("top.data")->to_uint64(), 0b1010u);

  EXPECT_TRUE(engine.step_backward());
  EXPECT_EQ(engine.time(), 1u);
  EXPECT_EQ(engine.value("top.data")->to_uint64(), 0b101u);
  EXPECT_FALSE(engine.step_backward());
}

TEST(ReplayEngine, StepForwardStopsAtEnd) {
  ReplayEngine engine{parse_vcd(kTrace)};
  engine.seek_cycle(2);
  EXPECT_FALSE(engine.step_forward());
}

TEST(ReplayEngine, SeekOutOfRangeThrows) {
  ReplayEngine engine{parse_vcd(kTrace)};
  EXPECT_THROW(engine.seek_cycle(3), std::out_of_range);
}

TEST(ReplayEngine, CurrentCycleTracksCursor) {
  ReplayEngine engine{parse_vcd(kTrace)};
  engine.set_time(0);
  EXPECT_FALSE(engine.current_cycle().has_value());
  engine.set_time(2);
  EXPECT_EQ(engine.current_cycle(), 0u);
  engine.set_time(5);
  EXPECT_EQ(engine.current_cycle(), 2u);
}

}  // namespace
}  // namespace hgdb::trace
