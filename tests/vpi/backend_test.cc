#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>

#include "frontend/compile.h"
#include "ir/parser.h"
#include "sim/vcd_writer.h"
#include "trace/vcd_reader.h"
#include "vpi/hierarchy.h"
#include "vpi/native_backend.h"
#include "vpi/replay_backend.h"

namespace hgdb::vpi {
namespace {

constexpr const char* kCounter = R"(circuit Counter
  module Counter
    input clock : Clock
    input enable : UInt<1>
    output out : UInt<8>
    reg count : UInt<8> clock clock
    connect count = add(count, pad(enable, 8))
    connect out = count
  end
end
)";

TEST(NativeBackend, GetValueByHierName) {
  auto compiled = frontend::compile(ir::parse_circuit(kCounter));
  sim::Simulator simulator(compiled.netlist);
  NativeBackend backend(simulator);
  simulator.set_value("Counter.enable", 1);
  simulator.run(3);
  auto value = backend.get_value("Counter.out");
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(value->to_uint64(), 3u);
  EXPECT_FALSE(backend.get_value("Counter.nope").has_value());
}

TEST(NativeBackend, ZeroCopyViewsPointIntoTheValueStore) {
  auto compiled = frontend::compile(ir::parse_circuit(kCounter));
  sim::Simulator simulator(compiled.netlist);
  NativeBackend backend(simulator);
  simulator.set_value("Counter.enable", 1);
  simulator.run(5);

  const uint64_t handles[] = {*backend.lookup_signal("Counter.out"),
                              *backend.lookup_signal("Counter.enable")};
  const common::BitVector* views[2] = {nullptr, nullptr};
  ASSERT_TRUE(backend.get_value_views(handles, 2, views));
  ASSERT_NE(views[0], nullptr);
  ASSERT_NE(views[1], nullptr);
  // Zero-copy means the pointers ARE the simulator's storage, not copies.
  EXPECT_EQ(views[0],
            &simulator.value(static_cast<uint32_t>(handles[0])));
  EXPECT_EQ(views[0]->to_uint64(), 5u);
  EXPECT_EQ(views[1]->to_uint64(), 1u);
  // ... so advancing the simulation updates the pointee in place.
  simulator.run(2);
  EXPECT_EQ(views[0]->to_uint64(), 7u);
  // The copying path agrees with the views.
  common::BitVector out[2];
  uint8_t present[2] = {0, 0};
  backend.get_values(handles, 2, out, present);
  EXPECT_EQ(out[0], *views[0]);
  EXPECT_EQ(out[1], *views[1]);
}

TEST(NativeBackend, ReplayAndDefaultBackendsDeclineViews) {
  // The base-class default must return false so the runtime falls back to
  // the copying fetch (replay recomputes values per seek).
  class MinimalBackend final : public SimulatorInterface {
   public:
    [[nodiscard]] std::optional<common::BitVector> get_value(
        const std::string&) override {
      return common::BitVector(8, 1);
    }
    [[nodiscard]] std::vector<std::string> signal_names() const override {
      return {};
    }
    [[nodiscard]] std::vector<std::string> clock_names() const override {
      return {};
    }
    uint64_t add_clock_callback(ClockCallback) override { return 0; }
    void remove_clock_callback(uint64_t) override {}
    [[nodiscard]] uint64_t get_time() const override { return 0; }
  };
  MinimalBackend backend;
  const uint64_t handle = *backend.lookup_signal("anything");
  const common::BitVector* view = nullptr;
  EXPECT_FALSE(backend.get_value_views(&handle, 1, &view));
}

TEST(NativeBackend, HierarchyAndClockQueries) {
  auto compiled = frontend::compile(ir::parse_circuit(kCounter));
  sim::Simulator simulator(compiled.netlist);
  NativeBackend backend(simulator);
  auto names = backend.signal_names();
  EXPECT_NE(std::find(names.begin(), names.end(), "Counter.count"), names.end());
  EXPECT_EQ(backend.clock_names(), (std::vector<std::string>{"Counter.clock"}));
}

TEST(NativeBackend, ClockCallbacksForwarded) {
  auto compiled = frontend::compile(ir::parse_circuit(kCounter));
  sim::Simulator simulator(compiled.netlist);
  NativeBackend backend(simulator);
  int edges = 0;
  auto handle = backend.add_clock_callback(
      [&](ClockEdge edge, uint64_t) { if (edge == ClockEdge::Rising) ++edges; });
  simulator.run(4);
  EXPECT_EQ(edges, 4);
  backend.remove_clock_callback(handle);
  simulator.run(1);
  EXPECT_EQ(edges, 4);
}

TEST(NativeBackend, SetValueOnInputsAndRegistersOnly) {
  auto compiled = frontend::compile(ir::parse_circuit(kCounter));
  sim::Simulator simulator(compiled.netlist);
  NativeBackend backend(simulator);
  EXPECT_TRUE(backend.supports_set_value());
  EXPECT_TRUE(backend.set_value("Counter.count", common::BitVector(8, 99)));
  EXPECT_EQ(backend.get_value("Counter.out")->to_uint64(), 99u);
  EXPECT_FALSE(backend.set_value("Counter.out", common::BitVector(8, 1)));
  EXPECT_FALSE(backend.set_value("Counter.ghost", common::BitVector(8, 1)));
}

TEST(NativeBackend, TimeTravelRequiresCheckpoints) {
  auto compiled = frontend::compile(ir::parse_circuit(kCounter));
  sim::Simulator simulator(compiled.netlist);
  NativeBackend backend(simulator);
  EXPECT_FALSE(backend.supports_time_travel());
  simulator.enable_checkpoints(true);
  EXPECT_TRUE(backend.supports_time_travel());
  simulator.set_value("Counter.enable", 1);
  simulator.run(10);
  EXPECT_TRUE(backend.set_time(8));  // cycle 4
  EXPECT_EQ(backend.get_value("Counter.out")->to_uint64(), 4u);
  EXPECT_FALSE(backend.set_time(500));
}

class ReplayBackendTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // pid + test name: unique across concurrent ctest processes.
    path_ = ::testing::TempDir() + "hgdb_replay_test_" +
            std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() +
            ".vcd";
    auto compiled = frontend::compile(ir::parse_circuit(kCounter));
    sim::Simulator simulator(compiled.netlist);
    simulator.set_value("Counter.enable", 1);
    sim::VcdWriter writer(simulator, path_);
    writer.attach();
    simulator.run(10);
  }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_;
};

TEST_F(ReplayBackendTest, ValuesFollowTheCursor) {
  ReplayBackend backend{trace::ReplayEngine(trace::parse_vcd_file(path_))};
  backend.engine().seek_cycle(4);
  EXPECT_EQ(backend.get_value("Counter.out")->to_uint64(), 5u);
  backend.engine().seek_cycle(0);
  EXPECT_EQ(backend.get_value("Counter.out")->to_uint64(), 1u);
}

TEST_F(ReplayBackendTest, CallbacksFireWhileStepping) {
  ReplayBackend backend{trace::ReplayEngine(trace::parse_vcd_file(path_))};
  std::vector<uint64_t> sampled;
  backend.add_clock_callback([&](ClockEdge, uint64_t) {
    sampled.push_back(backend.get_value("Counter.out")->to_uint64());
  });
  backend.run_forward();
  EXPECT_EQ(sampled, (std::vector<uint64_t>{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}));
}

TEST_F(ReplayBackendTest, ReverseSteppingWorks) {
  ReplayBackend backend{trace::ReplayEngine(trace::parse_vcd_file(path_))};
  backend.engine().seek_cycle(5);
  EXPECT_TRUE(backend.supports_time_travel());
  EXPECT_FALSE(backend.supports_set_value());
  EXPECT_TRUE(backend.step_backward());
  EXPECT_EQ(backend.get_value("Counter.out")->to_uint64(), 5u);
}

TEST_F(ReplayBackendTest, SetTimeBounded) {
  ReplayBackend backend{trace::ReplayEngine(trace::parse_vcd_file(path_))};
  EXPECT_TRUE(backend.set_time(7));
  EXPECT_EQ(backend.get_time(), 7u);
  EXPECT_FALSE(backend.set_time(10000));
}

// -- hierarchy mapping (Sec. 3.4 "locate the generated IP") -------------------

TEST(HierarchyMapper, IdentityWhenStandalone) {
  HierarchyMapper mapper({"Top.a", "Top.child.b"}, {"Top.a", "Top.child.b"},
                         "Top");
  ASSERT_TRUE(mapper.valid());
  EXPECT_EQ(mapper.design_prefix(), "Top");
  EXPECT_EQ(mapper.to_design("Top.child.b"), "Top.child.b");
}

TEST(HierarchyMapper, FindsPrefixInsideTestbench) {
  const std::vector<std::string> design = {
      "tb.clock", "tb.driver.req", "tb.dut_top.a", "tb.dut_top.child.b",
      "tb.monitor.x"};
  HierarchyMapper mapper(design, {"Top.a", "Top.child.b"}, "Top");
  ASSERT_TRUE(mapper.valid());
  EXPECT_EQ(mapper.design_prefix(), "tb.dut_top");
  EXPECT_EQ(mapper.to_design("Top.child.b"), "tb.dut_top.child.b");
  EXPECT_EQ(mapper.to_design("Top"), "tb.dut_top");
}

TEST(HierarchyMapper, InverseMapping) {
  HierarchyMapper mapper({"tb.dut.a"}, {"Top.a"}, "Top");
  ASSERT_TRUE(mapper.valid());
  EXPECT_EQ(mapper.to_symbol("tb.dut.a"), "Top.a");
  EXPECT_FALSE(mapper.to_symbol("tb.other.a").has_value());
}

TEST(HierarchyMapper, CommonSubstringBreaksTies) {
  // Both prefixes match one signal each; "dut_rocket" shares more substring
  // with root "RocketTop" than "driver" does.
  const std::vector<std::string> design = {"tb.dut_rocket.a", "tb.driver.a"};
  HierarchyMapper mapper(design, {"RocketTop.a"}, "RocketTop");
  ASSERT_TRUE(mapper.valid());
  EXPECT_EQ(mapper.design_prefix(), "tb.dut_rocket");
}

TEST(HierarchyMapper, InvalidWhenNothingMatches) {
  HierarchyMapper mapper({"x.y"}, {"Top.a"}, "Top");
  EXPECT_FALSE(mapper.valid());
  EXPECT_EQ(mapper.to_design("Top.a"), "Top.a");  // identity fallback
}

}  // namespace
}  // namespace hgdb::vpi
