#include "passes/symbol_extract.h"

#include <gtest/gtest.h>

#include "frontend/compile.h"
#include "ir/parser.h"
#include "symbols/symbol_table.h"

namespace hgdb::passes {
namespace {

using frontend::CompileOptions;

constexpr const char* kListing = R"(circuit Listing
  module Listing
    input data : UInt<8>[2]
    output out : UInt<8>
    wire sum : UInt<8> @[listing.cc 1 1]
    connect sum = UInt<8>(0) @[listing.cc 1 5]
    for i = 0 to 2 @[listing.cc 2 1]
      when neq(rem(data[i], UInt<8>(2)), UInt<8>(0)) @[listing.cc 3 3]
        connect sum = add(sum, data[i]) @[listing.cc 4 5]
      end
    end
    connect out = sum @[listing.cc 6 1]
  end
end
)";

symbols::SymbolTableData extract(const char* text, bool debug_mode) {
  CompileOptions options;
  options.debug_mode = debug_mode;
  auto result = frontend::compile(ir::parse_circuit(text), options);
  return std::move(result.symbols);
}

TEST(SymbolExtract, RequiresLowForm) {
  auto circuit = ir::parse_circuit(kListing);
  EXPECT_THROW(extract_symbol_table(*circuit), std::runtime_error);
}

TEST(SymbolExtract, EmitsBreakpointsWithEnables) {
  auto data = extract(kListing, /*debug_mode=*/true);
  symbols::MemorySymbolTable table(std::move(data));
  // Line 4 has two breakpoints (unrolled twice), with distinct enables.
  auto line4 = table.breakpoints_at("listing.cc", 4);
  ASSERT_EQ(line4.size(), 2u);
  EXPECT_NE(line4[0].enable, line4[1].enable);
  EXPECT_FALSE(line4[0].enable.empty());
}

TEST(SymbolExtract, ScopeVariablesResolveToSsaNames) {
  auto data = extract(kListing, /*debug_mode=*/true);
  symbols::MemorySymbolTable table(std::move(data));
  auto line4 = table.breakpoints_at("listing.cc", 4);
  ASSERT_FALSE(line4.empty());
  auto sum = table.resolve_scope_variable(line4[0].id, "sum");
  ASSERT_TRUE(sum.has_value());
  EXPECT_TRUE(sum->is_rtl);
  EXPECT_EQ(sum->value, "sum0");
  // The unrolled loop index appears as a constant variable.
  auto index = table.resolve_scope_variable(line4[0].id, "i");
  ASSERT_TRUE(index.has_value());
  EXPECT_FALSE(index->is_rtl);
  EXPECT_EQ(index->value, "0");
}

TEST(SymbolExtract, GeneratorVariablesPerInstance) {
  auto data = extract(kListing, /*debug_mode=*/true);
  symbols::MemorySymbolTable table(std::move(data));
  auto top = table.instance_by_name("Listing");
  ASSERT_TRUE(top.has_value());
  auto sum = table.resolve_generator_variable(top->id, "sum");
  ASSERT_TRUE(sum.has_value());
  EXPECT_EQ(sum->value, "sum4");  // final SSA value (last phi join)
  // Flattened input vector elements keep dotted/bracketed names.
  auto element = table.resolve_generator_variable(top->id, "data[0]");
  ASSERT_TRUE(element.has_value());
  EXPECT_EQ(element->value, "data_0");
}

TEST(SymbolExtract, InstancesWalkTheHierarchy) {
  auto data = extract(R"(circuit Top
  module Leaf
    input in : UInt<8>
    output out : UInt<8>
    node t = add(in, UInt<8>(1)) @[leaf.cc 2 1]
    connect out = t
  end
  module Mid
    input in : UInt<8>
    output out : UInt<8>
    inst leaf of Leaf
    connect leaf.in = in
    connect out = leaf.out
  end
  module Top
    input in : UInt<8>
    output out : UInt<8>
    inst a of Mid
    inst b of Mid
    connect a.in = in
    connect b.in = in
    connect out = add(a.out, b.out)
  end
end
)",
                      /*debug_mode=*/true);
  symbols::MemorySymbolTable table(std::move(data));
  std::vector<std::string> names;
  for (const auto& instance : table.instances()) names.push_back(instance.name);
  EXPECT_EQ(names, (std::vector<std::string>{"Top", "Top.a", "Top.a.leaf",
                                             "Top.b", "Top.b.leaf"}));
  // leaf.cc:2 exists once per Leaf instance — the paper's concurrent
  // hardware threads sharing one source line.
  auto bps = table.breakpoints_at("leaf.cc", 2);
  EXPECT_EQ(bps.size(), 2u);
}

TEST(SymbolExtract, VariableRowsSharedBetweenInstances) {
  auto data = extract(R"(circuit Top
  module Leaf
    input in : UInt<8>
    output out : UInt<8>
    node t = add(in, UInt<8>(1)) @[leaf.cc 2 1]
    connect out = t
  end
  module Top
    input in : UInt<8>
    output out : UInt<8>
    inst a of Leaf
    inst b of Leaf
    connect a.in = in
    connect b.in = in
    connect out = add(a.out, b.out)
  end
end
)",
                      /*debug_mode=*/true);
  // Instance-relative values: both Leaf instances reference the same
  // variable rows (value "t" etc.), so variable count is per-module.
  symbols::MemorySymbolTable table(data);
  size_t t_rows = 0;
  for (const auto& row : data.variables) {
    if (row.value == "t" && row.is_rtl) ++t_rows;
  }
  EXPECT_EQ(t_rows, 1u);
}

TEST(SymbolExtract, OptimizedAwayVariablesDropFromScopes) {
  const char* text = R"(circuit T
  module T
    input a : UInt<8>
    output o : UInt<8>
    wire dead : UInt<8> @[gen.cc 1 1]
    connect dead = add(a, UInt<8>(1)) @[gen.cc 2 1]
    wire live : UInt<8> @[gen.cc 3 1]
    connect live = add(a, UInt<8>(2)) @[gen.cc 4 1]
    connect o = live @[gen.cc 5 1]
  end
end
)";
  auto optimized = extract(text, /*debug_mode=*/false);
  auto debug = extract(text, /*debug_mode=*/true);
  // Debug keeps the dead assignment's breakpoint; optimized drops it —
  // "consistent with software compilers" (paper Sec. 4.1).
  symbols::MemorySymbolTable opt_table(optimized);
  symbols::MemorySymbolTable dbg_table(debug);
  EXPECT_TRUE(opt_table.breakpoints_at("gen.cc", 2).empty());
  EXPECT_EQ(dbg_table.breakpoints_at("gen.cc", 2).size(), 1u);
  EXPECT_GT(debug.total_rows(), optimized.total_rows());
}

TEST(SymbolExtract, OrderIndexFollowsExecutionOrder) {
  auto data = extract(kListing, /*debug_mode=*/true);
  symbols::MemorySymbolTable table(std::move(data));
  auto all = table.all_breakpoints();
  ASSERT_GE(all.size(), 2u);
  // Scheduling order: sorted by (filename, line, column, order_index);
  // within one line, order_index increases with execution order.
  for (size_t i = 1; i < all.size(); ++i) {
    if (all[i].filename == all[i - 1].filename &&
        all[i].line_num == all[i - 1].line_num &&
        all[i].column_num == all[i - 1].column_num) {
      EXPECT_GT(all[i].order_index, all[i - 1].order_index);
    }
  }
}

TEST(SymbolExtract, FilesListsDistinctSources) {
  auto data = extract(kListing, /*debug_mode=*/true);
  symbols::MemorySymbolTable table(std::move(data));
  EXPECT_EQ(table.files(), (std::vector<std::string>{"listing.cc"}));
}

}  // namespace
}  // namespace hgdb::passes
