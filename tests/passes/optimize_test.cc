#include <gtest/gtest.h>

#include "ir/parser.h"
#include "ir/printer.h"
#include "passes/const_fold.h"
#include "passes/pass.h"

namespace hgdb::passes {
namespace {

using namespace ir;

std::unique_ptr<Circuit> compile_with(
    const char* text, const std::vector<std::string>& opt_passes,
    bool debug_mode = false) {
  auto circuit = parse_circuit(text);
  PassManager manager;
  manager.add(create_unroll_loops_pass());
  manager.add(create_lower_aggregates_pass());
  manager.add(create_ssa_pass());
  if (debug_mode) manager.add(create_insert_dont_touch_pass());
  for (const auto& name : opt_passes) {
    if (name == "const-prop") manager.add(create_const_prop_pass());
    if (name == "cse") manager.add(create_cse_pass());
    if (name == "dce") manager.add(create_dce_pass());
  }
  manager.run(*circuit);
  return circuit;
}

std::vector<const NodeStmt*> nodes_of(const Circuit& circuit) {
  std::vector<const NodeStmt*> out;
  visit_stmts(circuit.top()->body(), [&](const Stmt& stmt) {
    if (stmt.kind() == StmtKind::Node) {
      out.push_back(static_cast<const NodeStmt*>(&stmt));
    }
  });
  return out;
}

// -- constant folding helper --------------------------------------------------

TEST(FoldExprNode, FoldsLiteralPrims) {
  auto folded = fold_expr_node(
      make_prim(PrimOp::Add, {make_uint_literal(8, 3), make_uint_literal(8, 4)}));
  ASSERT_EQ(folded->kind(), ExprKind::Literal);
  EXPECT_EQ(static_cast<const LiteralExpr&>(*folded).value().to_uint64(), 7u);
}

TEST(FoldExprNode, MuxConstantSelector) {
  auto mux_expr = make_mux(make_bool_literal(true),
                           make_ref("a", uint_type(8)),
                           make_ref("b", uint_type(8)));
  EXPECT_EQ(fold_expr_node(mux_expr)->str(), "a");
}

TEST(FoldExprNode, MuxIdenticalArms) {
  auto mux_expr = make_mux(make_ref("c", bool_type()),
                           make_ref("a", uint_type(8)),
                           make_ref("a", uint_type(8)));
  EXPECT_EQ(fold_expr_node(mux_expr)->str(), "a");
}

TEST(FoldExprNode, NonLiteralUnchanged) {
  auto expr = make_prim(PrimOp::Add, {make_ref("a", uint_type(8)),
                                      make_uint_literal(8, 1)});
  EXPECT_EQ(fold_expr_node(expr), expr);
}

// -- const prop ---------------------------------------------------------------

TEST(ConstProp, PropagatesLiteralNodes) {
  auto circuit = compile_with(R"(circuit T
  module T
    input a : UInt<8>
    output o : UInt<8>
    node k = add(UInt<8>(3), UInt<8>(4))
    connect o = add(a, k)
  end
end
)",
                              {"const-prop"});
  // The use of k must see the folded literal.
  bool found = false;
  visit_stmts(circuit->top()->body(), [&](const Stmt& stmt) {
    if (stmt.kind() == StmtKind::Node) {
      const auto& node = static_cast<const NodeStmt&>(stmt);
      if (node.value->str() == "add(a, UInt<8>(7))") found = true;
    }
  });
  EXPECT_TRUE(found);
}

TEST(ConstProp, FoldsThroughWhenConditions) {
  auto circuit = compile_with(R"(circuit T
  module T
    input a : UInt<8>
    output o : UInt<8>
    wire t : UInt<8>
    when eq(UInt<8>(1), UInt<8>(1))
      connect t = a
    else
      connect t = UInt<8>(0)
    end
    connect o = t
  end
end
)",
                              {"const-prop"});
  // The when condition folds to 1, so the phi mux folds to the then-arm.
  const ConnectStmt* final_connect = nullptr;
  visit_stmts(circuit->top()->body(), [&](const Stmt& stmt) {
    if (stmt.kind() == StmtKind::Connect) final_connect =
        static_cast<const ConnectStmt*>(&stmt);
  });
  ASSERT_NE(final_connect, nullptr);
  // o's final SSA value chain collapses to t0 = a.
  EXPECT_NO_THROW(check_form(*circuit, Form::Low));
}

// -- CSE ------------------------------------------------------------------------

TEST(Cse, MergesStructurallyIdenticalNodes) {
  auto circuit = compile_with(R"(circuit T
  module T
    input a : UInt<8>
    input b : UInt<8>
    output o : UInt<8>
    node x = add(a, b)
    node y = add(a, b)
    connect o = add(x, y)
  end
end
)",
                              {"cse"});
  size_t add_ab = 0;
  for (const auto* node : nodes_of(*circuit)) {
    if (node->value->str() == "add(a, b)") ++add_ab;
  }
  EXPECT_EQ(add_ab, 1u);
  // The use must reference the canonical node twice.
  bool rewritten = false;
  for (const auto* node : nodes_of(*circuit)) {
    if (node->value->str() == "add(x, x)") rewritten = true;
  }
  EXPECT_TRUE(rewritten);
}

TEST(Cse, RespectsDontTouch) {
  auto circuit = compile_with(R"(circuit T
  module T
    input a : UInt<8>
    input b : UInt<8>
    output o : UInt<8>
    node x = add(a, b) @[gen.cc 5 1]
    node y = add(a, b) @[gen.cc 6 1]
    connect o = add(x, y)
  end
end
)",
                              {"cse"}, /*debug_mode=*/true);
  // Debug mode pins both nodes; CSE must not merge them.
  size_t add_ab = 0;
  for (const auto* node : nodes_of(*circuit)) {
    if (node->value->str() == "add(a, b)") ++add_ab;
  }
  EXPECT_EQ(add_ab, 2u);
}

TEST(Cse, DifferentWidthsNotMerged) {
  auto circuit = compile_with(R"(circuit T
  module T
    input a : UInt<8>
    output o : UInt<8>
    node x = pad(a, 16)
    node y = pad(a, 12)
    connect o = add(bits(x, 7, 0), bits(y, 7, 0))
  end
end
)",
                              {"cse"});
  size_t pads = 0;
  for (const auto* node : nodes_of(*circuit)) {
    if (node->value->str().rfind("pad(a", 0) == 0) ++pads;
  }
  EXPECT_EQ(pads, 2u);  // different result widths must not merge
}

// -- DCE --------------------------------------------------------------------------

TEST(Dce, RemovesUnusedNodes) {
  auto circuit = compile_with(R"(circuit T
  module T
    input a : UInt<8>
    output o : UInt<8>
    node dead = add(a, UInt<8>(1))
    node live = add(a, UInt<8>(2))
    connect o = live
  end
end
)",
                              {"dce"});
  std::vector<std::string> names;
  for (const auto* node : nodes_of(*circuit)) names.push_back(node->name);
  EXPECT_EQ(std::count(names.begin(), names.end(), "dead"), 0);
  EXPECT_EQ(std::count(names.begin(), names.end(), "live"), 1);
}

TEST(Dce, DontTouchKeepsDeadNodes) {
  auto circuit = compile_with(R"(circuit T
  module T
    input a : UInt<8>
    output o : UInt<8>
    node dead = add(a, UInt<8>(1)) @[gen.cc 3 1]
    connect o = a
  end
end
)",
                              {"dce"}, /*debug_mode=*/true);
  std::vector<std::string> names;
  for (const auto* node : nodes_of(*circuit)) names.push_back(node->name);
  EXPECT_EQ(std::count(names.begin(), names.end(), "dead"), 1);
}

TEST(Dce, KeepsEnableDependenciesOfLiveBreakpoints) {
  auto circuit = compile_with(R"(circuit T
  module T
    input c : UInt<1>
    input a : UInt<8>
    output o : UInt<8>
    wire t : UInt<8>
    connect t = UInt<8>(0) @[gen.cc 2 1]
    when c @[gen.cc 3 1]
      connect t = a @[gen.cc 4 1]
    end
    connect o = t
  end
end
)",
                              {"dce"});
  // The when-cond node is needed by the enable of the line-4 breakpoint
  // even if nothing else consumes it directly.
  bool has_cond = false;
  for (const auto* node : nodes_of(*circuit)) {
    if (node->name.rfind("when_cond", 0) == 0) has_cond = true;
  }
  EXPECT_TRUE(has_cond);
}

TEST(Dce, RegisterResetExpressionsAreRoots) {
  auto circuit = compile_with(R"(circuit T
  module T
    input clock : Clock
    input rst : UInt<1>
    output o : UInt<8>
    node init_value = add(UInt<8>(1), UInt<8>(2))
    reg r : UInt<8> clock clock reset rst init init_value
    connect r = add(r, UInt<8>(1))
    connect o = r
  end
end
)",
                              {"dce"});
  std::vector<std::string> names;
  for (const auto* node : nodes_of(*circuit)) names.push_back(node->name);
  EXPECT_EQ(std::count(names.begin(), names.end(), "init_value"), 1);
}

// -- behaviour preservation: the key optimization property ---------------------

TEST(Optimize, FullPipelineKeepsLowForm) {
  auto circuit = compile_with(R"(circuit T
  module T
    input clock : Clock
    input a : UInt<8>
    output o : UInt<8>
    reg r : UInt<8> clock clock
    wire t : UInt<8>
    connect t = add(a, UInt<8>(0))
    when eq(t, UInt<8>(5))
      connect t = UInt<8>(1)
    else
      connect t = add(t, UInt<8>(1))
    end
    connect r = t
    connect o = r
  end
end
)",
                              {"const-prop", "cse", "dce"});
  EXPECT_NO_THROW(check_form(*circuit, Form::Low));
}

}  // namespace
}  // namespace hgdb::passes
