#include <gtest/gtest.h>

#include "ir/parser.h"
#include "ir/printer.h"
#include "passes/pass.h"

namespace hgdb::passes {
namespace {

using namespace ir;

/// Runs unroll + lower + ssa (the High -> Low pipeline without opts).
std::unique_ptr<Circuit> to_low(const char* text) {
  auto circuit = parse_circuit(text);
  PassManager manager;
  manager.add(create_unroll_loops_pass());
  manager.add(create_lower_aggregates_pass());
  manager.add(create_ssa_pass());
  manager.run(*circuit);
  return circuit;
}

std::vector<const NodeStmt*> nodes_of(const Circuit& circuit) {
  std::vector<const NodeStmt*> out;
  visit_stmts(circuit.top()->body(), [&](const Stmt& stmt) {
    if (stmt.kind() == StmtKind::Node) {
      out.push_back(static_cast<const NodeStmt*>(&stmt));
    }
  });
  return out;
}

// -- EXP-6: the paper's Listing 1 -> Listing 2 transformation ----------------

constexpr const char* kListing1 = R"(circuit Listing
  module Listing
    input data : UInt<8>[2]
    output out : UInt<8>
    wire sum : UInt<8> @[listing.cc 1 1]
    connect sum = UInt<8>(0) @[listing.cc 1 5]
    for i = 0 to 2 @[listing.cc 2 1]
      when neq(rem(data[i], UInt<8>(2)), UInt<8>(0)) @[listing.cc 3 3]
        connect sum = add(sum, data[i]) @[listing.cc 4 5]
      end
    end
    connect out = sum @[listing.cc 6 1]
  end
end
)";

TEST(SsaListing, VariableRenamedPerAssignment) {
  auto circuit = to_low(kListing1);
  // sum is renamed per definition like the paper's Listing 2 (sum0, sum1,
  // sum2, ...). The when-merge muxes share the same numbering (sum2 and
  // sum4 here are the phi joins), so the explicit assignments land on
  // sum0, sum1 and sum3.
  std::vector<std::string> sum_nodes;
  std::vector<std::string> all_sum_nodes;
  for (const auto* node : nodes_of(*circuit)) {
    if (node->source_name != "sum") continue;
    all_sum_nodes.push_back(node->name);
    if (!node->synthetic) sum_nodes.push_back(node->name);
  }
  EXPECT_EQ(sum_nodes, (std::vector<std::string>{"sum0", "sum1", "sum3"}));
  EXPECT_EQ(all_sum_nodes, (std::vector<std::string>{"sum0", "sum1", "sum2",
                                                     "sum3", "sum4"}));
}

TEST(SsaListing, OneSourceLineYieldsTwoBreakpoints) {
  auto circuit = to_low(kListing1);
  // Line 4 (sum += data[i]) must exist twice with distinct enables.
  std::vector<const NodeStmt*> line4;
  for (const auto* node : nodes_of(*circuit)) {
    if (node->loc.line == 4 && !node->synthetic) line4.push_back(node);
  }
  ASSERT_EQ(line4.size(), 2u);
  ASSERT_NE(line4[0]->enable, nullptr);
  ASSERT_NE(line4[1]->enable, nullptr);
  EXPECT_NE(line4[0]->enable->str(), line4[1]->enable->str());
}

TEST(SsaListing, EnableConditionsReferenceTheWhenConditions) {
  auto circuit = to_low(kListing1);
  // The when conditions become named nodes; the line-4 enables are refs to
  // them (AND-reduction of a one-deep condition stack).
  std::vector<std::string> cond_nodes;
  for (const auto* node : nodes_of(*circuit)) {
    if (node->loc.line == 3 && !node->synthetic) cond_nodes.push_back(node->name);
  }
  ASSERT_EQ(cond_nodes.size(), 2u);
  std::vector<std::string> enables;
  for (const auto* node : nodes_of(*circuit)) {
    if (node->loc.line == 4 && !node->synthetic) {
      enables.push_back(node->enable->str());
    }
  }
  EXPECT_EQ(enables[0], cond_nodes[0]);
  EXPECT_EQ(enables[1], cond_nodes[1]);
}

TEST(SsaListing, ScopeAnnotationsMapIncomingValues) {
  auto circuit = to_low(kListing1);
  // At the first line-4 breakpoint, `sum` must read sum0 (the value BEFORE
  // the statement executes — paper: "we should fetch the value of sum0 to
  // represent sum" at the first mapped statement).
  const NodeStmt* first_line4 = nullptr;
  for (const auto* node : nodes_of(*circuit)) {
    if (node->loc.line == 4 && !node->synthetic) {
      first_line4 = node;
      break;
    }
  }
  ASSERT_NE(first_line4, nullptr);
  bool found = false;
  for (const auto& annotation : circuit->annotations()) {
    if (annotation.kind != "hgdb.scope" ||
        annotation.target != first_line4->name) {
      continue;
    }
    found = true;
    const auto vars = annotation.payload.get("vars");
    ASSERT_TRUE(vars.has_value());
    EXPECT_EQ(vars->get().get_string("sum"), "sum0");
    const auto constants = annotation.payload.get("constants");
    ASSERT_TRUE(constants.has_value());
    EXPECT_EQ(constants->get().get_int("i"), 0);
  }
  EXPECT_TRUE(found);
}

TEST(SsaListing, PhiJoinsAreSyntheticMuxes) {
  auto circuit = to_low(kListing1);
  int phi_count = 0;
  for (const auto* node : nodes_of(*circuit)) {
    if (node->synthetic && node->source_name == "sum") {
      ++phi_count;
      EXPECT_EQ(node->value->kind(), ExprKind::Prim);
      EXPECT_EQ(static_cast<const PrimExpr&>(*node->value).op(), PrimOp::Mux);
    }
  }
  EXPECT_EQ(phi_count, 2);  // one join per when
}

// -- general SSA behaviour ----------------------------------------------------

TEST(Ssa, LowFormHasSingleAssignment) {
  auto circuit = to_low(kListing1);
  EXPECT_NO_THROW(check_form(*circuit, Form::Low));
}

TEST(Ssa, WhenElseMergesWithMux) {
  auto circuit = to_low(R"(circuit T
  module T
    input c : UInt<1>
    output o : UInt<8>
    wire t : UInt<8>
    when c
      connect t = UInt<8>(1)
    else
      connect t = UInt<8>(2)
    end
    connect o = t
  end
end
)");
  // Find the phi and check both arms flow in.
  const NodeStmt* phi = nullptr;
  for (const auto* node : nodes_of(*circuit)) {
    if (node->synthetic) phi = node;
  }
  ASSERT_NE(phi, nullptr);
  const auto& mux_expr = static_cast<const PrimExpr&>(*phi->value);
  EXPECT_EQ(mux_expr.op(), PrimOp::Mux);
  EXPECT_EQ(mux_expr.operands()[1]->str(), "t0");
  EXPECT_EQ(mux_expr.operands()[2]->str(), "t1");
}

TEST(Ssa, RegisterReadsSeeOldValue) {
  auto circuit = to_low(R"(circuit T
  module T
    input clock : Clock
    output o : UInt<8>
    reg r : UInt<8> clock clock
    connect r = add(r, UInt<8>(1))
    connect o = r
  end
end
)");
  // The next-value node reads ref(r), not an SSA rename.
  bool found = false;
  for (const auto* node : nodes_of(*circuit)) {
    if (node->name == "r_next0") {
      EXPECT_EQ(node->value->str(), "add(r, UInt<8>(1))");
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Ssa, ConditionalRegisterAssignHoldsByDefault) {
  auto circuit = to_low(R"(circuit T
  module T
    input clock : Clock
    input c : UInt<1>
    output o : UInt<8>
    reg r : UInt<8> clock clock
    when c
      connect r = add(r, UInt<8>(1))
    end
    connect o = r
  end
end
)");
  // The final connect to r must be a mux(c, r+1, r) — hold on else.
  const ConnectStmt* final_connect = nullptr;
  visit_stmts(circuit->top()->body(), [&](const Stmt& stmt) {
    if (stmt.kind() == StmtKind::Connect) {
      const auto& connect = static_cast<const ConnectStmt&>(stmt);
      if (connect.lhs->str() == "r") final_connect = &connect;
    }
  });
  ASSERT_NE(final_connect, nullptr);
  // Value should reference the synthetic phi holding mux(cond, next, r).
  const auto* phi = nodes_of(*circuit).back();
  for (const auto* node : nodes_of(*circuit)) {
    if (node->synthetic) phi = node;
  }
  const auto& mux_expr = static_cast<const PrimExpr&>(*phi->value);
  EXPECT_EQ(mux_expr.operands()[2]->str(), "r");
}

TEST(Ssa, ReadBeforeAssignmentFails) {
  EXPECT_THROW(to_low(R"(circuit T
  module T
    output o : UInt<8>
    wire t : UInt<8>
    node x = add(t, UInt<8>(1))
    connect t = UInt<8>(2)
    connect o = x
  end
end
)"),
               std::runtime_error);
}

TEST(Ssa, PartiallyAssignedReadFails) {
  EXPECT_THROW(to_low(R"(circuit T
  module T
    input c : UInt<1>
    output o : UInt<8>
    wire t : UInt<8>
    when c
      connect t = UInt<8>(1)
    end
    connect o = t
  end
end
)"),
               std::runtime_error);
}

TEST(Ssa, UnassignedOutputFails) {
  EXPECT_THROW(to_low(R"(circuit T
  module T
    input a : UInt<8>
    output o : UInt<8>
    node t = add(a, UInt<8>(1))
  end
end
)"),
               std::runtime_error);
}

TEST(Ssa, ConnectToInputPortFails) {
  EXPECT_THROW(to_low(R"(circuit T
  module T
    input a : UInt<8>
    output o : UInt<8>
    connect a = UInt<8>(1)
    connect o = a
  end
end
)"),
               std::runtime_error);
}

TEST(Ssa, LastConnectWinsOnPorts) {
  auto circuit = to_low(R"(circuit T
  module T
    input a : UInt<8>
    output o : UInt<8>
    connect o = UInt<8>(1)
    connect o = a
  end
end
)");
  const ConnectStmt* final_connect = nullptr;
  visit_stmts(circuit->top()->body(), [&](const Stmt& stmt) {
    if (stmt.kind() == StmtKind::Connect) {
      const auto& connect = static_cast<const ConnectStmt&>(stmt);
      if (connect.lhs->str() == "o") final_connect = &connect;
    }
  });
  ASSERT_NE(final_connect, nullptr);
  // The port's final value is the SSA node of the *last* assignment.
  EXPECT_EQ(final_connect->rhs->str(), "o_ssa1");
}

TEST(Ssa, WidthCoercionOnConnect) {
  auto circuit = to_low(R"(circuit T
  module T
    input a : UInt<4>
    output o : UInt<8>
    connect o = a
  end
end
)");
  bool found_pad = false;
  for (const auto* node : nodes_of(*circuit)) {
    if (node->value->str() == "pad(a, 8)") found_pad = true;
  }
  EXPECT_TRUE(found_pad);
}

TEST(Ssa, GenvarAnnotationsEmitted) {
  auto circuit = to_low(kListing1);
  bool sum_genvar = false;
  for (const auto& annotation : circuit->annotations()) {
    if (annotation.kind == "hgdb.genvar" &&
        annotation.payload.get_string("name") == "sum") {
      // The generator variable maps to the final SSA value of sum (the
      // last phi join of the unrolled loop).
      EXPECT_EQ(annotation.target, "sum4");
      sum_genvar = true;
    }
  }
  EXPECT_TRUE(sum_genvar);
}

TEST(Ssa, InstanceInputsGetFinalConnects) {
  auto circuit = to_low(R"(circuit Top
  module Child
    input in : UInt<8>
    output out : UInt<8>
    connect out = not(in)
  end
  module Top
    input c : UInt<1>
    input a : UInt<8>
    output o : UInt<8>
    inst u of Child
    connect u.in = a
    when c
      connect u.in = not(a)
    end
    connect o = u.out
  end
end
)");
  const ConnectStmt* instance_connect = nullptr;
  visit_stmts(circuit->top()->body(), [&](const Stmt& stmt) {
    if (stmt.kind() == StmtKind::Connect) {
      const auto& connect = static_cast<const ConnectStmt&>(stmt);
      if (connect.lhs->str() == "u.in") instance_connect = &connect;
    }
  });
  ASSERT_NE(instance_connect, nullptr);
}

}  // namespace
}  // namespace hgdb::passes
