#include <gtest/gtest.h>

#include "ir/parser.h"
#include "ir/printer.h"
#include "passes/pass.h"

namespace hgdb::passes {
namespace {

using namespace ir;

std::unique_ptr<Circuit> unrolled(const char* text) {
  auto circuit = parse_circuit(text);
  auto pass = create_unroll_loops_pass();
  pass->run(*circuit);
  return circuit;
}

TEST(UnrollLoops, ReplacesLoopWithIterationCopies) {
  auto circuit = unrolled(R"(circuit T
  module T
    input v : UInt<8>[4]
    output o : UInt<8>
    wire sum : UInt<8>
    connect sum = UInt<8>(0)
    for i = 0 to 4 @[gen.cc 20 1]
      connect sum = add(sum, v[i]) @[gen.cc 21 3]
    end
    connect o = sum
  end
end
)");
  // wire + init connect + 4 unrolled connects + output connect
  EXPECT_EQ(circuit->top()->body().stmts.size(), 7u);
  int for_count = 0;
  visit_stmts(circuit->top()->body(), [&](const Stmt& stmt) {
    if (stmt.kind() == StmtKind::For) ++for_count;
  });
  EXPECT_EQ(for_count, 0);
}

TEST(UnrollLoops, SubstitutesLoopVariableAsConstantIndex) {
  auto circuit = unrolled(R"(circuit T
  module T
    input v : UInt<8>[4]
    output o : UInt<8>
    wire sum : UInt<8>
    connect sum = UInt<8>(0)
    for i = 0 to 4
      connect sum = add(sum, v[i])
    end
    connect o = sum
  end
end
)");
  // After substitution v[i] must be a constant SubIndex, not SubAccess.
  const auto& iteration2 =
      static_cast<const ConnectStmt&>(*circuit->top()->body().stmts[4]);
  EXPECT_EQ(iteration2.rhs->str(), "add(sum, v[2])");
}

TEST(UnrollLoops, PreservesSourceLocatorsAcrossIterations) {
  auto circuit = unrolled(R"(circuit T
  module T
    output o : UInt<8>
    wire sum : UInt<8>
    connect sum = UInt<8>(0)
    for i = 0 to 3
      connect sum = add(sum, UInt<8>(1)) @[gen.cc 21 3]
    end
    connect o = sum
  end
end
)");
  // One source line -> three statements with the same locator: the basis
  // for multiple emulated breakpoints per line (paper Sec. 3.1).
  int same_loc = 0;
  visit_stmts(circuit->top()->body(), [&](const Stmt& stmt) {
    if (stmt.loc.valid() && stmt.loc.line == 21) ++same_loc;
  });
  EXPECT_EQ(same_loc, 3);
}

TEST(UnrollLoops, RecordsLoopBindings) {
  auto circuit = unrolled(R"(circuit T
  module T
    output o : UInt<8>
    wire sum : UInt<8>
    connect sum = UInt<8>(0)
    for i = 0 to 3
      connect sum = add(sum, UInt<8>(1)) @[gen.cc 21 3]
    end
    connect o = sum
  end
end
)");
  std::vector<int64_t> bindings;
  visit_stmts(circuit->top()->body(), [&](const Stmt& stmt) {
    if (stmt.kind() == StmtKind::Connect && stmt.loc.line == 21) {
      ASSERT_EQ(stmt.loop_bindings.size(), 1u);
      EXPECT_EQ(stmt.loop_bindings[0].first, "i");
      bindings.push_back(stmt.loop_bindings[0].second);
    }
  });
  EXPECT_EQ(bindings, (std::vector<int64_t>{0, 1, 2}));
}

TEST(UnrollLoops, NestedLoopsMultiplyAndStackBindings) {
  auto circuit = unrolled(R"(circuit T
  module T
    output o : UInt<8>
    wire sum : UInt<8>
    connect sum = UInt<8>(0)
    for i = 0 to 2
      for j = 0 to 3
        connect sum = add(sum, UInt<8>(1)) @[gen.cc 30 5]
      end
    end
    connect o = sum
  end
end
)");
  int copies = 0;
  visit_stmts(circuit->top()->body(), [&](const Stmt& stmt) {
    if (stmt.kind() == StmtKind::Connect && stmt.loc.line == 30) {
      ++copies;
      EXPECT_EQ(stmt.loop_bindings.size(), 2u);
    }
  });
  EXPECT_EQ(copies, 6);
}

TEST(UnrollLoops, RenamesDeclarationsPerIteration) {
  auto circuit = unrolled(R"(circuit T
  module T
    input v : UInt<8>[2]
    output o : UInt<8>
    wire sum : UInt<8>
    connect sum = UInt<8>(0)
    for i = 0 to 2
      node tmp = add(v[i], UInt<8>(1))
      connect sum = add(sum, tmp)
    end
    connect o = sum
  end
end
)");
  std::vector<std::string> node_names;
  visit_stmts(circuit->top()->body(), [&](const Stmt& stmt) {
    if (stmt.kind() == StmtKind::Node) {
      node_names.push_back(static_cast<const NodeStmt&>(stmt).name);
    }
  });
  EXPECT_EQ(node_names, (std::vector<std::string>{"tmp_0", "tmp_1"}));
  // References to tmp inside each iteration follow the rename.
  const auto& second_use =
      static_cast<const ConnectStmt&>(*circuit->top()->body().stmts[5]);
  EXPECT_EQ(second_use.rhs->str(), "add(sum, tmp_1)");
}

TEST(UnrollLoops, LoopInsideWhenIsUnrolled) {
  auto circuit = unrolled(R"(circuit T
  module T
    input c : UInt<1>
    output o : UInt<8>
    wire sum : UInt<8>
    connect sum = UInt<8>(0)
    when c
      for i = 0 to 2
        connect sum = add(sum, UInt<8>(1))
      end
    end
    connect o = sum
  end
end
)");
  const auto& when = static_cast<const WhenStmt&>(*circuit->top()->body().stmts[2]);
  EXPECT_EQ(when.then_body->stmts.size(), 2u);
}

TEST(UnrollLoops, EmptyRangeProducesNothing) {
  auto circuit = unrolled(R"(circuit T
  module T
    output o : UInt<8>
    wire sum : UInt<8>
    connect sum = UInt<8>(0)
    for i = 3 to 3
      connect sum = add(sum, UInt<8>(1))
    end
    connect o = sum
  end
end
)");
  EXPECT_EQ(circuit->top()->body().stmts.size(), 3u);
}

}  // namespace
}  // namespace hgdb::passes
