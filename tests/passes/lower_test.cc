#include <gtest/gtest.h>

#include "ir/parser.h"
#include "ir/printer.h"
#include "passes/pass.h"

namespace hgdb::passes {
namespace {

using namespace ir;

std::unique_ptr<Circuit> lowered(const char* text) {
  auto circuit = parse_circuit(text);
  PassManager manager;
  manager.add(create_unroll_loops_pass());
  manager.add(create_lower_aggregates_pass());
  manager.run(*circuit);
  return circuit;
}

TEST(LowerAggregates, FlattensBundlePorts) {
  auto circuit = lowered(R"(circuit T
  module T
    input io : {valid : UInt<1>, data : UInt<8>}
    output o : UInt<8>
    connect o = mux(io.valid, io.data, UInt<8>(0))
  end
end
)");
  EXPECT_NE(circuit->top()->port("io_valid"), nullptr);
  EXPECT_NE(circuit->top()->port("io_data"), nullptr);
  EXPECT_EQ(circuit->top()->port("io"), nullptr);
  const auto& connect =
      static_cast<const ConnectStmt&>(*circuit->top()->body().stmts[0]);
  EXPECT_EQ(connect.rhs->str(), "mux(io_valid, io_data, UInt<8>(0))");
}

TEST(LowerAggregates, FlipLeafReversesPortDirection) {
  auto circuit = lowered(R"(circuit T
  module T
    output io : {data : UInt<8>, flip ready : UInt<1>}
    output o : UInt<1>
    connect io.data = UInt<8>(1)
    connect o = io.ready
  end
end
)");
  const Port* data = circuit->top()->port("io_data");
  const Port* ready = circuit->top()->port("io_ready");
  ASSERT_NE(data, nullptr);
  ASSERT_NE(ready, nullptr);
  EXPECT_EQ(data->direction, Direction::Output);
  EXPECT_EQ(ready->direction, Direction::Input);  // flipped leaf of output
}

TEST(LowerAggregates, FlattensVectorWiresWithSourceNames) {
  auto circuit = lowered(R"(circuit T
  module T
    output o : UInt<8>
    wire v : UInt<8>[2] @[gen.cc 5 1]
    connect v[0] = UInt<8>(1)
    connect v[1] = UInt<8>(2)
    connect o = add(v[0], v[1])
  end
end
)");
  std::vector<std::string> wire_names;
  std::vector<std::string> source_names;
  visit_stmts(circuit->top()->body(), [&](const Stmt& stmt) {
    if (stmt.kind() == StmtKind::Wire) {
      wire_names.push_back(static_cast<const WireStmt&>(stmt).name);
      source_names.push_back(static_cast<const WireStmt&>(stmt).source_name);
    }
  });
  EXPECT_EQ(wire_names, (std::vector<std::string>{"v_0", "v_1"}));
  EXPECT_EQ(source_names, (std::vector<std::string>{"v[0]", "v[1]"}));
}

TEST(LowerAggregates, RecordsFlatteningAnnotations) {
  auto circuit = lowered(R"(circuit T
  module T
    input io : {a : {b : UInt<4>}}
    output o : UInt<4>
    connect o = io.a.b
  end
end
)");
  bool found = false;
  for (const auto& annotation : circuit->annotations()) {
    if (annotation.kind == "hgdb.flat" && annotation.target == "io_a_b") {
      EXPECT_EQ(annotation.payload.get_string("source"), "io.a.b");
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(LowerAggregates, DynamicAccessBecomesMuxChain) {
  auto circuit = lowered(R"(circuit T
  module T
    input v : UInt<8>[4]
    input i : UInt<2>
    output o : UInt<8>
    connect o = v[i]
  end
end
)");
  const auto& connect =
      static_cast<const ConnectStmt&>(*circuit->top()->body().stmts[0]);
  // idx==0 ? v_0 : idx==1 ? v_1 : idx==2 ? v_2 : v_3
  EXPECT_EQ(connect.rhs->str(),
            "mux(eq(i, UInt<2>(0)), v_0, mux(eq(i, UInt<2>(1)), v_1, "
            "mux(eq(i, UInt<2>(2)), v_2, v_3)))");
}

TEST(LowerAggregates, WholeBundleConnectExpandsLeafwise) {
  auto circuit = lowered(R"(circuit T
  module T
    input a : {x : UInt<4>, y : UInt<4>}
    output b : {x : UInt<4>, y : UInt<4>}
    connect b = a
  end
end
)");
  std::vector<std::string> connects;
  visit_stmts(circuit->top()->body(), [&](const Stmt& stmt) {
    if (stmt.kind() == StmtKind::Connect) {
      const auto& connect = static_cast<const ConnectStmt&>(stmt);
      connects.push_back(connect.lhs->str() + "=" + connect.rhs->str());
    }
  });
  EXPECT_EQ(connects, (std::vector<std::string>{"b_x=a_x", "b_y=a_y"}));
}

TEST(LowerAggregates, FlippedBundleConnectReversesLeafDirection) {
  auto circuit = lowered(R"(circuit Top
  module Child
    input io : {data : UInt<8>, flip ready : UInt<1>}
    output o : UInt<8>
    connect io.ready = UInt<1>(1)
    connect o = io.data
  end
  module Top
    output io : {data : UInt<8>, flip ready : UInt<1>}
    output o : UInt<1>
    inst u of Child
    connect u.io = io
    connect io.data = UInt<8>(5)
    connect o = io.ready
  end
end
)");
  // connect u.io = io expands to: u.io_data = io_data (forward) and
  // io_ready = u.io_ready (reversed).
  std::vector<std::string> connects;
  visit_stmts(circuit->top()->body(), [&](const Stmt& stmt) {
    if (stmt.kind() == StmtKind::Connect) {
      const auto& connect = static_cast<const ConnectStmt&>(stmt);
      connects.push_back(connect.lhs->str() + "=" + connect.rhs->str());
    }
  });
  EXPECT_NE(std::find(connects.begin(), connects.end(), "u.io_data=io_data"),
            connects.end());
  EXPECT_NE(std::find(connects.begin(), connects.end(), "io_ready=u.io_ready"),
            connects.end());
}

TEST(LowerAggregates, VectorRegistersSplitWithZeroInit) {
  auto circuit = lowered(R"(circuit T
  module T
    input clock : Clock
    input rst : UInt<1>
    output o : UInt<8>
    reg v : UInt<8>[2] clock clock reset rst init UInt<16>(0)
    connect v[0] = add(v[0], UInt<8>(1))
    connect v[1] = add(v[1], v[0])
    connect o = v[1]
  end
end
)");
  int reg_count = 0;
  visit_stmts(circuit->top()->body(), [&](const Stmt& stmt) {
    if (stmt.kind() == StmtKind::Reg) {
      ++reg_count;
      const auto& reg = static_cast<const RegStmt&>(stmt);
      EXPECT_TRUE(reg.type->is_ground());
      ASSERT_NE(reg.init, nullptr);
      EXPECT_EQ(reg.init->width(), 8u);
    }
  });
  EXPECT_EQ(reg_count, 2);
}

TEST(LowerAggregates, MidFormPassesCheck) {
  auto circuit = lowered(R"(circuit T
  module T
    input io : {v : UInt<1>, d : UInt<8>[2]}
    output o : UInt<8>
    connect o = mux(io.v, io.d[0], io.d[1])
  end
end
)");
  EXPECT_NO_THROW(check_form(*circuit, Form::Mid));
}

TEST(LowerAggregates, AggregateTypeMismatchRejected) {
  EXPECT_THROW(lowered(R"(circuit T
  module T
    input a : {x : UInt<4>}
    output b : {x : UInt<8>}
    connect b = a
  end
end
)"),
               std::runtime_error);
}

}  // namespace
}  // namespace hgdb::passes
