#include "netlist/netlist.h"

#include <gtest/gtest.h>

#include "frontend/compile.h"
#include "ir/parser.h"
#include "netlist/verilog.h"

namespace hgdb::netlist {
namespace {

Netlist elaborate_text(const char* text) {
  auto result = frontend::compile(ir::parse_circuit(text));
  return std::move(result.netlist);
}

TEST(Netlist, TopPortsBecomeInputsAndOutputs) {
  Netlist netlist = elaborate_text(R"(circuit T
  module T
    input clock : Clock
    input a : UInt<8>
    output o : UInt<8>
    connect o = add(a, UInt<8>(1))
  end
end
)");
  auto a = netlist.signal_id("T.a");
  auto o = netlist.signal_id("T.o");
  ASSERT_TRUE(a && o);
  EXPECT_EQ(netlist.signal(*a).kind, SignalKind::Input);
  EXPECT_EQ(netlist.signal(*o).kind, SignalKind::Output);
  EXPECT_EQ(netlist.signal(*a).width, 8u);
}

TEST(Netlist, ClockInputsDiscovered) {
  Netlist netlist = elaborate_text(R"(circuit T
  module T
    input clock : Clock
    input a : UInt<8>
    output o : UInt<8>
    reg r : UInt<8> clock clock
    connect r = a
    connect o = r
  end
end
)");
  ASSERT_EQ(netlist.clocks().size(), 1u);
  EXPECT_EQ(netlist.signal(netlist.clocks()[0]).name, "T.clock");
  EXPECT_TRUE(netlist.signal(netlist.clocks()[0]).is_clock);
}

TEST(Netlist, HierarchicalNamesAndInstancePaths) {
  Netlist netlist = elaborate_text(R"(circuit Top
  module Child
    input in : UInt<8>
    output out : UInt<8>
    node t = not(in)
    connect out = t
  end
  module Top
    input a : UInt<8>
    output o : UInt<8>
    inst u of Child
    connect u.in = a
    connect o = u.out
  end
end
)");
  EXPECT_TRUE(netlist.signal_id("Top.u.t").has_value());
  EXPECT_TRUE(netlist.signal_id("Top.u.in").has_value());
  EXPECT_EQ(netlist.instance_paths(),
            (std::vector<std::string>{"Top", "Top.u"}));
}

TEST(Netlist, RegisterTracksClockThroughInstanceBoundary) {
  Netlist netlist = elaborate_text(R"(circuit Top
  module Child
    input clock : Clock
    input in : UInt<8>
    output out : UInt<8>
    reg r : UInt<8> clock clock
    connect r = in
    connect out = r
  end
  module Top
    input clock : Clock
    input a : UInt<8>
    output o : UInt<8>
    inst u of Child
    connect u.clock = clock
    connect u.in = a
    connect o = u.out
  end
end
)");
  ASSERT_EQ(netlist.registers().size(), 1u);
  // The register's clock resolved through the Copy chain to the top input.
  EXPECT_EQ(netlist.signal(netlist.registers()[0].clock).name, "Top.clock");
}

TEST(Netlist, CombinationalLoopDetected) {
  auto circuit = ir::parse_circuit(R"(circuit T
  module T
    output o : UInt<8>
    wire a : UInt<8>
    wire b : UInt<8>
    connect a = UInt<8>(0)
    connect b = add(a, UInt<8>(1))
    connect a = add(b, UInt<8>(1))
    connect b = add(a, UInt<8>(1))
    connect o = b
  end
end
)");
  // Procedural wires make this legal (SSA resolves it); build a REAL loop
  // through two instances instead.
  auto looped = ir::parse_circuit(R"(circuit Top
  module Inv
    input in : UInt<1>
    output out : UInt<1>
    connect out = not(in)
  end
  module Top
    output o : UInt<1>
    inst a of Inv
    inst b of Inv
    connect a.in = b.out
    connect b.in = a.out
    connect o = a.out
  end
end
)");
  EXPECT_THROW(frontend::compile(std::move(looped)), std::runtime_error);
  EXPECT_NO_THROW(frontend::compile(std::move(circuit)));
}

TEST(Netlist, InstructionsAreTopologicallyOrdered) {
  Netlist netlist = elaborate_text(R"(circuit Top
  module Child
    input in : UInt<8>
    output out : UInt<8>
    connect out = not(in)
  end
  module Top
    input a : UInt<8>
    output o : UInt<8>
    inst u of Child
    node pre = add(a, UInt<8>(1))
    connect u.in = pre
    node post = add(u.out, UInt<8>(1))
    connect o = post
  end
end
)");
  // Every operand of every instruction must be written earlier (or be an
  // input/register).
  std::vector<bool> written(netlist.slot_count(), false);
  for (const auto& instr : netlist.instrs()) {
    for (uint32_t src : instr.operands) {
      const auto kind = netlist.signal(src).kind;
      if (kind == SignalKind::Input || kind == SignalKind::Register) continue;
      EXPECT_TRUE(written[src]) << "use-before-def of slot " << src;
    }
    written[instr.dst] = true;
  }
}

TEST(Verilog, EmitsReadableModule) {
  auto result = frontend::compile(ir::parse_circuit(R"(circuit T
  module T
    input clock : Clock
    input a : UInt<8>
    output o : UInt<8>
    reg r : UInt<8> clock clock
    connect r = add(r, a)
    connect o = r
  end
end
)"));
  const std::string verilog = emit_verilog(*result.circuit);
  EXPECT_NE(verilog.find("module T("), std::string::npos);
  EXPECT_NE(verilog.find("input [7:0] a"), std::string::npos);
  EXPECT_NE(verilog.find("always @(posedge clock)"), std::string::npos);
  EXPECT_NE(verilog.find("endmodule"), std::string::npos);
}

TEST(Verilog, ShowsFlattenedControlFlowLikeListing4) {
  auto result = frontend::compile(ir::parse_circuit(R"(circuit T
  module T
    input c : UInt<1>
    input a : UInt<8>
    output o : UInt<8>
    wire t : UInt<8>
    connect t = UInt<8>(0)
    when c
      connect t = a
    end
    connect o = t
  end
end
)"));
  const std::string verilog = emit_verilog(*result.circuit);
  // The when is gone; a ternary mux remains — the "obfuscated RTL" the
  // paper's Listing 4 illustrates.
  EXPECT_NE(verilog.find("?"), std::string::npos);
  // No `when` construct survives (the compiler-named "when_cond0" wire is
  // exactly the kind of artifact Listing 4 complains about).
  EXPECT_EQ(verilog.find("when ("), std::string::npos);
  EXPECT_NE(verilog.find("when_cond0"), std::string::npos);
}

}  // namespace
}  // namespace hgdb::netlist
