// Negative-compile fixture: touching HGDB_GUARDED_BY state without the
// lock, and calling an HGDB_REQUIRES method without holding its mutex,
// must BOTH fail under `clang -Werror=thread-safety`. CMake registers
// this file with WILL_FAIL: the test passes when the compile errors out.
//
// If this file ever compiles cleanly under clang, the annotation macros
// have rotted into no-ops — which is exactly the regression this guards.

#include "common/checked_mutex.h"

namespace {

class Account {
 public:
  void deposit(int amount) {
    balance_ += amount;  // guarded_by violation: mutex_ not held
  }

  void audited_adjust(int amount) HGDB_REQUIRES(mutex_) { balance_ += amount; }

  void adjust_without_lock() {
    audited_adjust(1);  // requires_capability violation: caller holds nothing
  }

 private:
  hgdb::common::StateMutex mutex_{"test::account"};
  int balance_ HGDB_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Account account;
  account.deposit(1);
  account.adjust_without_lock();
  return 0;
}
