// MetricsRegistry semantics: lock-free counter/gauge/histogram updates,
// power-of-two bucket quantiles, multi-thread conservation (run under
// TSan in CI), Prometheus text exposition, and the JSON snapshot the v2
// `metrics` command serves.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/json.h"
#include "obs/metrics.h"

namespace hgdb::obs {
namespace {

TEST(Counter, AddsAndReads) {
  Counter counter;
  EXPECT_EQ(counter.value(), 0u);
  counter.add();
  counter.add(41);
  EXPECT_EQ(counter.value(), 42u);
}

TEST(Gauge, MovesBothDirections) {
  Gauge gauge;
  gauge.set(10);
  gauge.add(-3);
  EXPECT_EQ(gauge.value(), 7);
  gauge.set(-1);
  EXPECT_EQ(gauge.value(), -1);
}

// -- histogram buckets ---------------------------------------------------------

TEST(Histogram, BucketIndexIsBitWidth) {
  EXPECT_EQ(Histogram::bucket_index(0), 0u);
  EXPECT_EQ(Histogram::bucket_index(1), 1u);
  EXPECT_EQ(Histogram::bucket_index(2), 2u);
  EXPECT_EQ(Histogram::bucket_index(3), 2u);
  EXPECT_EQ(Histogram::bucket_index(4), 3u);
  EXPECT_EQ(Histogram::bucket_index(1023), 10u);
  EXPECT_EQ(Histogram::bucket_index(1024), 11u);
  // Everything past the finite boundaries collapses into the last bucket.
  EXPECT_EQ(Histogram::bucket_index(UINT64_MAX), Histogram::kBuckets - 1);
}

TEST(Histogram, BucketUpperBoundsArePowerOfTwoMinusOne) {
  EXPECT_EQ(Histogram::bucket_upper_bound(0), 0u);
  EXPECT_EQ(Histogram::bucket_upper_bound(1), 1u);
  EXPECT_EQ(Histogram::bucket_upper_bound(2), 3u);
  EXPECT_EQ(Histogram::bucket_upper_bound(10), 1023u);
  EXPECT_EQ(Histogram::bucket_upper_bound(Histogram::kBuckets - 1),
            UINT64_MAX);
}

TEST(Histogram, PercentilesReturnBucketUpperBounds) {
  Histogram histogram;
  EXPECT_EQ(histogram.percentile(0.99), 0u);  // empty

  // 98 fast samples and 2 slow outliers: p50/p95 stay in the fast bucket,
  // p99 lands on the outliers' bucket boundary.
  for (int i = 0; i < 98; ++i) histogram.record(100);    // bucket 7, ub 127
  histogram.record(5000);                                // bucket 13
  histogram.record(6000);                                // bucket 13, ub 8191
  EXPECT_EQ(histogram.count(), 100u);
  EXPECT_EQ(histogram.sum(), 98u * 100 + 5000 + 6000);
  EXPECT_EQ(histogram.percentile(0.50), 127u);
  EXPECT_EQ(histogram.percentile(0.95), 127u);
  EXPECT_EQ(histogram.percentile(0.99), 8191u);

  const auto snapshot = histogram.snapshot();
  EXPECT_EQ(snapshot.count, 100u);
  EXPECT_EQ(snapshot.buckets[7], 98u);
  EXPECT_EQ(snapshot.buckets[13], 2u);
  EXPECT_EQ(snapshot.p50, 127u);
  EXPECT_EQ(snapshot.p99, 8191u);
}

TEST(Histogram, ZeroValuesLandInBucketZero) {
  Histogram histogram;
  histogram.record(0);
  histogram.record(0);
  EXPECT_EQ(histogram.snapshot().buckets[0], 2u);
  EXPECT_EQ(histogram.percentile(0.99), 0u);
}

// The concurrency contract: record() from N threads loses nothing. Run
// under -fsanitize=thread in the CI TSan job, this also proves the
// relaxed-atomic scheme is race-free.
TEST(Histogram, ConcurrentRecordingConservesEverySample) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  Histogram histogram;
  Counter counter;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&histogram, &counter, t] {
      for (int i = 0; i < kPerThread; ++i) {
        histogram.record(static_cast<uint64_t>(t * 1000 + (i % 7)));
        counter.add();
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(counter.value(), uint64_t{kThreads} * kPerThread);
  const auto snapshot = histogram.snapshot();
  EXPECT_EQ(snapshot.count, uint64_t{kThreads} * kPerThread);
  uint64_t bucket_total = 0;
  for (const uint64_t bucket : snapshot.buckets) bucket_total += bucket;
  EXPECT_EQ(bucket_total, snapshot.count);  // every sample is in a bucket

  uint64_t expected_sum = 0;
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kPerThread; ++i) {
      expected_sum += static_cast<uint64_t>(t * 1000 + (i % 7));
    }
  }
  EXPECT_EQ(snapshot.sum, expected_sum);
}

// -- registry ------------------------------------------------------------------

TEST(MetricsRegistry, GetOrCreateReturnsStableReferences) {
  MetricsRegistry registry;
  Counter& first = registry.counter("runtime.clock_edges");
  first.add(5);
  // Crowd the map; the earlier reference must stay valid (node-based map).
  for (int i = 0; i < 100; ++i) {
    registry.counter("filler." + std::to_string(i));
  }
  Counter& again = registry.counter("runtime.clock_edges");
  EXPECT_EQ(&first, &again);
  EXPECT_EQ(first.value(), 5u);
  EXPECT_EQ(registry.size(), 101u);
}

TEST(MetricsRegistry, RemoveDropsTheMetric) {
  MetricsRegistry registry;
  registry.counter("session.subscription.7.events_dropped").add(3);
  EXPECT_EQ(registry.size(), 1u);
  registry.remove("session.subscription.7.events_dropped");
  EXPECT_EQ(registry.size(), 0u);
  // Re-creating starts from zero: the old instance is gone.
  EXPECT_EQ(registry.counter("session.subscription.7.events_dropped").value(),
            0u);
}

/// Parses a Prometheus text page into {metric line -> value} plus the set
/// of `# TYPE` declarations — the shape any scraper depends on.
struct ParsedExposition {
  std::map<std::string, std::string> types;   // name -> counter/gauge/histogram
  std::map<std::string, double> samples;      // full sample key -> value
};

ParsedExposition parse_exposition(const std::string& text) {
  ParsedExposition parsed;
  std::istringstream input(text);
  std::string line;
  while (std::getline(input, line)) {
    if (line.empty()) continue;
    if (line.rfind("# TYPE ", 0) == 0) {
      std::istringstream fields(line.substr(7));
      std::string name, type;
      fields >> name >> type;
      parsed.types[name] = type;
      continue;
    }
    EXPECT_NE(line[0], '#') << "unexpected comment: " << line;
    // "name{labels} value" or "name value"
    const size_t space = line.rfind(' ');
    if (space == std::string::npos) {
      ADD_FAILURE() << "malformed sample line: " << line;
      continue;
    }
    parsed.samples[line.substr(0, space)] =
        std::stod(line.substr(space + 1));
  }
  return parsed;
}

TEST(MetricsRegistry, PrometheusExpositionParsesBackCorrectly) {
  MetricsRegistry registry;
  registry.counter("runtime.clock_edges").add(1234);
  registry.gauge("waveform.block_cache.resident").set(-2);
  Histogram& histogram = registry.histogram("runtime.batch_eval_ns");
  histogram.record(3);    // bucket 2 (le 3)
  histogram.record(100);  // bucket 7 (le 127)
  histogram.record(100);

  const auto parsed = parse_exposition(registry.render_prometheus());

  EXPECT_EQ(parsed.types.at("hgdb_runtime_clock_edges"), "counter");
  EXPECT_EQ(parsed.types.at("hgdb_waveform_block_cache_resident"), "gauge");
  EXPECT_EQ(parsed.types.at("hgdb_runtime_batch_eval_ns"), "histogram");

  EXPECT_EQ(parsed.samples.at("hgdb_runtime_clock_edges"), 1234);
  EXPECT_EQ(parsed.samples.at("hgdb_waveform_block_cache_resident"), -2);

  // Histogram buckets are cumulative and close with +Inf == _count.
  EXPECT_EQ(parsed.samples.at("hgdb_runtime_batch_eval_ns_bucket{le=\"3\"}"),
            1);
  EXPECT_EQ(parsed.samples.at("hgdb_runtime_batch_eval_ns_bucket{le=\"127\"}"),
            3);
  EXPECT_EQ(
      parsed.samples.at("hgdb_runtime_batch_eval_ns_bucket{le=\"+Inf\"}"), 3);
  EXPECT_EQ(parsed.samples.at("hgdb_runtime_batch_eval_ns_count"), 3);
  EXPECT_EQ(parsed.samples.at("hgdb_runtime_batch_eval_ns_sum"), 203);
}

TEST(MetricsRegistry, SnapshotJsonRoundTripsThroughTheParser) {
  MetricsRegistry registry;
  registry.counter("session.requests").add(7);
  registry.gauge("waveform.block_cache.resident").set(4);
  registry.histogram("session.stop_handshake_ns").record(100);

  // dump -> parse round trip: what the v2 `metrics` command and the DAP
  // custom request put on the wire must decode to the same numbers.
  common::Json decoded = common::Json::parse(registry.snapshot_json().dump());
  EXPECT_EQ(decoded["counters"].get_int("session.requests"), 7);
  EXPECT_EQ(decoded["gauges"].get_int("waveform.block_cache.resident"), 4);
  common::Json histogram = decoded["histograms"]["session.stop_handshake_ns"];
  EXPECT_EQ(histogram.get_int("count"), 1);
  EXPECT_EQ(histogram.get_int("sum"), 100);
  EXPECT_EQ(histogram.get_int("p50"), 127);  // bucket 7 upper bound
}

}  // namespace
}  // namespace hgdb::obs
