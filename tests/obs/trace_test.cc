// TraceRecorder semantics: the lock-free span ring (wrap-around keeps the
// newest window), RAII spans, interned dynamic names, concurrent writers
// (exercised under TSan in CI), and the chrome://tracing / Perfetto JSON
// export parsed back through the project's own JSON parser.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "common/json.h"
#include "obs/trace.h"

namespace hgdb::obs {
namespace {

TEST(TraceRecorder, StoppedRecorderRecordsNothing) {
  TraceRecorder recorder(64);
  ASSERT_FALSE(recorder.enabled());
  {
    TraceSpan span(recorder, "runtime", "edge_dispatch");
    span.set_arg(12);
  }
  recorder.record_instant("runtime", "dirty_skips", true, 3);
  // record_instant is unconditional at the recorder level (the macro does
  // the enabled check), so only the span was suppressed.
  EXPECT_EQ(recorder.snapshot().size(), 1u);
  recorder.clear();

  recorder.start();
  { TraceSpan span(recorder, "runtime", "edge_dispatch"); }
  recorder.stop();
  EXPECT_EQ(recorder.snapshot().size(), 1u);
}

TEST(TraceRecorder, SpansAndInstantsCarryTheirFields) {
  TraceRecorder recorder(64);
  recorder.start();
  {
    TraceSpan span(recorder, "session", "stop_handshake");
    span.set_arg(42);
  }
  recorder.record_instant("runtime", "dirty_skips", true, 7);
  recorder.stop();

  const auto events = recorder.snapshot();
  ASSERT_EQ(events.size(), 2u);

  const TraceEvent& span = events[0];
  EXPECT_STREQ(span.category, "session");
  EXPECT_STREQ(span.name, "stop_handshake");
  EXPECT_EQ(span.phase, 'X');
  EXPECT_TRUE(span.has_arg);
  EXPECT_EQ(span.arg, 42u);

  const TraceEvent& instant = events[1];
  EXPECT_EQ(instant.phase, 'i');
  EXPECT_EQ(instant.dur_ns, 0u);
  EXPECT_EQ(instant.arg, 7u);
  EXPECT_GE(instant.ts_ns, span.ts_ns);  // write order preserved
}

TEST(TraceRecorder, RingWrapKeepsTheNewestWindow) {
  TraceRecorder recorder(8);
  recorder.start();
  std::vector<std::string> names;
  names.reserve(20);
  for (int i = 0; i < 20; ++i) {
    names.push_back("event_" + std::to_string(i));
    recorder.record_instant("test", recorder.intern(names.back()));
  }
  recorder.stop();

  EXPECT_EQ(recorder.recorded(), 20u);
  EXPECT_EQ(recorder.dropped(), 12u);  // 20 written - 8 slots
  const auto events = recorder.snapshot();
  ASSERT_EQ(events.size(), 8u);
  // A debugger trace wants the most recent window: 12..19 survive.
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_STREQ(events[i].name, ("event_" + std::to_string(12 + i)).c_str());
  }
}

TEST(TraceRecorder, ClearDiscardsEventsButKeepsLifetimeTotal) {
  TraceRecorder recorder(8);
  recorder.start();
  recorder.record_instant("test", "a");
  recorder.record_instant("test", "b");
  recorder.clear();
  EXPECT_TRUE(recorder.snapshot().empty());
  EXPECT_EQ(recorder.dropped(), 0u);
  EXPECT_EQ(recorder.recorded(), 2u);  // monotonic, like the counters
  recorder.record_instant("test", "c");
  ASSERT_EQ(recorder.snapshot().size(), 1u);
  EXPECT_STREQ(recorder.snapshot()[0].name, "c");
}

TEST(TraceRecorder, InternReturnsOneStablePointerPerString) {
  TraceRecorder recorder(8);
  const std::string dynamic = std::string("eval") + "uate";
  const char* first = recorder.intern(dynamic);
  const char* second = recorder.intern("evaluate");
  EXPECT_EQ(first, second);
  EXPECT_STREQ(first, "evaluate");
}

// Concurrent writers on the lock-free ring: every ticket is claimed once,
// nothing tears. Run under -fsanitize=thread in CI.
TEST(TraceRecorder, ConcurrentWritersLoseNoTickets) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  TraceRecorder recorder(1 << 12);
  recorder.start();
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&recorder] {
      for (int i = 0; i < kPerThread; ++i) {
        TraceSpan span(recorder, "test", "worker_span");
        span.set_arg(static_cast<uint64_t>(i));
      }
    });
  }
  for (auto& thread : threads) thread.join();
  recorder.stop();

  EXPECT_EQ(recorder.recorded(), uint64_t{kThreads} * kPerThread);
  const auto events = recorder.snapshot();
  // The ring ends full, minus a best-effort allowance: a writer stalled
  // for a whole lap can republish an old ticket's seq into a slot a newer
  // ticket already finished, and snapshot() skips such slots. At most one
  // slot per thread can be lost that way.
  EXPECT_GE(events.size(), (size_t{1} << 12) - kThreads);
  EXPECT_LE(events.size(), size_t{1} << 12);
  for (const TraceEvent& event : events) {
    EXPECT_STREQ(event.name, "worker_span");
    EXPECT_EQ(event.phase, 'X');
  }
}

// -- chrome://tracing JSON -----------------------------------------------------

TEST(TraceRecorder, ChromeJsonRoundTripsThroughTheParser) {
  TraceRecorder recorder(64);
  recorder.start();
  {
    TraceSpan span(recorder, "wvx", "block_read");
    span.set_arg(4096);
  }
  recorder.record_instant("runtime", "dirty_skips", true, 5);
  recorder.stop();

  const std::string json = recorder.export_chrome_json();
  common::Json decoded = common::Json::parse(json);

  EXPECT_EQ(decoded.get_string("displayTimeUnit"), "ns");
  common::Json& events = decoded["traceEvents"];
  ASSERT_EQ(events.size(), 2u);

  // Trace-event-format fields Perfetto's importer requires: complete
  // events carry ph:"X" with ts+dur in microseconds; instants ph:"i"
  // with a scope.
  common::Json span = events.at(0);
  EXPECT_EQ(span.get_string("ph"), "X");
  EXPECT_EQ(span.get_string("cat"), "wvx");
  EXPECT_EQ(span.get_string("name"), "block_read");
  EXPECT_TRUE(span.contains("ts"));
  EXPECT_TRUE(span.contains("dur"));
  EXPECT_TRUE(span.contains("pid"));
  EXPECT_TRUE(span.contains("tid"));
  EXPECT_EQ(span["args"].get_int("value"), 4096);

  common::Json instant = events.at(1);
  EXPECT_EQ(instant.get_string("ph"), "i");
  EXPECT_EQ(instant.get_string("s"), "t");
  EXPECT_EQ(instant["args"].get_int("value"), 5);

  // Sorted by timestamp (Perfetto tolerates unsorted input, humans
  // reading the JSON do not).
  EXPECT_LE(span["ts"].as_double(), instant["ts"].as_double());
}

TEST(TraceRecorder, EmptyRecorderExportsAnEmptyTraceArray) {
  TraceRecorder recorder(8);
  common::Json decoded = common::Json::parse(recorder.export_chrome_json());
  EXPECT_EQ(decoded["traceEvents"].size(), 0u);
}

#if HGDB_OBS_SPANS_ENABLED
TEST(TraceMacros, WriteToTheGlobalRecorderOnlyWhileStarted) {
  TraceRecorder& global = TraceRecorder::global();
  global.clear();
  const uint64_t before = global.recorded();
  {
    HGDB_TRACE_SPAN("test", "macro_span");
    HGDB_TRACE_SPAN_VAR(named, "test", "macro_named");
    named.set_arg(1);
    HGDB_TRACE_INSTANT("test", "macro_instant", 2);
  }
  EXPECT_EQ(global.recorded(), before);  // recorder stopped: all no-ops

  global.start();
  {
    HGDB_TRACE_SPAN_VAR(named, "test", "macro_named");
    named.set_arg(1);
    HGDB_TRACE_INSTANT("test", "macro_instant", 2);
  }
  global.stop();
  EXPECT_EQ(global.recorded(), before + 2);
  global.clear();
}
#endif

}  // namespace
}  // namespace hgdb::obs
