#include <gtest/gtest.h>

#include <cstdio>
#include <unistd.h>

#include "symbols/sqlite_store.h"
#include "symbols/symbol_table.h"

namespace hgdb::symbols {
namespace {

/// Builds a small, representative table: two instances of one module, an
/// unrolled line with two breakpoints, constants, and generator variables.
SymbolTableData sample_data() {
  SymbolTableData data;
  data.instances = {{1, "Top"}, {2, "Top.child"}};
  data.breakpoints = {
      {1, 1, "gen.cc", 10, 0, "", 0},
      {2, 2, "gen.cc", 20, 0, "when_cond0", 1},
      {3, 2, "gen.cc", 20, 0, "when_cond1", 2},
      {4, 2, "other.cc", 5, 2, "", 0},
  };
  data.variables = {
      {1, "sum0", true}, {2, "sum1", true}, {3, "2", false}, {4, "acc", true},
  };
  data.scope_variables = {
      {2, 1, "sum"}, {3, 2, "sum"}, {3, 3, "i"},
  };
  data.generator_variables = {
      {1, 4, "acc"}, {2, 1, "io.data"},
  };
  return data;
}

/// Both SymbolTable implementations must behave identically; run the same
/// assertions against each (the paper's "unified symbol table interface").
class StoreTest : public ::testing::TestWithParam<const char*> {
 protected:
  void SetUp() override {
    // ctest runs tests in parallel processes; the DB path must be unique
    // per test to avoid cross-test races.
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    std::string name = info->name();
    for (auto& c : name) {
      if (c == '/' || c == '"') c = '_';
    }
    path_ = ::testing::TempDir() + "hgdb_symbols_" + name + "_" +
            std::to_string(::getpid()) + ".db";
    data_ = sample_data();
    if (std::string(GetParam()) == "sqlite") {
      SqliteSymbolTable::save(data_, path_);
      table_ = std::make_unique<SqliteSymbolTable>(path_);
    } else {
      table_ = std::make_unique<MemorySymbolTable>(data_);
    }
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::string path_;
  SymbolTableData data_;
  std::unique_ptr<SymbolTable> table_;
};

TEST_P(StoreTest, BreakpointsAtLocation) {
  auto bps = table_->breakpoints_at("gen.cc", 20);
  ASSERT_EQ(bps.size(), 2u);
  EXPECT_EQ(bps[0].id, 2);
  EXPECT_EQ(bps[1].id, 3);
  EXPECT_EQ(bps[0].enable, "when_cond0");
}

TEST_P(StoreTest, BreakpointsAtWholeFile) {
  EXPECT_EQ(table_->breakpoints_at("gen.cc", 0).size(), 3u);
  EXPECT_TRUE(table_->breakpoints_at("missing.cc", 0).empty());
}

TEST_P(StoreTest, AllBreakpointsInSchedulingOrder) {
  auto all = table_->all_breakpoints();
  ASSERT_EQ(all.size(), 4u);
  // (filename, line, column, order_index) lexical order
  EXPECT_EQ(all[0].id, 1);
  EXPECT_EQ(all[1].id, 2);
  EXPECT_EQ(all[2].id, 3);
  EXPECT_EQ(all[3].id, 4);
}

TEST_P(StoreTest, BreakpointById) {
  auto bp = table_->breakpoint(3);
  ASSERT_TRUE(bp.has_value());
  EXPECT_EQ(bp->line_num, 20u);
  EXPECT_FALSE(table_->breakpoint(99).has_value());
}

TEST_P(StoreTest, ScopeVariables) {
  auto vars = table_->scope_variables(3);
  ASSERT_EQ(vars.size(), 2u);
  auto sum = table_->resolve_scope_variable(3, "sum");
  ASSERT_TRUE(sum.has_value());
  EXPECT_EQ(sum->value, "sum1");
  EXPECT_TRUE(sum->is_rtl);
  auto index = table_->resolve_scope_variable(3, "i");
  ASSERT_TRUE(index.has_value());
  EXPECT_FALSE(index->is_rtl);
  EXPECT_EQ(index->value, "2");
  EXPECT_FALSE(table_->resolve_scope_variable(3, "ghost").has_value());
}

TEST_P(StoreTest, GeneratorVariables) {
  auto vars = table_->generator_variables(2);
  ASSERT_EQ(vars.size(), 1u);
  EXPECT_EQ(vars[0].name, "io.data");
  auto acc = table_->resolve_generator_variable(1, "acc");
  ASSERT_TRUE(acc.has_value());
  EXPECT_EQ(acc->value, "acc");
  EXPECT_FALSE(table_->resolve_generator_variable(2, "acc").has_value());
}

TEST_P(StoreTest, Instances) {
  EXPECT_EQ(table_->instances().size(), 2u);
  auto child = table_->instance_by_name("Top.child");
  ASSERT_TRUE(child.has_value());
  EXPECT_EQ(child->id, 2);
  EXPECT_EQ(table_->instance(1)->name, "Top");
  EXPECT_FALSE(table_->instance(42).has_value());
  EXPECT_FALSE(table_->instance_by_name("nope").has_value());
}

TEST_P(StoreTest, Files) {
  EXPECT_EQ(table_->files(), (std::vector<std::string>{"gen.cc", "other.cc"}));
}

INSTANTIATE_TEST_SUITE_P(Backends, StoreTest,
                         ::testing::Values("memory", "sqlite"));

TEST(SqliteStore, SaveReturnsFileSizeAndLoadRoundTrips) {
  const std::string path = ::testing::TempDir() + "hgdb_sqlite_rt.db";
  const auto data = sample_data();
  const size_t size = SqliteSymbolTable::save(data, path);
  EXPECT_GT(size, 0u);
  SqliteSymbolTable table(path);
  const auto loaded = table.load_all();
  EXPECT_EQ(loaded.instances.size(), data.instances.size());
  EXPECT_EQ(loaded.breakpoints.size(), data.breakpoints.size());
  EXPECT_EQ(loaded.variables.size(), data.variables.size());
  EXPECT_EQ(loaded.scope_variables.size(), data.scope_variables.size());
  EXPECT_EQ(loaded.generator_variables.size(), data.generator_variables.size());
  std::remove(path.c_str());
}

TEST(SqliteStore, OpenMissingFileThrows) {
  EXPECT_THROW(SqliteSymbolTable("/nonexistent/dir/file.db"),
               std::runtime_error);
}

TEST(SqliteStore, SaveOverwritesExisting) {
  const std::string path = ::testing::TempDir() + "hgdb_sqlite_ow.db";
  SqliteSymbolTable::save(sample_data(), path);
  SymbolTableData small;
  small.instances = {{1, "Solo"}};
  SqliteSymbolTable::save(small, path);
  SqliteSymbolTable table(path);
  EXPECT_EQ(table.instances().size(), 1u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace hgdb::symbols
