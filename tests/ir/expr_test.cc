#include "ir/expr.h"

#include <gtest/gtest.h>

namespace hgdb::ir {
namespace {

TEST(Expr, RefCarriesTypeFromConstruction) {
  auto ref = make_ref("a", uint_type(8));
  EXPECT_EQ(ref->kind(), ExprKind::Ref);
  EXPECT_EQ(ref->width(), 8u);
  EXPECT_EQ(ref->str(), "a");
}

TEST(Expr, LiteralSpelling) {
  auto literal = make_uint_literal(8, 42);
  EXPECT_EQ(literal->str(), "UInt<8>(42)");
  auto signed_literal =
      make_literal(common::BitVector(4, 3), /*is_signed=*/true);
  EXPECT_EQ(signed_literal->str(), "SInt<4>(3)");
  EXPECT_TRUE(signed_literal->type()->is_signed());
}

TEST(Expr, ArithmeticResultWidthIsMax) {
  auto a = make_ref("a", uint_type(8));
  auto b = make_ref("b", uint_type(12));
  auto sum = make_prim(PrimOp::Add, {a, b});
  EXPECT_EQ(sum->width(), 12u);
  EXPECT_EQ(sum->str(), "add(a, b)");
}

TEST(Expr, SignednessMismatchRejected) {
  auto a = make_ref("a", uint_type(8));
  auto b = make_ref("b", sint_type(8));
  EXPECT_THROW(make_prim(PrimOp::Add, {a, b}), std::invalid_argument);
  EXPECT_THROW(make_prim(PrimOp::Lt, {a, b}), std::invalid_argument);
}

TEST(Expr, ComparisonYieldsBool) {
  auto a = make_ref("a", uint_type(8));
  auto b = make_ref("b", uint_type(8));
  EXPECT_EQ(make_prim(PrimOp::Lt, {a, b})->width(), 1u);
  EXPECT_EQ(make_eq(a, b)->width(), 1u);
}

TEST(Expr, CatSumsWidths) {
  auto a = make_ref("a", uint_type(8));
  auto b = make_ref("b", uint_type(3));
  EXPECT_EQ(make_prim(PrimOp::Cat, {a, b})->width(), 11u);
}

TEST(Expr, BitsValidation) {
  auto a = make_ref("a", uint_type(8));
  auto bits = make_prim(PrimOp::Bits, {a}, {5, 2});
  EXPECT_EQ(bits->width(), 4u);
  EXPECT_EQ(bits->str(), "bits(a, 5, 2)");
  EXPECT_THROW(make_prim(PrimOp::Bits, {a}, {8, 0}), std::invalid_argument);
  EXPECT_THROW(make_prim(PrimOp::Bits, {a}, {1, 2}), std::invalid_argument);
}

TEST(Expr, PadSetsExactWidth) {
  auto a = make_ref("a", uint_type(8));
  EXPECT_EQ(make_pad(a, 16)->width(), 16u);
  EXPECT_EQ(make_pad(a, 8), a);  // no-op pad returns the operand
  EXPECT_EQ(make_pad(a, 4)->width(), 4u);  // pad may truncate
}

TEST(Expr, MuxValidation) {
  auto sel = make_ref("sel", bool_type());
  auto a = make_ref("a", uint_type(8));
  auto b = make_ref("b", uint_type(8));
  auto c = make_ref("c", uint_type(9));
  EXPECT_EQ(make_mux(sel, a, b)->width(), 8u);
  EXPECT_THROW(make_mux(sel, a, c), std::invalid_argument);
  EXPECT_THROW(make_mux(a, a, b), std::invalid_argument);  // wide selector
}

TEST(Expr, SubFieldNavigatesBundles) {
  auto bundle = bundle_type({{"data", uint_type(8), false}});
  auto io = make_ref("io", bundle);
  auto data = make_subfield(io, "data");
  EXPECT_EQ(data->width(), 8u);
  EXPECT_EQ(data->str(), "io.data");
  EXPECT_THROW(make_subfield(io, "nope"), std::invalid_argument);
  EXPECT_THROW(make_subfield(data, "x"), std::invalid_argument);
}

TEST(Expr, SubIndexValidation) {
  auto vec = make_ref("v", vector_type(uint_type(8), 4));
  EXPECT_EQ(make_subindex(vec, 3)->str(), "v[3]");
  EXPECT_THROW(make_subindex(vec, 4), std::invalid_argument);
}

TEST(Expr, SubAccessDynamicIndex) {
  auto vec = make_ref("v", vector_type(uint_type(8), 4));
  auto index = make_ref("i", uint_type(2));
  auto access = make_subaccess(vec, index);
  EXPECT_EQ(access->kind(), ExprKind::SubAccess);
  EXPECT_EQ(access->width(), 8u);
  EXPECT_EQ(access->str(), "v[i]");
}

TEST(Expr, StructuralEqualityAndHash) {
  auto a1 = make_prim(PrimOp::Add, {make_ref("x", uint_type(8)),
                                    make_uint_literal(8, 1)});
  auto a2 = make_prim(PrimOp::Add, {make_ref("x", uint_type(8)),
                                    make_uint_literal(8, 1)});
  auto b = make_prim(PrimOp::Add, {make_ref("y", uint_type(8)),
                                   make_uint_literal(8, 1)});
  EXPECT_TRUE(a1->equals(*a2));
  EXPECT_EQ(a1->hash(), a2->hash());
  EXPECT_FALSE(a1->equals(*b));
}

TEST(Expr, OperandCountValidation) {
  auto a = make_ref("a", uint_type(8));
  EXPECT_THROW(make_prim(PrimOp::Add, {a}), std::invalid_argument);
  EXPECT_THROW(make_prim(PrimOp::Not, {a, a}), std::invalid_argument);
  EXPECT_THROW(make_prim(PrimOp::Mux, {a, a}), std::invalid_argument);
}

TEST(Expr, PrimOpNames) {
  PrimOp op;
  EXPECT_TRUE(prim_op_from_name("add", &op));
  EXPECT_EQ(op, PrimOp::Add);
  EXPECT_TRUE(prim_op_from_name("asUInt", &op));
  EXPECT_EQ(op, PrimOp::AsUInt);
  EXPECT_FALSE(prim_op_from_name("bogus", &op));
  EXPECT_STREQ(prim_op_name(PrimOp::Mux), "mux");
}

TEST(Expr, RewriteReplacesRefs) {
  auto expr = make_prim(
      PrimOp::Add, {make_ref("a", uint_type(8)),
                    make_prim(PrimOp::Not, {make_ref("a", uint_type(8))})});
  auto rewritten = rewrite_expr(expr, [](const ExprPtr& e) -> ExprPtr {
    if (e->kind() == ExprKind::Ref) return make_ref("b", e->type());
    return e;
  });
  EXPECT_EQ(rewritten->str(), "add(b, not(b))");
}

TEST(Expr, RewriteUnchangedReturnsSameNodes) {
  auto expr = make_prim(PrimOp::Add, {make_ref("a", uint_type(8)),
                                      make_uint_literal(8, 1)});
  auto rewritten = rewrite_expr(expr, [](const ExprPtr& e) { return e; });
  EXPECT_EQ(rewritten, expr);  // pointer-identical: no rebuild
}

TEST(Expr, VisitCountsNodes) {
  auto expr = make_prim(PrimOp::Add, {make_ref("a", uint_type(8)),
                                      make_prim(PrimOp::Not,
                                                {make_ref("b", uint_type(8))})});
  int count = 0;
  visit_expr(expr, [&](const Expr&) { ++count; });
  EXPECT_EQ(count, 4);  // add, a, not, b
}

}  // namespace
}  // namespace hgdb::ir
