#include "ir/type.h"

#include <gtest/gtest.h>

namespace hgdb::ir {
namespace {

TEST(Type, GroundWidths) {
  EXPECT_EQ(uint_type(8)->bit_width(), 8u);
  EXPECT_EQ(sint_type(16)->bit_width(), 16u);
  EXPECT_EQ(bool_type()->bit_width(), 1u);
  EXPECT_EQ(clock_type()->bit_width(), 1u);
}

TEST(Type, KindsAndPredicates) {
  EXPECT_TRUE(uint_type(8)->is_ground());
  EXPECT_FALSE(uint_type(8)->is_signed());
  EXPECT_TRUE(sint_type(8)->is_signed());
  EXPECT_EQ(clock_type()->kind(), TypeKind::Clock);
}

TEST(Type, Spelling) {
  EXPECT_EQ(uint_type(8)->str(), "UInt<8>");
  EXPECT_EQ(sint_type(4)->str(), "SInt<4>");
  EXPECT_EQ(clock_type()->str(), "Clock");
}

TEST(Type, StructuralEquality) {
  EXPECT_TRUE(uint_type(8)->equals(*uint_type(8)));
  EXPECT_FALSE(uint_type(8)->equals(*uint_type(9)));
  EXPECT_FALSE(uint_type(8)->equals(*sint_type(8)));
}

TEST(Type, BundleFieldsAndWidth) {
  auto bundle = bundle_type({{"valid", bool_type(), false},
                             {"data", uint_type(8), false},
                             {"ready", bool_type(), true}});
  EXPECT_TRUE(bundle->is_aggregate());
  EXPECT_EQ(bundle->bit_width(), 10u);
  const auto& casted = static_cast<const BundleType&>(*bundle);
  ASSERT_NE(casted.field("data"), nullptr);
  EXPECT_EQ(casted.field("data")->type->bit_width(), 8u);
  EXPECT_TRUE(casted.field("ready")->flip);
  EXPECT_EQ(casted.field("missing"), nullptr);
}

TEST(Type, BundleSpelling) {
  auto bundle = bundle_type({{"a", uint_type(4), false},
                             {"b", bool_type(), true}});
  EXPECT_EQ(bundle->str(), "{a : UInt<4>, flip b : UInt<1>}");
}

TEST(Type, BundleEquality) {
  auto a = bundle_type({{"x", uint_type(4), false}});
  auto b = bundle_type({{"x", uint_type(4), false}});
  auto c = bundle_type({{"x", uint_type(4), true}});
  auto d = bundle_type({{"y", uint_type(4), false}});
  EXPECT_TRUE(a->equals(*b));
  EXPECT_FALSE(a->equals(*c));
  EXPECT_FALSE(a->equals(*d));
}

TEST(Type, VectorWidthAndSpelling) {
  auto vec = vector_type(uint_type(8), 4);
  EXPECT_EQ(vec->bit_width(), 32u);
  EXPECT_EQ(vec->str(), "UInt<8>[4]");
  const auto& casted = static_cast<const VectorType&>(*vec);
  EXPECT_EQ(casted.size(), 4u);
  EXPECT_TRUE(casted.element()->equals(*uint_type(8)));
}

TEST(Type, NestedAggregates) {
  auto nested = vector_type(bundle_type({{"v", uint_type(3), false}}), 5);
  EXPECT_EQ(nested->bit_width(), 15u);
  EXPECT_EQ(nested->str(), "{v : UInt<3>}[5]");
}

TEST(Type, VectorEquality) {
  EXPECT_TRUE(vector_type(uint_type(8), 4)->equals(*vector_type(uint_type(8), 4)));
  EXPECT_FALSE(vector_type(uint_type(8), 4)->equals(*vector_type(uint_type(8), 5)));
  EXPECT_FALSE(vector_type(uint_type(8), 4)->equals(*uint_type(32)));
}

}  // namespace
}  // namespace hgdb::ir
