#include "ir/parser.h"

#include <gtest/gtest.h>

#include "ir/printer.h"

namespace hgdb::ir {
namespace {

constexpr const char* kCounter = R"(circuit Counter
  module Counter
    input clock : Clock
    input enable : UInt<1>
    output out : UInt<8>
    reg count : UInt<8> clock clock @[counter.cc 10 3]
    when enable @[counter.cc 11 3]
      connect count = add(count, UInt<8>(1)) @[counter.cc 12 5]
    end
    connect out = count @[counter.cc 14 3]
  end
end
)";

TEST(Parser, ParsesCounter) {
  auto circuit = parse_circuit(kCounter);
  ASSERT_NE(circuit->top(), nullptr);
  EXPECT_EQ(circuit->top_name(), "Counter");
  EXPECT_EQ(circuit->top()->ports().size(), 3u);
  EXPECT_EQ(circuit->top()->body().stmts.size(), 3u);
}

TEST(Parser, PreservesSourceLocators) {
  auto circuit = parse_circuit(kCounter);
  const auto& when = static_cast<const WhenStmt&>(*circuit->top()->body().stmts[1]);
  EXPECT_EQ(when.loc.filename, "counter.cc");
  EXPECT_EQ(when.loc.line, 11u);
  EXPECT_EQ(when.loc.column, 3u);
  const auto& connect =
      static_cast<const ConnectStmt&>(*when.then_body->stmts[0]);
  EXPECT_EQ(connect.loc.line, 12u);
}

TEST(Parser, RoundTripIsStable) {
  auto circuit = parse_circuit(kCounter);
  const std::string printed = print_circuit(*circuit);
  auto reparsed = parse_circuit(printed);
  EXPECT_EQ(print_circuit(*reparsed), printed);
}

TEST(Parser, ExpressionsNestAndType) {
  auto circuit = parse_circuit(R"(circuit T
  module T
    input a : UInt<8>
    input b : UInt<8>
    output o : UInt<1>
    node t = eq(add(a, b), UInt<8>(3))
    connect o = t
  end
end
)");
  const auto& node = static_cast<const NodeStmt&>(*circuit->top()->body().stmts[0]);
  EXPECT_EQ(node.value->width(), 1u);
  EXPECT_EQ(node.value->str(), "eq(add(a, b), UInt<8>(3))");
}

TEST(Parser, BundleAndVectorTypes) {
  auto circuit = parse_circuit(R"(circuit T
  module T
    input io : {valid : UInt<1>, data : UInt<8>, flip ready : UInt<1>}
    input v : UInt<4>[3]
    output o : UInt<8>
    connect o = mux(io.valid, io.data, cat(v[0], v[1]))
  end
end
)");
  const Port* io = circuit->top()->port("io");
  ASSERT_NE(io, nullptr);
  EXPECT_EQ(io->type->bit_width(), 10u);
  const Port* v = circuit->top()->port("v");
  EXPECT_EQ(v->type->str(), "UInt<4>[3]");
}

TEST(Parser, DynamicIndexBecomesSubAccess) {
  auto circuit = parse_circuit(R"(circuit T
  module T
    input v : UInt<8>[4]
    input i : UInt<2>
    output o : UInt<8>
    connect o = v[i]
  end
end
)");
  const auto& connect =
      static_cast<const ConnectStmt&>(*circuit->top()->body().stmts[0]);
  EXPECT_EQ(connect.rhs->kind(), ExprKind::SubAccess);
}

TEST(Parser, ForLoopsWithScopedVariable) {
  auto circuit = parse_circuit(R"(circuit T
  module T
    input v : UInt<8>[4]
    output o : UInt<8>
    wire sum : UInt<8>
    connect sum = UInt<8>(0)
    for i = 0 to 4 @[gen.cc 20 1]
      connect sum = add(sum, v[i]) @[gen.cc 21 3]
    end
    connect o = sum
  end
end
)");
  const auto& loop = static_cast<const ForStmt&>(*circuit->top()->body().stmts[2]);
  EXPECT_EQ(loop.var, "i");
  EXPECT_EQ(loop.start, 0);
  EXPECT_EQ(loop.end, 4);
  EXPECT_EQ(loop.body->stmts.size(), 1u);
}

TEST(Parser, RegisterWithReset) {
  auto circuit = parse_circuit(R"(circuit T
  module T
    input clock : Clock
    input rst : UInt<1>
    output o : UInt<8>
    reg r : UInt<8> clock clock reset rst init UInt<8>(7)
    connect r = add(r, UInt<8>(1))
    connect o = r
  end
end
)");
  const auto& reg = static_cast<const RegStmt&>(*circuit->top()->body().stmts[0]);
  ASSERT_NE(reg.reset, nullptr);
  EXPECT_EQ(reg.init->str(), "UInt<8>(7)");
}

TEST(Parser, InstancesResolveChildPorts) {
  auto circuit = parse_circuit(R"(circuit Top
  module Child
    input in : UInt<8>
    output out : UInt<8>
    connect out = not(in)
  end
  module Top
    input a : UInt<8>
    output o : UInt<8>
    inst c of Child
    connect c.in = a
    connect o = c.out
  end
end
)");
  EXPECT_EQ(circuit->modules().size(), 2u);
  EXPECT_NE(circuit->module("Child"), nullptr);
}

TEST(Parser, InstanceForwardReferenceAllowed) {
  // Pre-scan allows parents to be declared before children.
  auto circuit = parse_circuit(R"(circuit Top
  module Top
    input a : UInt<8>
    output o : UInt<8>
    inst c of Child
    connect c.in = a
    connect o = c.out
  end
  module Child
    input in : UInt<8>
    output out : UInt<8>
    connect out = in
  end
end
)");
  EXPECT_EQ(circuit->modules().size(), 2u);
}

TEST(Parser, NodeSuffixesSourceAndEnable) {
  auto circuit = parse_circuit(R"(circuit T
  module T
    input c : UInt<1>
    output o : UInt<8>
    node sum0 = UInt<8>(1) source sum enable c @[x.cc 4 2]
    connect o = sum0
  end
end
)");
  const auto& node = static_cast<const NodeStmt&>(*circuit->top()->body().stmts[0]);
  EXPECT_EQ(node.source_name, "sum");
  ASSERT_NE(node.enable, nullptr);
  EXPECT_EQ(node.enable->str(), "c");
}

TEST(Parser, CommentsIgnored) {
  auto circuit = parse_circuit(R"(circuit T ; the top
  module T
    ; a comment-only line
    input a : UInt<8>
    output o : UInt<8>
    connect o = a ; trailing comment
  end
end
)");
  EXPECT_EQ(circuit->top()->body().stmts.size(), 1u);
}

TEST(Parser, ErrorsCarryLineNumbers) {
  try {
    parse_circuit("circuit T\n  module T\n    input a : Bogus<8>\n  end\nend\n");
    FAIL() << "expected parse error";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("line 3"), std::string::npos);
  }
}

TEST(Parser, UnknownIdentifierRejected) {
  EXPECT_THROW(parse_circuit(R"(circuit T
  module T
    output o : UInt<8>
    connect o = ghost
  end
end
)"),
               std::runtime_error);
}

TEST(Parser, UnterminatedBlockRejected) {
  EXPECT_THROW(parse_circuit("circuit T\n  module T\n    input a : UInt<1>\n"),
               std::runtime_error);
}

TEST(Parser, WhenElseBlocks) {
  auto circuit = parse_circuit(R"(circuit T
  module T
    input c : UInt<1>
    output o : UInt<8>
    wire t : UInt<8>
    when c
      connect t = UInt<8>(1)
    else
      connect t = UInt<8>(2)
    end
    connect o = t
  end
end
)");
  const auto& when = static_cast<const WhenStmt&>(*circuit->top()->body().stmts[1]);
  ASSERT_NE(when.else_body, nullptr);
  EXPECT_EQ(when.then_body->stmts.size(), 1u);
  EXPECT_EQ(when.else_body->stmts.size(), 1u);
}

}  // namespace
}  // namespace hgdb::ir
