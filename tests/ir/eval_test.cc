#include "ir/eval.h"

#include <gtest/gtest.h>

namespace hgdb::ir {
namespace {

using common::BitVector;

BitVector eval2(PrimOp op, uint64_t a, uint32_t wa, uint64_t b, uint32_t wb,
                uint32_t result_width, bool is_signed = false) {
  return eval_prim(op, {BitVector(wa, a), BitVector(wb, b)},
                   {is_signed, is_signed}, {}, result_width);
}

TEST(EvalPrim, AddExtendsOperandsToResultWidth) {
  EXPECT_EQ(eval2(PrimOp::Add, 200, 8, 100, 8, 8).to_uint64(), 44u);  // wraps
  EXPECT_EQ(eval2(PrimOp::Add, 200, 8, 100, 16, 16).to_uint64(), 300u);
}

TEST(EvalPrim, SignedAddSignExtends) {
  // -1 (4-bit) + 1 (8-bit) = 0 when sign-extended
  EXPECT_EQ(eval2(PrimOp::Add, 0xf, 4, 1, 8, 8, true).to_uint64(), 0u);
}

TEST(EvalPrim, MulDivRem) {
  EXPECT_EQ(eval2(PrimOp::Mul, 20, 8, 10, 8, 8).to_uint64(), 200u);
  EXPECT_EQ(eval2(PrimOp::Div, 200, 8, 7, 8, 8).to_uint64(), 28u);
  EXPECT_EQ(eval2(PrimOp::Rem, 200, 8, 7, 8, 8).to_uint64(), 4u);
}

TEST(EvalPrim, SignedDivision) {
  // -20 / 3 = -6 in 8 bits
  EXPECT_EQ(eval2(PrimOp::Div, 0xec, 8, 3, 8, 8, true).to_int64(), -6);
  EXPECT_EQ(eval2(PrimOp::Rem, 0xec, 8, 3, 8, 8, true).to_int64(), -2);
}

TEST(EvalPrim, Comparisons) {
  EXPECT_EQ(eval2(PrimOp::Lt, 3, 8, 5, 8, 1).to_uint64(), 1u);
  EXPECT_EQ(eval2(PrimOp::Geq, 5, 8, 5, 8, 1).to_uint64(), 1u);
  EXPECT_EQ(eval2(PrimOp::Eq, 5, 8, 5, 16, 1).to_uint64(), 1u);
  EXPECT_EQ(eval2(PrimOp::Neq, 5, 8, 6, 8, 1).to_uint64(), 1u);
}

TEST(EvalPrim, SignedComparison) {
  // -1 < 1 signed, but 255 > 1 unsigned
  EXPECT_EQ(eval2(PrimOp::Lt, 0xff, 8, 1, 8, 1, true).to_uint64(), 1u);
  EXPECT_EQ(eval2(PrimOp::Lt, 0xff, 8, 1, 8, 1, false).to_uint64(), 0u);
}

TEST(EvalPrim, Bitwise) {
  EXPECT_EQ(eval2(PrimOp::And, 0b1100, 4, 0b1010, 4, 4).to_uint64(), 0b1000u);
  EXPECT_EQ(eval2(PrimOp::Or, 0b1100, 4, 0b1010, 4, 4).to_uint64(), 0b1110u);
  EXPECT_EQ(eval2(PrimOp::Xor, 0b1100, 4, 0b1010, 4, 4).to_uint64(), 0b0110u);
}

TEST(EvalPrim, UnaryOps) {
  EXPECT_EQ(eval_prim(PrimOp::Not, {BitVector(4, 0b1010)}, {false}, {}, 4)
                .to_uint64(),
            0b0101u);
  EXPECT_EQ(eval_prim(PrimOp::Neg, {BitVector(8, 1)}, {false}, {}, 8)
                .to_uint64(),
            0xffu);
}

TEST(EvalPrim, Reductions) {
  EXPECT_EQ(eval_prim(PrimOp::AndR, {BitVector(4, 0xf)}, {false}, {}, 1)
                .to_uint64(), 1u);
  EXPECT_EQ(eval_prim(PrimOp::OrR, {BitVector(4, 0)}, {false}, {}, 1)
                .to_uint64(), 0u);
  EXPECT_EQ(eval_prim(PrimOp::XorR, {BitVector(4, 0b0111)}, {false}, {}, 1)
                .to_uint64(), 1u);
}

TEST(EvalPrim, CatAndBits) {
  EXPECT_EQ(eval2(PrimOp::Cat, 0xa, 4, 0xb, 4, 8).to_uint64(), 0xabu);
  EXPECT_EQ(eval_prim(PrimOp::Bits, {BitVector(8, 0xab)}, {false}, {7, 4}, 4)
                .to_uint64(), 0xau);
}

TEST(EvalPrim, ConstantShifts) {
  EXPECT_EQ(eval_prim(PrimOp::Shl, {BitVector(8, 0x0f)}, {false}, {2}, 8)
                .to_uint64(), 0x3cu);
  EXPECT_EQ(eval_prim(PrimOp::Shr, {BitVector(8, 0xf0)}, {false}, {2}, 8)
                .to_uint64(), 0x3cu);
  // Signed shr is arithmetic.
  EXPECT_EQ(eval_prim(PrimOp::Shr, {BitVector(8, 0x80)}, {true}, {2}, 8)
                .to_uint64(), 0xe0u);
}

TEST(EvalPrim, DynamicShifts) {
  EXPECT_EQ(eval2(PrimOp::Dshl, 1, 8, 3, 4, 8).to_uint64(), 8u);
  EXPECT_EQ(eval2(PrimOp::Dshr, 0x80, 8, 7, 4, 8).to_uint64(), 1u);
}

TEST(EvalPrim, PadExtendsOrTruncates) {
  EXPECT_EQ(eval_prim(PrimOp::Pad, {BitVector(4, 0xa)}, {false}, {8}, 8)
                .to_uint64(), 0xau);
  EXPECT_EQ(eval_prim(PrimOp::Pad, {BitVector(4, 0xa)}, {true}, {8}, 8)
                .to_uint64(), 0xfau);  // sign-extended
  EXPECT_EQ(eval_prim(PrimOp::Pad, {BitVector(8, 0xab)}, {false}, {4}, 4)
                .to_uint64(), 0xbu);
}

TEST(EvalPrim, Mux) {
  EXPECT_EQ(eval_prim(PrimOp::Mux,
                      {BitVector(1, 1), BitVector(8, 5), BitVector(8, 9)},
                      {false, false, false}, {}, 8)
                .to_uint64(), 5u);
  EXPECT_EQ(eval_prim(PrimOp::Mux,
                      {BitVector(1, 0), BitVector(8, 5), BitVector(8, 9)},
                      {false, false, false}, {}, 8)
                .to_uint64(), 9u);
}

TEST(EvalPrim, DivisionByZeroConvention) {
  EXPECT_EQ(eval2(PrimOp::Div, 42, 8, 0, 8, 8), BitVector::all_ones(8));
  EXPECT_EQ(eval2(PrimOp::Rem, 42, 8, 0, 8, 8).to_uint64(), 42u);
}

}  // namespace
}  // namespace hgdb::ir
