// Regression tests for sink callbacks running outside clients_mutex_: an
// EventSink whose deliver() calls back into the DebugService (to render a
// richer event, or just to poll state) used to deadlock — stop broadcast
// and value-change fan-out both held clients_mutex_ across deliver(). The
// fix brackets deliveries with the dedicated delivery_mutex_ instead; in
// rank-checked builds a regression aborts immediately (clients -> clients
// is an equal-rank acquisition), in release builds it would hang.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "frontend/compile.h"
#include "ir/parser.h"
#include "runtime/runtime.h"
#include "session/debug_service.h"
#include "session/session_manager.h"
#include "sim/simulator.h"
#include "symbols/symbol_table.h"
#include "vpi/native_backend.h"

namespace hgdb::session {
namespace {

constexpr const char* kDesign = R"(circuit Reent
  module Reent
    input clock : Clock
    output out : UInt<8>
    reg cycle_reg : UInt<8> clock clock
    connect cycle_reg = add(cycle_reg, UInt<8>(1)) @[reent.cc 5 1]
    wire t : UInt<8> @[reent.cc 6 1]
    connect t = add(cycle_reg, UInt<8>(7)) @[reent.cc 7 1]
    connect out = t @[reent.cc 8 1]
  end
end
)";

class ReentrantSinkTest : public ::testing::Test {
 protected:
  void SetUp() override {
    frontend::CompileOptions compile_options;
    compile_options.debug_mode = true;
    auto compiled =
        frontend::compile(ir::parse_circuit(kDesign), compile_options);
    table_ = std::make_unique<symbols::MemorySymbolTable>(compiled.symbols);
    simulator_ = std::make_unique<sim::Simulator>(compiled.netlist);
    backend_ = std::make_unique<vpi::NativeBackend>(*simulator_);
    runtime_ = std::make_unique<runtime::Runtime>(*backend_, *table_,
                                                  runtime::RuntimeOptions{});
    runtime_->attach();
    // Instantiate the session layer without any transport client; the
    // tests talk to the DebugService core directly.
    runtime_->serve_tcp(0);
    service_ = &runtime_->session_manager()->service();
  }

  void TearDown() override { runtime_->stop_service(); }

  std::unique_ptr<symbols::MemorySymbolTable> table_;
  std::unique_ptr<sim::Simulator> simulator_;
  std::unique_ptr<vpi::NativeBackend> backend_;
  std::unique_ptr<runtime::Runtime> runtime_;
  DebugService* service_ = nullptr;
};

/// Calls back into the service from inside deliver() — the pattern a front
/// end uses when rendering an event needs service state.
struct ReentrantSink final : EventSink {
  DebugService* service = nullptr;
  ClientId self = 0;
  std::atomic<int> stops{0};        ///< pending (consumed by the test loop)
  std::atomic<int> total_stops{0};
  std::atomic<int> value_changes{0};
  std::atomic<size_t> observed_clients{0};

  bool deliver(const ServiceEvent& event) override {
    // Both probes take clients_mutex_ inside the service.
    observed_clients.store(service->client_count());
    (void)service->list_breakpoints(self);
    if (event.kind == ServiceEvent::Kind::Stop) {
      total_stops.fetch_add(1);
      stops.fetch_add(1);
    }
    if (event.kind == ServiceEvent::Kind::ValueChange) {
      value_changes.fetch_add(1);
    }
    return true;
  }
};

TEST_F(ReentrantSinkTest, ValueChangeSinkMayCallBackIntoService) {
  ReentrantSink sink;
  sink.service = service_;
  sink.self = service_->register_client("reentrant", &sink);

  SubscribeSpec spec;
  spec.signals = {"cycle_reg"};
  service_->subscribe(sink.self, spec);

  // Value-change fan-out happens synchronously on the simulation thread
  // (this one): a deadlock regression would hang right here.
  for (int i = 0; i < 5; ++i) simulator_->tick();

  EXPECT_GE(sink.value_changes.load(), 1);
  EXPECT_GE(sink.observed_clients.load(), 1u);
  service_->unregister_client(sink.self);
}

TEST_F(ReentrantSinkTest, StopBroadcastSinkMayCallBackIntoService) {
  ReentrantSink sink;
  sink.service = service_;
  sink.self = service_->register_client("reentrant", &sink);

  const auto ids =
      service_->arm_breakpoint(sink.self, BreakpointSpec{"reent.cc", 5, ""});
  ASSERT_FALSE(ids.empty());

  std::atomic<bool> done{false};
  std::thread sim([&] {
    for (int i = 0; i < 3; ++i) simulator_->tick();
    done.store(true);
  });
  // The breakpoint hits on the first edge; the sim thread parks in the
  // stop handshake after deliver() — which re-entered the service — has
  // returned. Answer each stop until the run completes. (tick() cannot
  // finish while a stop is parked, so `done` implies nothing is pending.)
  while (!done.load()) {
    if (sink.stops.exchange(0) > 0) {
      try {
        service_->execute(sink.self, DebugService::Command::Continue);
      } catch (const ServiceError&) {
        // The stop may already have resolved (shutdown/continue race).
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  sim.join();
  EXPECT_GE(sink.total_stops.load(), 1);
  EXPECT_GE(sink.observed_clients.load(), 1u);
  service_->unregister_client(sink.self);
}

}  // namespace
}  // namespace hgdb::session
