// DAP front end: a scripted Debug Adapter Protocol client drives
// initialize -> setBreakpoints (with condition) -> attach -> stopped event
// -> stackTrace/scopes/variables -> evaluate -> continue -> disconnect
// against both the native and replay backends, plus Content-Length framing
// edge cases (split/coalesced frames, oversized headers, abrupt
// disconnects that must never hang the scheduler).
#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <deque>
#include <thread>

#include "common/json.h"
#include "frontend/compile.h"
#include "ir/parser.h"
#include "rpc/tcp.h"
#include "runtime/runtime.h"
#include "session/dap_protocol.h"
#include "sim/simulator.h"
#include "sim/vcd_writer.h"
#include "symbols/symbol_table.h"
#include "trace/vcd_reader.h"
#include "vpi/native_backend.h"
#include "vpi/replay_backend.h"

namespace hgdb::session {
namespace {

using common::Json;

constexpr const char* kDesign = R"(circuit Dap
  module Dap
    input clock : Clock
    output out : UInt<8>
    reg cycle_reg : UInt<8> clock clock
    connect cycle_reg = add(cycle_reg, UInt<8>(1)) @[dap.cc 5 1]
    wire t : UInt<8> @[dap.cc 6 1]
    connect t = add(cycle_reg, UInt<8>(7)) @[dap.cc 7 1]
    connect out = t @[dap.cc 8 1]
  end
end
)";

frontend::CompileResult compile_design() {
  frontend::CompileOptions options;
  options.debug_mode = true;
  return frontend::compile(ir::parse_circuit(kDesign), options);
}

/// Minimal scripted DAP client over a raw TCP byte stream, using the same
/// FrameCodec the server uses (round-trip coverage for the framing).
class DapClient {
 public:
  explicit DapClient(uint16_t port)
      : stream_(rpc::tcp_connect_stream("127.0.0.1", port)) {}

  /// Sends a request and blocks for its response; events arriving in
  /// between queue up for wait_event().
  Json request(const std::string& command, Json arguments = Json::object()) {
    Json message = Json::object();
    const int64_t seq = next_seq_++;
    message["seq"] = Json(seq);
    message["type"] = Json("request");
    message["command"] = Json(command);
    message["arguments"] = std::move(arguments);
    send_raw(dap::FrameCodec::encode(message.dump()));
    while (true) {
      Json decoded = next_message();
      if (decoded.get_string("type") == "event") {
        events_.push_back(std::move(decoded));
        continue;
      }
      if (decoded.get_string("type") == "response" &&
          decoded.get_int("request_seq") == seq) {
        return decoded;
      }
    }
  }

  /// Blocks until the named event arrives (drains the queue first).
  Json wait_event(const std::string& name) {
    for (auto it = events_.begin(); it != events_.end(); ++it) {
      if (it->get_string("event") == name) {
        Json event = std::move(*it);
        events_.erase(it);
        return event;
      }
    }
    while (true) {
      Json decoded = next_message();
      if (decoded.get_string("type") == "event") {
        if (decoded.get_string("event") == name) return decoded;
        events_.push_back(std::move(decoded));
      }
    }
  }

  /// Raw byte access for the framing edge-case tests.
  void send_raw(const std::string& bytes) {
    ASSERT_TRUE(stream_->send_bytes(bytes));
  }
  rpc::ByteStream& stream() { return *stream_; }
  void close() { stream_->close(); }

 private:
  Json next_message() {
    while (true) {
      if (auto payload = codec_.next()) return Json::parse(*payload);
      auto chunk = stream_->receive_some();
      if (!chunk) {
        throw std::runtime_error("dap connection closed");
      }
      codec_.feed(*chunk);
    }
  }

  std::unique_ptr<rpc::ByteStream> stream_;
  dap::FrameCodec codec_;
  int64_t next_seq_ = 1;
  std::deque<Json> events_;
};

Json breakpoint_args(const std::string& path, uint32_t line,
                     const std::string& condition = "") {
  Json source = Json::object();
  source["path"] = Json(path);
  Json bp = Json::object();
  bp["line"] = Json(static_cast<int64_t>(line));
  if (!condition.empty()) bp["condition"] = Json(condition);
  Json list = Json::array();
  list.push_back(std::move(bp));
  Json args = Json::object();
  args["source"] = std::move(source);
  args["breakpoints"] = std::move(list);
  return args;
}

/// Drives the full scripted IDE session against whatever runtime is
/// listening on `port`; `start_sim` launches the simulation/replay.
void run_scripted_session(uint16_t port, const std::function<void()>& start_sim,
                          const std::string& backend) {
  DapClient client(port);

  // initialize: capability advertisement + the initialized event.
  Json response = client.request("initialize");
  ASSERT_TRUE(response.get_bool("success"));
  EXPECT_TRUE(response["body"].get_bool("supportsConfigurationDoneRequest"));
  EXPECT_TRUE(response["body"].get_bool("supportsConditionalBreakpoints"));
  EXPECT_EQ(response["body"].get_bool("supportsStepBack"),
            backend == "replay");
  client.wait_event("initialized");

  // setBreakpoints with a condition, then attach + configurationDone.
  response =
      client.request("setBreakpoints",
                     breakpoint_args("dap.cc", 7, "cycle_reg % 2 == 1"));
  ASSERT_TRUE(response.get_bool("success"));
  ASSERT_EQ(response["body"]["breakpoints"].size(), 1u);
  EXPECT_TRUE(response["body"]["breakpoints"].at(0).get_bool("verified"));

  ASSERT_TRUE(client.request("attach").get_bool("success"));
  ASSERT_TRUE(client.request("configurationDone").get_bool("success"));

  start_sim();

  // stopped event -> threads -> stackTrace -> scopes -> variables.
  Json stopped = client.wait_event("stopped");
  EXPECT_EQ(stopped["body"].get_string("reason"), "breakpoint");
  EXPECT_TRUE(stopped["body"].get_bool("allThreadsStopped"));
  const int64_t thread_id = stopped["body"].get_int("threadId");
  EXPECT_GT(thread_id, 0);

  response = client.request("threads");
  ASSERT_TRUE(response.get_bool("success"));
  ASSERT_EQ(response["body"]["threads"].size(), 1u);
  EXPECT_EQ(response["body"]["threads"].at(0).get_string("name"), "Dap");
  EXPECT_EQ(response["body"]["threads"].at(0).get_int("id"), thread_id);

  Json args = Json::object();
  args["threadId"] = Json(thread_id);
  response = client.request("stackTrace", std::move(args));
  ASSERT_TRUE(response.get_bool("success"));
  ASSERT_GE(response["body"]["stackFrames"].size(), 1u);
  Json frame = response["body"]["stackFrames"].at(0);
  EXPECT_EQ(frame.get_int("line"), 7);
  EXPECT_EQ(frame["source"].get_string("path"), "dap.cc");
  const int64_t frame_id = frame.get_int("id");

  args = Json::object();
  args["frameId"] = Json(frame_id);
  response = client.request("scopes", std::move(args));
  ASSERT_TRUE(response.get_bool("success"));
  ASSERT_EQ(response["body"]["scopes"].size(), 2u);
  EXPECT_EQ(response["body"]["scopes"].at(0).get_string("name"), "Locals");
  EXPECT_EQ(response["body"]["scopes"].at(1).get_string("name"), "Generator");
  const int64_t generator_ref =
      response["body"]["scopes"].at(1).get_int("variablesReference");

  args = Json::object();
  args["variablesReference"] = Json(generator_ref);
  response = client.request("variables", std::move(args));
  ASSERT_TRUE(response.get_bool("success"));
  bool found_cycle_reg = false;
  for (const auto& variable : response["body"]["variables"].as_array()) {
    if (variable.get_string("name") == "cycle_reg") found_cycle_reg = true;
  }
  EXPECT_TRUE(found_cycle_reg);

  // evaluate in the stopped frame: the condition held, so parity is 1.
  args = Json::object();
  args["expression"] = Json("cycle_reg % 2");
  args["frameId"] = Json(frame_id);
  response = client.request("evaluate", std::move(args));
  ASSERT_TRUE(response.get_bool("success"));
  EXPECT_EQ(response["body"].get_string("result"), "1");

  // continue -> next stop -> disconnect releases everything.
  response = client.request("continue");
  ASSERT_TRUE(response.get_bool("success"));
  EXPECT_TRUE(response["body"].get_bool("allThreadsContinued"));
  client.wait_event("stopped");
  ASSERT_TRUE(client.request("continue").get_bool("success"));
  ASSERT_TRUE(client.request("disconnect").get_bool("success"));
}

// -- native backend ------------------------------------------------------------

class DapNativeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto compiled = compile_design();
    table_ = std::make_unique<symbols::MemorySymbolTable>(compiled.symbols);
    simulator_ = std::make_unique<sim::Simulator>(compiled.netlist);
    backend_ = std::make_unique<vpi::NativeBackend>(*simulator_);
    runtime_ = std::make_unique<runtime::Runtime>(*backend_, *table_);
    runtime_->attach();
    port_ = runtime_->serve_dap(0);
  }

  void TearDown() override {
    if (sim_thread_.joinable()) sim_thread_.join();
    runtime_->stop_service();
  }

  void run_async(uint64_t cycles) {
    sim_thread_ = std::thread([this, cycles] {
      while (simulator_->cycle() < cycles) simulator_->tick();
    });
  }

  std::unique_ptr<symbols::MemorySymbolTable> table_;
  std::unique_ptr<sim::Simulator> simulator_;
  std::unique_ptr<vpi::NativeBackend> backend_;
  std::unique_ptr<runtime::Runtime> runtime_;
  uint16_t port_ = 0;
  std::thread sim_thread_;
};

TEST_F(DapNativeTest, ScriptedSessionEndToEnd) {
  run_scripted_session(port_, [this] { run_async(8); }, "live");
}

TEST_F(DapNativeTest, SetVariableWritesThroughTheTypedServicePath) {
  DapClient client(port_);
  Json response = client.request("initialize");
  ASSERT_TRUE(response.get_bool("success"));
  // The native backend supports set-value, so the capability is on.
  EXPECT_TRUE(response["body"].get_bool("supportsSetVariable"));
  client.wait_event("initialized");

  ASSERT_TRUE(client.request("setBreakpoints", breakpoint_args("dap.cc", 7))
                  .get_bool("success"));
  ASSERT_TRUE(client.request("attach").get_bool("success"));
  ASSERT_TRUE(client.request("configurationDone").get_bool("success"));

  run_async(4);
  Json stopped = client.wait_event("stopped");
  const int64_t thread_id = stopped["body"].get_int("threadId");

  Json args = Json::object();
  args["threadId"] = Json(thread_id);
  response = client.request("stackTrace", std::move(args));
  ASSERT_TRUE(response.get_bool("success"));
  const int64_t frame_id =
      response["body"]["stackFrames"].at(0).get_int("id");

  args = Json::object();
  args["frameId"] = Json(frame_id);
  response = client.request("scopes", std::move(args));
  ASSERT_TRUE(response.get_bool("success"));
  const int64_t generator_ref =
      response["body"]["scopes"].at(1).get_int("variablesReference");

  // Write the register through the scope reference; the response echoes
  // the value the simulator actually took (evaluator read-back).
  args = Json::object();
  args["variablesReference"] = Json(generator_ref);
  args["name"] = Json("cycle_reg");
  args["value"] = Json("77");
  response = client.request("setVariable", std::move(args));
  ASSERT_TRUE(response.get_bool("success"));
  EXPECT_EQ(response["body"].get_string("value"), "77");
  EXPECT_EQ(response["body"].get_int("variablesReference"), 0);

  // The evaluator sees the forced value in the stopped frame, and the
  // cached variables table for the same reference is coherent.
  args = Json::object();
  args["expression"] = Json("cycle_reg");
  args["frameId"] = Json(frame_id);
  response = client.request("evaluate", std::move(args));
  ASSERT_TRUE(response.get_bool("success"));
  EXPECT_EQ(response["body"].get_string("result"), "77");

  args = Json::object();
  args["variablesReference"] = Json(generator_ref);
  response = client.request("variables", std::move(args));
  ASSERT_TRUE(response.get_bool("success"));
  bool found = false;
  for (const auto& variable : response["body"]["variables"].as_array()) {
    if (variable.get_string("name") == "cycle_reg") {
      EXPECT_EQ(variable.get_string("value"), "77");
      found = true;
    }
  }
  EXPECT_TRUE(found);

  // A name that resolves nowhere fails with a DAP error response, not a
  // dropped connection.
  args = Json::object();
  args["variablesReference"] = Json(generator_ref);
  args["name"] = Json("no_such_signal");
  args["value"] = Json("1");
  response = client.request("setVariable", std::move(args));
  EXPECT_FALSE(response.get_bool("success"));

  ASSERT_TRUE(client.request("continue").get_bool("success"));
  client.wait_event("stopped");
  ASSERT_TRUE(client.request("continue").get_bool("success"));
  ASSERT_TRUE(client.request("disconnect").get_bool("success"));
}

TEST_F(DapNativeTest, HgdbMetricsCustomRequestServesTheRegistry) {
  DapClient client(port_);
  ASSERT_TRUE(client.request("initialize").get_bool("success"));

  run_async(6);
  sim_thread_.join();

  Json response = client.request("hgdbMetrics");
  ASSERT_TRUE(response.get_bool("success"));
  // Both renderings of the same registry: the JSON snapshot for
  // programmatic consumers and the Prometheus page for scrapers.
  EXPECT_GE(response["body"]["metrics"]["counters"].get_int(
                "runtime.clock_edges"),
            6);
  const std::string prometheus = response["body"].get_string("prometheus");
  EXPECT_NE(prometheus.find("# TYPE hgdb_runtime_clock_edges counter"),
            std::string::npos);
  // The DAP dispatcher counts its own commands into the same registry.
  EXPECT_GE(response["body"]["metrics"]["counters"].get_int(
                "session.dap.command.initialize"),
            1);

  client.request("disconnect");
}

TEST_F(DapNativeTest, SplitAndCoalescedFramesOverTcp) {
  DapClient client(port_);

  // Split: one request delivered byte-dribbled across many TCP segments.
  const std::string framed = dap::FrameCodec::encode(
      R"({"seq":1,"type":"request","command":"initialize","arguments":{}})");
  for (size_t i = 0; i < framed.size(); i += 7) {
    client.send_raw(framed.substr(i, 7));
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  Json response = client.wait_event("initialized");
  EXPECT_EQ(response.get_string("event"), "initialized");

  // Coalesced: two complete requests in a single send. Both must be
  // answered, in order.
  const std::string two =
      dap::FrameCodec::encode(
          R"({"seq":2,"type":"request","command":"threads","arguments":{}})") +
      dap::FrameCodec::encode(
          R"({"seq":3,"type":"request","command":"attach","arguments":{}})");
  client.send_raw(two);
  dap::FrameCodec codec;
  std::vector<Json> responses;
  while (responses.size() < 2) {
    auto chunk = client.stream().receive_some();
    ASSERT_TRUE(chunk.has_value());
    codec.feed(*chunk);
    while (auto payload = codec.next()) {
      Json decoded = Json::parse(*payload);
      if (decoded.get_string("type") == "response") {
        responses.push_back(std::move(decoded));
      }
    }
  }
  EXPECT_EQ(responses[0].get_int("request_seq"), 2);
  EXPECT_TRUE(responses[0].get_bool("success"));
  EXPECT_EQ(responses[1].get_int("request_seq"), 3);
  EXPECT_TRUE(responses[1].get_bool("success"));
}

TEST_F(DapNativeTest, OversizedHeaderDropsTheConnection) {
  DapClient client(port_);
  // 16 KiB of header bytes with no terminating blank line: the codec's
  // 8 KiB cap must trip and the server must drop the connection instead of
  // buffering forever.
  client.send_raw(std::string(16 * 1024, 'x'));
  const auto closed = client.stream().receive_some();
  EXPECT_FALSE(closed.has_value());

  // The listener survives: a fresh client still gets served.
  DapClient fresh(port_);
  EXPECT_TRUE(fresh.request("initialize").get_bool("success"));
  fresh.request("disconnect");
}

TEST_F(DapNativeTest, AbruptDisconnectMidStopNeverHangsTheScheduler) {
  auto client = std::make_unique<DapClient>(port_);
  ASSERT_TRUE(client->request("initialize").get_bool("success"));
  ASSERT_TRUE(
      client->request("setBreakpoints", breakpoint_args("dap.cc", 7))
          .get_bool("success"));

  run_async(6);
  client->wait_event("stopped");
  // Kill the socket while the simulation is parked in the stop handshake
  // waiting for this client's answer. The teardown must resign the client
  // and auto-resume, or the sim thread never finishes.
  client->close();
  client.reset();

  sim_thread_.join();  // hangs forever if the scheduler was not released
  EXPECT_GE(simulator_->cycle(), 6u);
}

TEST_F(DapNativeTest, AbruptDisconnectMidRequestBytes) {
  // Half a request (header promises more bytes than ever arrive), then the
  // peer vanishes; the reader must tear the session down cleanly.
  auto client = std::make_unique<DapClient>(port_);
  client->send_raw("Content-Length: 500\r\n\r\n{\"seq\":1,");
  client->close();
  client.reset();

  // The service keeps serving: a fresh scripted client completes a full
  // round-trip.
  DapClient fresh(port_);
  EXPECT_TRUE(fresh.request("initialize").get_bool("success"));
  fresh.request("disconnect");
}

// -- replay backend ------------------------------------------------------------

class DapReplayTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "hgdb_dap_replay_" +
            std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() +
            ".vcd";
    auto compiled = compile_design();
    data_ = compiled.symbols;
    sim::Simulator simulator(compiled.netlist);
    sim::VcdWriter writer(simulator, path_);
    writer.attach();
    simulator.run(10);
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::string path_;
  symbols::SymbolTableData data_;
};

TEST_F(DapReplayTest, ScriptedSessionAgainstRecordedTrace) {
  symbols::MemorySymbolTable table(data_);
  vpi::ReplayBackend backend{trace::ReplayEngine(trace::parse_vcd_file(path_))};
  runtime::Runtime runtime(backend, table);
  runtime.attach();
  const uint16_t port = runtime.serve_dap(0);

  std::thread replay_thread;
  run_scripted_session(
      port,
      [&] {
        replay_thread = std::thread([&] { backend.run_forward(); });
      },
      "replay");

  replay_thread.join();
  runtime.stop_service();
}

// -- codec unit coverage -------------------------------------------------------

TEST(DapFrameCodec, ReassemblesSplitAndCoalescedFrames) {
  dap::FrameCodec codec;
  const std::string one = dap::FrameCodec::encode("{\"a\":1}");
  const std::string two = dap::FrameCodec::encode("{\"b\":2}");

  // Byte-by-byte feed of the first message: exactly one payload pops out,
  // and only once the final byte arrived.
  for (size_t i = 0; i + 1 < one.size(); ++i) {
    codec.feed(std::string_view(&one[i], 1));
    EXPECT_FALSE(codec.next().has_value()) << "byte " << i;
  }
  codec.feed(std::string_view(&one[one.size() - 1], 1));
  auto payload = codec.next();
  ASSERT_TRUE(payload.has_value());
  EXPECT_EQ(*payload, "{\"a\":1}");
  EXPECT_FALSE(codec.next().has_value());

  // Two messages in one feed: both pop, in order.
  codec.feed(one + two);
  payload = codec.next();
  ASSERT_TRUE(payload.has_value());
  EXPECT_EQ(*payload, "{\"a\":1}");
  payload = codec.next();
  ASSERT_TRUE(payload.has_value());
  EXPECT_EQ(*payload, "{\"b\":2}");
  EXPECT_FALSE(codec.next().has_value());
}

TEST(DapFrameCodec, IgnoresExtraHeadersAndWhitespace) {
  dap::FrameCodec codec;
  codec.feed("Content-Type: application/json\r\ncontent-length:  7 \r\n\r\n{\"a\":1}");
  auto payload = codec.next();
  ASSERT_TRUE(payload.has_value());
  EXPECT_EQ(*payload, "{\"a\":1}");
}

TEST(DapFrameCodec, RejectsMalformedHeaders) {
  {
    dap::FrameCodec codec;
    codec.feed(std::string(dap::FrameCodec::kMaxHeaderBytes + 1, 'h'));
    EXPECT_THROW(codec.next(), std::runtime_error);  // oversized header
  }
  {
    dap::FrameCodec codec;
    codec.feed("X-Whatever: 1\r\n\r\n");
    EXPECT_THROW(codec.next(), std::runtime_error);  // no Content-Length
  }
  {
    dap::FrameCodec codec;
    codec.feed("Content-Length: banana\r\n\r\n");
    EXPECT_THROW(codec.next(), std::runtime_error);  // non-numeric
  }
  {
    dap::FrameCodec codec;
    codec.feed("Content-Length: 99999999999999\r\n\r\n");
    EXPECT_THROW(codec.next(), std::runtime_error);  // body beyond the cap
  }
}

}  // namespace
}  // namespace hgdb::session
