#include "session/session_manager.h"

#include <gtest/gtest.h>

#include <thread>

#include "debugger/client.h"
#include "frontend/compile.h"
#include "ir/parser.h"
#include "rpc/tcp.h"
#include "runtime/runtime.h"
#include "sim/simulator.h"
#include "symbols/symbol_table.h"
#include "vpi/native_backend.h"

namespace hgdb::session {
namespace {

using debugger::DebugClient;
using debugger::Protocol;
using rpc::ErrorCode;

constexpr const char* kDesign = R"(circuit Demo
  module Demo
    input clock : Clock
    output out : UInt<8>
    reg cycle_reg : UInt<8> clock clock
    connect cycle_reg = add(cycle_reg, UInt<8>(1)) @[demo.cc 5 1]
    wire t : UInt<8> @[demo.cc 6 1]
    connect t = add(cycle_reg, UInt<8>(7)) @[demo.cc 7 1]
    connect out = t @[demo.cc 8 1]
  end
end
)";

/// Forwards everything to a wrapped backend but hides optional
/// capabilities — for checking that gated commands fail with typed errors.
class RestrictedBackend final : public vpi::SimulatorInterface {
 public:
  explicit RestrictedBackend(vpi::SimulatorInterface& inner) : inner_(&inner) {}

  std::optional<common::BitVector> get_value(const std::string& name) override {
    return inner_->get_value(name);
  }
  std::vector<std::string> signal_names() const override {
    return inner_->signal_names();
  }
  std::vector<std::string> clock_names() const override {
    return inner_->clock_names();
  }
  uint64_t add_clock_callback(ClockCallback callback) override {
    return inner_->add_clock_callback(std::move(callback));
  }
  void remove_clock_callback(uint64_t handle) override {
    inner_->remove_clock_callback(handle);
  }
  uint64_t get_time() const override { return inner_->get_time(); }
  bool supports_time_travel() const override { return false; }
  bool supports_set_value() const override { return false; }

 private:
  vpi::SimulatorInterface* inner_;
};

/// Two v2 clients attached over real TCP to one runtime: the session
/// layer broadcasts stops to both and tracks ownership independently.
class SessionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    frontend::CompileOptions options;
    options.debug_mode = true;
    auto compiled = frontend::compile(ir::parse_circuit(kDesign), options);
    table_ = std::make_unique<symbols::MemorySymbolTable>(compiled.symbols);
    simulator_ = std::make_unique<sim::Simulator>(compiled.netlist);
    backend_ = std::make_unique<vpi::NativeBackend>(*simulator_);
    runtime_ = std::make_unique<runtime::Runtime>(*backend_, *table_);
    runtime_->attach();

    const uint16_t port = runtime_->serve_tcp(0);
    client_a_ = std::make_unique<DebugClient>(
        rpc::tcp_connect("127.0.0.1", port));
    client_b_ = std::make_unique<DebugClient>(
        rpc::tcp_connect("127.0.0.1", port));
    ASSERT_TRUE(client_a_->connect("client-a"));
    ASSERT_TRUE(client_b_->connect("client-b"));
  }

  void TearDown() override {
    if (sim_thread_.joinable()) sim_thread_.join();
    runtime_->stop_service();
  }

  void run_async(uint64_t cycles) {
    sim_thread_ = std::thread([this, cycles] {
      while (simulator_->cycle() < cycles) simulator_->tick();
    });
  }

  std::unique_ptr<symbols::MemorySymbolTable> table_;
  std::unique_ptr<sim::Simulator> simulator_;
  std::unique_ptr<vpi::NativeBackend> backend_;
  std::unique_ptr<runtime::Runtime> runtime_;
  std::unique_ptr<DebugClient> client_a_;
  std::unique_ptr<DebugClient> client_b_;
  std::thread sim_thread_;
};

TEST_F(SessionTest, ConnectNegotiatesCapabilities) {
  ASSERT_TRUE(client_a_->capabilities().has_value());
  const auto& caps = *client_a_->capabilities();
  EXPECT_EQ(caps.backend, "live");
  EXPECT_FALSE(caps.time_travel);  // checkpoints not enabled
  EXPECT_TRUE(caps.set_value);
  EXPECT_TRUE(caps.multi_client);
  EXPECT_TRUE(caps.watchpoints);
}

TEST_F(SessionTest, IndependentBreakpointOwnership) {
  ASSERT_EQ(client_a_->set_breakpoint("demo.cc", 5).size(), 1u);
  ASSERT_EQ(client_b_->set_breakpoint("demo.cc", 7).size(), 1u);
  EXPECT_EQ(client_a_->info()["breakpoints"].size(), 2u);

  // B does not own A's location: removing it is a no-op.
  EXPECT_EQ(client_b_->remove_breakpoint("demo.cc", 5), 0u);
  EXPECT_EQ(client_a_->info()["breakpoints"].size(), 2u);

  // A removes its own location.
  EXPECT_EQ(client_a_->remove_breakpoint("demo.cc", 5), 1u);
  auto info = client_b_->info();
  ASSERT_EQ(info["breakpoints"].size(), 1u);
  EXPECT_EQ(info["breakpoints"].at(0).get_int("line"), 7);
}

TEST_F(SessionTest, SharedLocationSurvivesSingleOwnerRemoval) {
  ASSERT_EQ(client_a_->set_breakpoint("demo.cc", 7).size(), 1u);
  ASSERT_EQ(client_b_->set_breakpoint("demo.cc", 7).size(), 1u);
  // A releases its reference; B still holds the location.
  EXPECT_EQ(client_a_->remove_breakpoint("demo.cc", 7), 0u);
  EXPECT_EQ(client_a_->info()["breakpoints"].size(), 1u);
  // B's removal drops the last reference.
  EXPECT_EQ(client_b_->remove_breakpoint("demo.cc", 7), 1u);
  EXPECT_EQ(client_a_->info()["breakpoints"].size(), 0u);
}

TEST_F(SessionTest, BothClientsObserveTheStop) {
  ASSERT_EQ(client_a_->set_breakpoint("demo.cc", 7).size(), 1u);
  run_async(5);
  auto stop_a = client_a_->wait_stop(std::chrono::milliseconds(5000));
  auto stop_b = client_b_->wait_stop(std::chrono::milliseconds(5000));
  ASSERT_TRUE(stop_a.has_value());
  ASSERT_TRUE(stop_b.has_value());
  EXPECT_EQ(stop_a->time, stop_b->time);
  ASSERT_EQ(stop_a->frames.size(), 1u);
  ASSERT_EQ(stop_b->frames.size(), 1u);
  EXPECT_EQ(stop_b->frames[0].line, 7u);
  client_a_->detach();
  client_b_->detach();
}

TEST_F(SessionTest, DetachOfOneClientKeepsTheOther) {
  ASSERT_EQ(client_a_->set_breakpoint("demo.cc", 5).size(), 1u);
  ASSERT_EQ(client_b_->set_breakpoint("demo.cc", 7).size(), 1u);
  run_async(6);

  // First stop: line 5 (A's breakpoint), broadcast to both.
  auto stop_a = client_a_->wait_stop(std::chrono::milliseconds(5000));
  ASSERT_TRUE(stop_a.has_value());
  EXPECT_EQ(stop_a->frames[0].line, 5u);
  auto stop_b1 = client_b_->wait_stop(std::chrono::milliseconds(5000));
  ASSERT_TRUE(stop_b1.has_value());

  // A detaches: its breakpoint dies, B's survives. B still owes an answer
  // for the stop (the sim is guaranteed to be waiting — a departing
  // client never steals a stop from an engaged one), so B resumes.
  ASSERT_TRUE(client_a_->detach());
  EXPECT_EQ(client_b_->info()["breakpoints"].size(), 1u);
  ASSERT_TRUE(client_b_->resume());

  // Next stop: line 7 (B's breakpoint) — only B is interested now.
  auto stop_b2 = client_b_->wait_stop(std::chrono::milliseconds(5000));
  ASSERT_TRUE(stop_b2.has_value());
  EXPECT_EQ(stop_b2->frames[0].line, 7u);
  client_b_->detach();
}

TEST_F(SessionTest, DisconnectOfOneClientKeepsTheOther) {
  ASSERT_EQ(client_b_->set_breakpoint("demo.cc", 7).size(), 1u);
  ASSERT_TRUE(client_a_->disconnect());
  client_a_.reset();  // closes the socket

  run_async(4);
  auto stop = client_b_->wait_stop(std::chrono::milliseconds(5000));
  ASSERT_TRUE(stop.has_value());
  EXPECT_EQ(stop->frames[0].line, 7u);
  client_b_->detach();
}

TEST_F(SessionTest, WatchpointFiresOnValueChange) {
  auto watch_id = client_a_->watch("cycle_reg");
  ASSERT_TRUE(watch_id.has_value());
  run_async(3);
  auto stop = client_a_->wait_stop(std::chrono::milliseconds(5000));
  ASSERT_TRUE(stop.has_value());
  ASSERT_EQ(stop->watch_hits.size(), 1u);
  EXPECT_EQ(stop->watch_hits[0].id, *watch_id);
  EXPECT_EQ(stop->watch_hits[0].expression, "cycle_reg");
  EXPECT_NE(stop->watch_hits[0].old_value, stop->watch_hits[0].new_value);
  ASSERT_TRUE(client_a_->unwatch(*watch_id));
  ASSERT_TRUE(client_a_->resume());
}

TEST_F(SessionTest, UnwatchRequiresOwnership) {
  auto watch_id = client_a_->watch("cycle_reg");
  ASSERT_TRUE(watch_id.has_value());
  EXPECT_FALSE(client_b_->unwatch(*watch_id));
  EXPECT_EQ(client_b_->last_error_code(), ErrorCode::NoSuchEntity);
  EXPECT_TRUE(client_a_->unwatch(*watch_id));
}

TEST_F(SessionTest, BatchedEvaluation) {
  client_a_->set_breakpoint("demo.cc", 5);
  run_async(4);
  auto stop = client_a_->wait_stop(std::chrono::milliseconds(5000));
  ASSERT_TRUE(stop.has_value());
  const int64_t bp_id = stop->frames[0].breakpoint_id;

  const auto results = client_a_->evaluate_batch(
      {"cycle_reg", "cycle_reg + 1", "no_such_signal"}, bp_id);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[0].ok);
  EXPECT_EQ(results[0].value, "1");
  EXPECT_TRUE(results[1].ok);
  EXPECT_EQ(results[1].value, "2");
  EXPECT_FALSE(results[2].ok);
  EXPECT_FALSE(results[2].reason.empty());
  client_a_->detach();
}

TEST_F(SessionTest, HierarchyBrowsing) {
  const auto instances = client_a_->list_instances();
  ASSERT_EQ(instances.size(), 1u);
  EXPECT_EQ(instances.at(0).get_string("name"), "Demo");

  const auto variables = client_a_->list_variables("Demo");
  bool found_cycle_reg = false;
  for (const auto& variable : variables.as_array()) {
    if (variable.get_string("name") == "cycle_reg") found_cycle_reg = true;
  }
  EXPECT_TRUE(found_cycle_reg);

  EXPECT_FALSE(client_a_->list_variables("NoSuchInstance").size() > 0);
  EXPECT_EQ(client_a_->last_error_code(), ErrorCode::NoSuchEntity);
}

TEST_F(SessionTest, StatsReportSessionsAndCounters) {
  run_async(4);
  sim_thread_.join();
  const auto stats = client_a_->stats();
  EXPECT_EQ(stats.get_int("sessions"), 2);
  EXPECT_GE(stats.get_int("clock_edges"), 4);
  EXPECT_GE(stats.get_int("requests"), 1);
  // Compiled-evaluation pipeline counters are part of the v2 payload.
  EXPECT_TRUE(stats.contains("eval_ns"));
  EXPECT_TRUE(stats.contains("dirty_skips"));
  EXPECT_TRUE(stats.contains("batch_fetches"));
  EXPECT_TRUE(stats.contains("batch_signals"));
}

TEST_F(SessionTest, UnknownConditionSymbolIsTypedArmTimeError) {
  // The compiled engine resolves condition symbols when the breakpoint is
  // armed; an unknown name is a typed protocol error, not a breakpoint
  // that silently never fires.
  EXPECT_TRUE(
      client_a_->set_breakpoint("demo.cc", 7, "ghost_signal > 1").empty());
  EXPECT_EQ(client_a_->last_error_code(), ErrorCode::NoSuchEntity);
  // A resolvable condition still arms.
  EXPECT_FALSE(
      client_a_->set_breakpoint("demo.cc", 7, "cycle_reg > 1").empty());
  EXPECT_EQ(client_a_->remove_breakpoint("demo.cc", 7), 1u);
}

TEST_F(SessionTest, UnknownWatchSymbolIsTypedArmTimeError) {
  EXPECT_FALSE(client_a_->watch("ghost_signal + 1").has_value());
  EXPECT_EQ(client_a_->last_error_code(), ErrorCode::NoSuchEntity);
}

TEST_F(SessionTest, MalformedInputGetsTypedErrorAndSessionSurvives) {
  const uint16_t port = runtime_->serve_tcp(0);
  auto raw = rpc::tcp_connect("127.0.0.1", port);

  // Garbage of every shape: each gets a structured v2 error (the channel
  // was promoted by the first v2 envelope) or v1 generic error, and the
  // session thread survives to answer the next request.
  raw->send(R"({"version":2,"command":"connect","token":1})");
  auto reply = raw->receive(std::chrono::milliseconds(2000));
  ASSERT_TRUE(reply.has_value());

  raw->send("complete garbage");
  reply = raw->receive(std::chrono::milliseconds(2000));
  ASSERT_TRUE(reply.has_value());
  auto message = rpc::parse_server_message_v2(*reply);
  EXPECT_EQ(message.response.error, ErrorCode::MalformedRequest);

  raw->send(R"({"version":2,"token":3})");
  reply = raw->receive(std::chrono::milliseconds(2000));
  ASSERT_TRUE(reply.has_value());
  message = rpc::parse_server_message_v2(*reply);
  EXPECT_EQ(message.response.error, ErrorCode::MalformedRequest);
  EXPECT_EQ(message.response.token, 3);

  raw->send(R"({"version":2,"command":"frobnicate","token":4})");
  reply = raw->receive(std::chrono::milliseconds(2000));
  ASSERT_TRUE(reply.has_value());
  message = rpc::parse_server_message_v2(*reply);
  EXPECT_EQ(message.response.error, ErrorCode::UnknownCommand);

  raw->send(R"({"version":2,"command":"breakpoint-add","token":5})");
  reply = raw->receive(std::chrono::milliseconds(2000));
  ASSERT_TRUE(reply.has_value());
  message = rpc::parse_server_message_v2(*reply);
  EXPECT_EQ(message.response.error, ErrorCode::InvalidPayload);

  // Still alive and well:
  raw->send(R"({"version":2,"command":"info","token":6})");
  reply = raw->receive(std::chrono::milliseconds(2000));
  ASSERT_TRUE(reply.has_value());
  message = rpc::parse_server_message_v2(*reply);
  EXPECT_TRUE(message.response.ok());
}

TEST_F(SessionTest, RawV1MessagesFlowThroughTheCompatShim) {
  const uint16_t port = runtime_->serve_tcp(0);
  auto raw = rpc::tcp_connect("127.0.0.1", port);

  raw->send(
      R"({"type":"breakpoint","action":"add","filename":"demo.cc","line":7,"column":0,"token":11})");
  auto reply = raw->receive(std::chrono::milliseconds(2000));
  ASSERT_TRUE(reply.has_value());
  const auto message = rpc::parse_server_message(*reply);
  EXPECT_EQ(message.kind, rpc::ServerMessage::Kind::Generic);
  EXPECT_EQ(message.generic.token, 11);
  EXPECT_TRUE(message.generic.success);
  EXPECT_EQ(message.generic.payload.get("ids")->get().size(), 1u);

  // Malformed v1 gets a v1-format error, not a dead thread.
  raw->send(R"({"type":"breakpoint","token":12})");
  reply = raw->receive(std::chrono::milliseconds(2000));
  ASSERT_TRUE(reply.has_value());
  const auto error = rpc::parse_server_message(*reply);
  EXPECT_FALSE(error.generic.success);
  EXPECT_EQ(error.generic.token, 12);
}

TEST_F(SessionTest, SessionManagerExposesState) {
  auto* manager = runtime_->session_manager();
  ASSERT_NE(manager, nullptr);
  EXPECT_EQ(manager->session_count(), 2u);
  const auto caps = manager->capabilities();
  EXPECT_EQ(caps.backend, "live");
  const auto names = manager->command_names();
  EXPECT_GE(names.size(), 20u);
}

TEST(SessionGating, JumpWithoutTimeTravelFailsWithTypedError) {
  frontend::CompileOptions options;
  options.debug_mode = true;
  auto compiled = frontend::compile(ir::parse_circuit(kDesign), options);
  symbols::MemorySymbolTable table(compiled.symbols);
  sim::Simulator simulator(compiled.netlist);
  vpi::NativeBackend native(simulator);
  RestrictedBackend backend(native);
  runtime::Runtime runtime(backend, table);
  runtime.attach();

  auto [client_side, server_side] = rpc::make_channel_pair();
  runtime.serve(std::move(server_side));
  DebugClient client(std::move(client_side));
  ASSERT_TRUE(client.connect());
  ASSERT_TRUE(client.capabilities().has_value());
  EXPECT_FALSE(client.capabilities()->time_travel);
  EXPECT_EQ(client.capabilities()->backend, "live");

  // The gate rejects jump before any state checks — even while running.
  EXPECT_FALSE(client.jump(10));
  EXPECT_EQ(client.last_error_code(), ErrorCode::UnsupportedCapability);

  EXPECT_FALSE(client.set_value("cycle_reg", "3"));
  EXPECT_EQ(client.last_error_code(), ErrorCode::UnsupportedCapability);

  runtime.stop_service();
}

TEST(SessionGating, SetValueWorksWhenSupported) {
  frontend::CompileOptions options;
  options.debug_mode = true;
  auto compiled = frontend::compile(ir::parse_circuit(kDesign), options);
  symbols::MemorySymbolTable table(compiled.symbols);
  sim::Simulator simulator(compiled.netlist);
  vpi::NativeBackend backend(simulator);
  runtime::Runtime runtime(backend, table);
  runtime.attach();

  auto [client_side, server_side] = rpc::make_channel_pair();
  runtime.serve(std::move(server_side));
  DebugClient client(std::move(client_side));
  ASSERT_TRUE(client.connect());
  ASSERT_TRUE(client.capabilities()->set_value);

  EXPECT_TRUE(client.set_value("Demo.cycle_reg", "200"));
  auto value = client.evaluate("cycle_reg", std::nullopt);
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(*value, "200");

  EXPECT_FALSE(client.set_value("Demo.no_such_signal", "1"));
  EXPECT_EQ(client.last_error_code(), ErrorCode::NoSuchEntity);

  runtime.stop_service();
}

TEST(SessionGating, V1ClientModeStillWorksAgainstTheSessionLayer) {
  frontend::CompileOptions options;
  options.debug_mode = true;
  auto compiled = frontend::compile(ir::parse_circuit(kDesign), options);
  symbols::MemorySymbolTable table(compiled.symbols);
  sim::Simulator simulator(compiled.netlist);
  vpi::NativeBackend backend(simulator);
  runtime::Runtime runtime(backend, table);
  runtime.attach();

  auto [client_side, server_side] = rpc::make_channel_pair();
  runtime.serve(std::move(server_side));
  DebugClient client(std::move(client_side), Protocol::V1);

  ASSERT_EQ(client.set_breakpoint("demo.cc", 7).size(), 1u);
  std::thread sim_thread([&] {
    while (simulator.cycle() < 3) simulator.tick();
  });
  auto stop = client.wait_stop(std::chrono::milliseconds(5000));
  ASSERT_TRUE(stop.has_value());
  EXPECT_EQ(stop->frames[0].line, 7u);
  client.detach();
  sim_thread.join();
  runtime.stop_service();
}

}  // namespace
}  // namespace hgdb::session
