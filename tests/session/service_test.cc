// DebugService-era session semantics: per-session breakpoint conditions on
// one shared location (refcounted, stop routed by matched condition), the
// SessionManager accept limit, and push value-change subscriptions with
// per-client decimation.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "debugger/client.h"
#include "frontend/compile.h"
#include "ir/parser.h"
#include "rpc/tcp.h"
#include "runtime/runtime.h"
#include "session/session_manager.h"
#include "sim/simulator.h"
#include "symbols/symbol_table.h"
#include "vpi/native_backend.h"

namespace hgdb::session {
namespace {

using debugger::DebugClient;
using rpc::ErrorCode;

constexpr const char* kDesign = R"(circuit Svc
  module Svc
    input clock : Clock
    output out : UInt<8>
    reg cycle_reg : UInt<8> clock clock
    connect cycle_reg = add(cycle_reg, UInt<8>(1)) @[svc.cc 5 1]
    wire t : UInt<8> @[svc.cc 6 1]
    connect t = add(cycle_reg, UInt<8>(7)) @[svc.cc 7 1]
    connect out = t @[svc.cc 8 1]
  end
end
)";

class ServiceTest : public ::testing::Test {
 protected:
  void SetUp() override { SetUpWithOptions(runtime::RuntimeOptions{}); }

  void SetUpWithOptions(runtime::RuntimeOptions options) {
    frontend::CompileOptions compile_options;
    compile_options.debug_mode = true;
    auto compiled =
        frontend::compile(ir::parse_circuit(kDesign), compile_options);
    table_ = std::make_unique<symbols::MemorySymbolTable>(compiled.symbols);
    simulator_ = std::make_unique<sim::Simulator>(compiled.netlist);
    backend_ = std::make_unique<vpi::NativeBackend>(*simulator_);
    runtime_ =
        std::make_unique<runtime::Runtime>(*backend_, *table_, options);
    runtime_->attach();
    port_ = runtime_->serve_tcp(0);
  }

  void TearDown() override {
    if (sim_thread_.joinable()) sim_thread_.join();
    runtime_->stop_service();
  }

  std::unique_ptr<DebugClient> connect_client(const std::string& name) {
    auto client =
        std::make_unique<DebugClient>(rpc::tcp_connect("127.0.0.1", port_));
    if (!client->connect(name)) return client;  // caller checks the error
    return client;
  }

  void run_async(uint64_t cycles) {
    sim_thread_ = std::thread([this, cycles] {
      while (simulator_->cycle() < cycles) simulator_->tick();
    });
  }

  std::unique_ptr<symbols::MemorySymbolTable> table_;
  std::unique_ptr<sim::Simulator> simulator_;
  std::unique_ptr<vpi::NativeBackend> backend_;
  std::unique_ptr<runtime::Runtime> runtime_;
  uint16_t port_ = 0;
  std::thread sim_thread_;
};

// -- per-session conditions on one shared location -----------------------------

TEST_F(ServiceTest, EachSessionStopsOnlyOnItsOwnCondition) {
  auto client_a = connect_client("client-a");
  auto client_b = connect_client("client-b");

  // Two conditions refcounted on the same source location: the last insert
  // must NOT win — both arms stay live, and each stop routes only to the
  // session whose own condition matched.
  ASSERT_EQ(client_a->set_breakpoint("svc.cc", 7, "cycle_reg % 2 == 0").size(),
            1u);
  ASSERT_EQ(client_b->set_breakpoint("svc.cc", 7, "cycle_reg % 2 == 1").size(),
            1u);

  run_async(6);

  // cycle_reg alternates parity every cycle, so the stops must alternate
  // strictly between the two clients — whichever parity comes first.
  DebugClient* previous = nullptr;
  for (int round = 0; round < 4; ++round) {
    auto stop = client_a->wait_stop(std::chrono::milliseconds(1500));
    DebugClient* stopped = client_a.get();
    DebugClient* other = client_b.get();
    if (!stop) {
      stop = client_b->wait_stop(std::chrono::milliseconds(4000));
      stopped = client_b.get();
      other = client_a.get();
    }
    ASSERT_TRUE(stop.has_value()) << "round " << round;
    ASSERT_EQ(stop->frames.size(), 1u);
    const bool is_a = stopped == client_a.get();
    EXPECT_EQ(stop->frames[0].matched_conditions,
              (std::vector<std::string>{is_a ? "cycle_reg % 2 == 0"
                                             : "cycle_reg % 2 == 1"}))
        << "round " << round;
    auto parity =
        stopped->evaluate("cycle_reg % 2", stop->frames[0].breakpoint_id);
    ASSERT_TRUE(parity.has_value());
    EXPECT_EQ(*parity, is_a ? "0" : "1") << "round " << round;
    // The other session saw nothing for this stop.
    EXPECT_FALSE(other->wait_stop(std::chrono::milliseconds(200)))
        << "round " << round;
    if (previous != nullptr) {
      EXPECT_NE(previous, stopped) << "stops must alternate (round " << round
                                   << ")";
    }
    previous = stopped;
    ASSERT_TRUE(stopped->resume());
  }

  client_a->detach();
  client_b->detach();
}

TEST_F(ServiceTest, ConditionArmsAreRefcountedIndependently) {
  auto client_a = connect_client("client-a");
  auto client_b = connect_client("client-b");

  ASSERT_EQ(client_a->set_breakpoint("svc.cc", 7, "cycle_reg > 100").size(),
            1u);
  ASSERT_EQ(client_b->set_breakpoint("svc.cc", 7, "cycle_reg > 200").size(),
            1u);
  // A's removal drops only its own arm; the location stays inserted for B.
  EXPECT_EQ(client_a->remove_breakpoint("svc.cc", 7), 0u);
  EXPECT_EQ(client_b->info()["breakpoints"].size(), 1u);
  // B's removal drops the last arm.
  EXPECT_EQ(client_b->remove_breakpoint("svc.cc", 7), 1u);
  EXPECT_EQ(client_b->info()["breakpoints"].size(), 0u);
}

// -- SessionManager accept limit ----------------------------------------------

class SessionLimitTest : public ServiceTest {
 protected:
  void SetUp() override {
    runtime::RuntimeOptions options;
    options.max_sessions = 2;
    SetUpWithOptions(options);
  }
};

TEST_F(SessionLimitTest, RejectsClientsBeyondMaxSessionsWithTypedError) {
  auto client_a = connect_client("client-a");
  auto client_b = connect_client("client-b");
  ASSERT_TRUE(client_a->capabilities().has_value());
  ASSERT_TRUE(client_b->capabilities().has_value());

  // Third client: accepted at the socket, rejected by the service — its
  // first request is answered with the typed error, then the session ends.
  auto client_c =
      std::make_unique<DebugClient>(rpc::tcp_connect("127.0.0.1", port_));
  EXPECT_FALSE(client_c->connect("client-c"));
  EXPECT_EQ(client_c->last_error_code(), ErrorCode::TooManySessions);

  // A slot frees once a client disconnects; a retry eventually succeeds
  // (the reader thread unregisters shortly after the disconnect response).
  ASSERT_TRUE(client_a->disconnect());
  bool reconnected = false;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (std::chrono::steady_clock::now() < deadline) {
    auto retry =
        std::make_unique<DebugClient>(rpc::tcp_connect("127.0.0.1", port_));
    if (retry->connect("client-d")) {
      reconnected = true;
      retry->disconnect();
      break;
    }
    EXPECT_EQ(retry->last_error_code(), ErrorCode::TooManySessions);
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  EXPECT_TRUE(reconnected);
}

// -- push value-change subscriptions -------------------------------------------

TEST_F(ServiceTest, SubscriptionStreamsValueChangesWithoutStopping) {
  auto client = connect_client("subscriber");
  auto subscription = client->subscribe({"cycle_reg"});
  ASSERT_TRUE(subscription.has_value());

  constexpr uint64_t kCycles = 30;
  run_async(kCycles);
  sim_thread_.join();

  size_t events = 0;
  uint64_t last_time = 0;
  std::string last_value;
  while (auto event = client->wait_values(std::chrono::milliseconds(300))) {
    ASSERT_EQ(event->subscription, *subscription);
    ASSERT_EQ(event->changes.size(), 1u);
    EXPECT_EQ(event->changes[0].signal, "cycle_reg");
    EXPECT_GT(event->time, last_time);
    last_time = event->time;
    last_value = event->changes[0].value;
    ++events;
  }
  // cycle_reg changes every cycle: one event per rising edge (the first
  // doubles as the initial snapshot).
  EXPECT_GE(events, kCycles - 2);
  EXPECT_LE(events, kCycles + 2);
  EXPECT_FALSE(last_value.empty());

  // The stream never stopped the simulation.
  const auto stats = client->stats();
  EXPECT_EQ(stats.get_int("stops"), 0);
  EXPECT_EQ(stats.get_int("subscriptions"), 1);
  // No per-edge full re-fetch for subscribed-only signals: every batched
  // fetch round read exactly the one subscribed signal.
  EXPECT_GT(stats.get_int("batch_fetches"), 0);
  EXPECT_EQ(stats.get_int("batch_signals"), stats.get_int("batch_fetches"));

  EXPECT_TRUE(client->unsubscribe(*subscription));
  client->disconnect();
}

TEST_F(ServiceTest, DecimationDeliversEveryNthEvent) {
  auto client_full = connect_client("full-rate");
  auto client_deci = connect_client("decimated");

  auto sub_full = client_full->subscribe({"cycle_reg"}, 1);
  auto sub_deci = client_deci->subscribe({"cycle_reg"}, 4);
  ASSERT_TRUE(sub_full.has_value());
  ASSERT_TRUE(sub_deci.has_value());

  constexpr uint64_t kCycles = 40;
  run_async(kCycles);
  sim_thread_.join();

  size_t full = 0;
  while (client_full->wait_values(std::chrono::milliseconds(300))) ++full;
  size_t decimated = 0;
  while (client_deci->wait_values(std::chrono::milliseconds(300))) ++decimated;

  // The decimated client sees ~1/4 of the stream the full-rate client sees.
  EXPECT_GE(full, kCycles - 2);
  EXPECT_GE(decimated, full / 4 - 2);
  EXPECT_LE(decimated, full / 4 + 2);

  const auto stats = client_full->stats();
  EXPECT_GE(stats.get_int("events_delivered"),
            static_cast<int64_t>(full + decimated));
  EXPECT_GT(stats.get_int("events_decimated"), 0);

  client_full->disconnect();
  client_deci->disconnect();
}

TEST_F(ServiceTest, PlanRebuildDoesNotEmitSpuriousChanges) {
  // "clock" reads as 1 at every rising edge, so after the initial
  // snapshot the stream must stay silent — even across plan rebuilds
  // (another client arming/removing a breakpoint resets the change
  // serials, which must not masquerade as value changes).
  auto subscriber = connect_client("subscriber");
  auto other = connect_client("other");
  auto subscription = subscriber->subscribe({"clock"});
  ASSERT_TRUE(subscription.has_value());

  run_async(5);
  sim_thread_.join();
  size_t events = 0;
  std::string snapshot;
  while (auto event =
             subscriber->wait_values(std::chrono::milliseconds(300))) {
    snapshot = event->changes.at(0).value;
    ++events;
  }
  EXPECT_EQ(events, 1u);  // the initial snapshot only
  EXPECT_EQ(snapshot, "1");

  // Rebuild the fetch plan twice via an unrelated client, then run on.
  ASSERT_EQ(other->set_breakpoint("svc.cc", 5).size(), 1u);
  EXPECT_EQ(other->remove_breakpoint("svc.cc", 5), 1u);
  sim_thread_ = std::thread([this] {
    while (simulator_->cycle() < 10) simulator_->tick();
  });
  sim_thread_.join();
  EXPECT_FALSE(subscriber->wait_values(std::chrono::milliseconds(300)))
      << "plan rebuild re-reported an unchanged signal";

  subscriber->disconnect();
  other->disconnect();
}

TEST_F(ServiceTest, SubscribeUnknownSignalIsTypedError) {
  auto client = connect_client("subscriber");
  EXPECT_FALSE(client->subscribe({"ghost_signal"}).has_value());
  EXPECT_EQ(client->last_error_code(), ErrorCode::NoSuchEntity);
  client->disconnect();
}

TEST_F(ServiceTest, DisconnectDropsSubscriptions) {
  auto client = connect_client("subscriber");
  ASSERT_TRUE(client->subscribe({"cycle_reg"}).has_value());
  EXPECT_EQ(runtime_->subscription_count(), 1u);
  ASSERT_TRUE(client->disconnect());
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (runtime_->subscription_count() != 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_EQ(runtime_->subscription_count(), 0u);
}

}  // namespace
}  // namespace hgdb::session
