// The observability surface end to end over the v2 wire: the `metrics`
// command (Prometheus text + JSON snapshot from the unified registry),
// the extended `stats` latency quantiles, the `trace` recorder control
// with a Perfetto-JSON dump, and min-interval subscription throttling
// with its per-subscription drop counters.
#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>

#include "common/json.h"
#include "debugger/client.h"
#include "frontend/compile.h"
#include "ir/parser.h"
#include "obs/trace.h"
#include "rpc/tcp.h"
#include "runtime/runtime.h"
#include "sim/simulator.h"
#include "symbols/symbol_table.h"
#include "vpi/native_backend.h"

namespace hgdb::session {
namespace {

using common::Json;
using debugger::DebugClient;

constexpr const char* kDesign = R"(circuit Obs
  module Obs
    input clock : Clock
    output out : UInt<8>
    reg cycle_reg : UInt<8> clock clock
    connect cycle_reg = add(cycle_reg, UInt<8>(1)) @[obs.cc 5 1]
    wire t : UInt<8> @[obs.cc 6 1]
    connect t = add(cycle_reg, UInt<8>(7)) @[obs.cc 7 1]
    connect out = t @[obs.cc 8 1]
  end
end
)";

class ObservabilityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    frontend::CompileOptions compile_options;
    compile_options.debug_mode = true;
    auto compiled =
        frontend::compile(ir::parse_circuit(kDesign), compile_options);
    table_ = std::make_unique<symbols::MemorySymbolTable>(compiled.symbols);
    simulator_ = std::make_unique<sim::Simulator>(compiled.netlist);
    backend_ = std::make_unique<vpi::NativeBackend>(*simulator_);
    runtime_ = std::make_unique<runtime::Runtime>(*backend_, *table_);
    runtime_->attach();
    port_ = runtime_->serve_tcp(0);
  }

  void TearDown() override {
    if (sim_thread_.joinable()) sim_thread_.join();
    runtime_->stop_service();
  }

  std::unique_ptr<DebugClient> connect_client(const std::string& name) {
    auto client =
        std::make_unique<DebugClient>(rpc::tcp_connect("127.0.0.1", port_));
    client->connect(name);
    return client;
  }

  void run_async(uint64_t cycles) {
    sim_thread_ = std::thread([this, cycles] {
      while (simulator_->cycle() < cycles) simulator_->tick();
    });
  }

  std::unique_ptr<symbols::MemorySymbolTable> table_;
  std::unique_ptr<sim::Simulator> simulator_;
  std::unique_ptr<vpi::NativeBackend> backend_;
  std::unique_ptr<runtime::Runtime> runtime_;
  uint16_t port_ = 0;
  std::thread sim_thread_;
};

// -- `metrics` command ---------------------------------------------------------

TEST_F(ObservabilityTest, MetricsCommandServesPrometheusAndJson) {
  auto client = connect_client("metrics-reader");
  run_async(10);
  sim_thread_.join();

  // Prometheus page: typed series from every layer wired to the
  // runtime's registry — runtime counters, session counters, per-command
  // counts, latency histogram buckets.
  const std::string text = client->metrics();
  ASSERT_FALSE(text.empty()) << client->last_error();
  EXPECT_NE(text.find("# TYPE hgdb_runtime_clock_edges counter"),
            std::string::npos);
  EXPECT_NE(text.find("hgdb_session_requests"), std::string::npos);
  EXPECT_NE(text.find("hgdb_session_command_connect"), std::string::npos);
  EXPECT_NE(text.find("hgdb_runtime_batch_eval_ns_bucket"),
            std::string::npos);

  // Structured snapshot of the same registry: the clock ran 10 cycles.
  Json decoded = client->metrics_json();
  EXPECT_GE(decoded["counters"].get_int("runtime.clock_edges"), 10);
  EXPECT_GE(decoded["counters"].get_int("session.requests"), 1);

  client->disconnect();
}

TEST_F(ObservabilityTest, StatsReportsLatencyQuantilesFromTheRegistry) {
  auto client = connect_client("stats-reader");
  ASSERT_EQ(client->set_breakpoint("obs.cc", 7, "cycle_reg == 3").size(), 1u);
  run_async(6);
  auto stop = client->wait_stop(std::chrono::milliseconds(2000));
  ASSERT_TRUE(stop.has_value());
  client->resume();
  sim_thread_.join();

  Json stats = client->stats();
  // Condition evaluation ran, so the batch-eval histogram has samples and
  // its quantiles are power-of-two bucket upper bounds (2^k - 1 or 0).
  Json eval = stats["latency"]["runtime.batch_eval_ns"];
  EXPECT_GT(eval.get_int("count"), 0);
  const int64_t p99 = eval.get_int("p99");
  EXPECT_GE(p99, eval.get_int("p50"));
  EXPECT_TRUE(p99 == 0 || (p99 & (p99 + 1)) == 0) << p99;
  EXPECT_TRUE(stats["latency"].contains("session.stop_handshake_ns"));
  EXPECT_GE(stats.get_int("events_dropped"), 0);

  client->disconnect();
}

// -- `trace` command -----------------------------------------------------------

TEST_F(ObservabilityTest, TraceCommandRecordsSpansAndDumpsPerfettoJson) {
  auto client = connect_client("tracer");

  Json status = client->trace_control("status");
  ASSERT_TRUE(status.get_bool("spans_compiled"));
  EXPECT_FALSE(status.get_bool("enabled"));

  obs::TraceRecorder::global().clear();
  status = client->trace_control("start");
  EXPECT_TRUE(status.get_bool("enabled"));

  // Generate instrumented work while recording: breakpoint dispatch,
  // batched fetch, condition evaluation, the stop handshake.
  ASSERT_EQ(client->set_breakpoint("obs.cc", 7, "cycle_reg == 2").size(), 1u);
  run_async(5);
  auto stop = client->wait_stop(std::chrono::milliseconds(2000));
  ASSERT_TRUE(stop.has_value());
  client->resume();
  sim_thread_.join();

  status = client->trace_control("stop");
  EXPECT_FALSE(status.get_bool("enabled"));
  EXPECT_GT(status.get_int("recorded"), 0);

  const std::string dump = client->trace_dump();
  ASSERT_FALSE(dump.empty());
  Json decoded = Json::parse(dump);
  EXPECT_EQ(decoded.get_string("displayTimeUnit"), "ns");
  Json& events = decoded["traceEvents"];
  ASSERT_GT(events.size(), 0u);
  bool saw_runtime_span = false;
  bool saw_session_span = false;
  for (size_t i = 0; i < events.size(); ++i) {
    Json event = events.at(i);
    const std::string phase = event.get_string("ph");
    EXPECT_TRUE(phase == "X" || phase == "i") << phase;
    EXPECT_FALSE(event.get_string("name").empty());
    if (event.get_string("cat") == "runtime") saw_runtime_span = true;
    if (event.get_string("cat") == "session") saw_session_span = true;
  }
  EXPECT_TRUE(saw_runtime_span);
  EXPECT_TRUE(saw_session_span);

  // clear() empties the window for the next recording.
  status = client->trace_control("clear");
  Json cleared = Json::parse(client->trace_dump());
  EXPECT_EQ(cleared["traceEvents"].size(), 0u);

  client->disconnect();
}

// -- min-interval throttling ---------------------------------------------------

TEST_F(ObservabilityTest, MinIntervalThrottlesDeliveriesAndCountsDrops) {
  auto client = connect_client("throttled");
  // An interval far larger than the run: only the initial snapshot may
  // pass; every later change is dropped (not decimated — dropped).
  auto subscription = client->subscribe({"cycle_reg"}, 1, "", 1'000'000);
  ASSERT_TRUE(subscription.has_value());

  constexpr uint64_t kCycles = 20;
  run_async(kCycles);
  sim_thread_.join();

  size_t events = 0;
  while (client->wait_values(std::chrono::milliseconds(300))) ++events;
  EXPECT_EQ(events, 1u);  // the initial snapshot only

  Json stats = client->stats();
  const int64_t dropped = stats.get_int("events_dropped");
  EXPECT_GE(dropped, static_cast<int64_t>(kCycles) - 3);

  // The per-subscription drop counter lives in the registry while the
  // subscription is armed and is released with it.
  const std::string counter_name = "session.subscription." +
                                   std::to_string(*subscription) +
                                   ".events_dropped";
  Json metrics = client->metrics_json();
  EXPECT_GE(metrics["counters"].get_int(counter_name), dropped);
  ASSERT_TRUE(client->unsubscribe(*subscription));
  metrics = client->metrics_json();
  EXPECT_FALSE(metrics["counters"].contains(counter_name));

  client->disconnect();
}

TEST_F(ObservabilityTest, MinIntervalAdmitsEventsSpacedFarEnough) {
  auto client_throttled = connect_client("throttled");
  auto client_full = connect_client("full-rate");
  // cycle_reg changes once per cycle; requiring 4 sim-time units between
  // deliveries must thin the stream to roughly a quarter.
  auto sub_throttled = client_throttled->subscribe({"cycle_reg"}, 1, "", 4);
  auto sub_full = client_full->subscribe({"cycle_reg"});
  ASSERT_TRUE(sub_throttled.has_value());
  ASSERT_TRUE(sub_full.has_value());

  constexpr uint64_t kCycles = 40;
  run_async(kCycles);
  sim_thread_.join();

  size_t throttled = 0;
  uint64_t last_time = 0;
  bool first = true;
  while (auto event =
             client_throttled->wait_values(std::chrono::milliseconds(300))) {
    if (!first) EXPECT_GE(event->time - last_time, 4u);
    first = false;
    last_time = event->time;
    ++throttled;
  }
  size_t full = 0;
  while (client_full->wait_values(std::chrono::milliseconds(300))) ++full;

  EXPECT_GE(full, kCycles - 2);
  EXPECT_GT(throttled, 0u);
  EXPECT_LE(throttled, full / 2 + 2);  // visibly thinner than full rate

  client_throttled->disconnect();
  client_full->disconnect();
}

}  // namespace
}  // namespace hgdb::session
