// Binary event framing end-to-end: capability negotiation over `connect`,
// binary/JSON equivalence for pushed stop and value-change events,
// breakpoint-changed notifications between attached sessions, and the
// slow-client policy (a stalled subscriber never blocks the simulation
// thread; optionally it is disconnected).
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "common/json.h"
#include "debugger/client.h"
#include "frontend/compile.h"
#include "ir/parser.h"
#include "rpc/tcp.h"
#include "runtime/runtime.h"
#include "session/session_manager.h"
#include "sim/simulator.h"
#include "symbols/symbol_table.h"
#include "vpi/native_backend.h"

namespace hgdb::session {
namespace {

using common::Json;
using debugger::DebugClient;

constexpr const char* kDesign = R"(circuit Fan
  module Fan
    input clock : Clock
    output out : UInt<8>
    reg cycle_reg : UInt<8> clock clock
    connect cycle_reg = add(cycle_reg, UInt<8>(1)) @[fan.cc 5 1]
    wire t : UInt<8> @[fan.cc 6 1]
    connect t = add(cycle_reg, UInt<8>(7)) @[fan.cc 7 1]
    connect out = t @[fan.cc 8 1]
  end
end
)";

class FanoutTest : public ::testing::Test {
 protected:
  void SetUp() override { SetUpWithOptions(runtime::RuntimeOptions{}); }

  void SetUpWithOptions(runtime::RuntimeOptions options) {
    frontend::CompileOptions compile_options;
    compile_options.debug_mode = true;
    auto compiled =
        frontend::compile(ir::parse_circuit(kDesign), compile_options);
    table_ = std::make_unique<symbols::MemorySymbolTable>(compiled.symbols);
    simulator_ = std::make_unique<sim::Simulator>(compiled.netlist);
    backend_ = std::make_unique<vpi::NativeBackend>(*simulator_);
    runtime_ = std::make_unique<runtime::Runtime>(*backend_, *table_, options);
    runtime_->attach();
    port_ = runtime_->serve_tcp(0);
  }

  void TearDown() override {
    if (sim_thread_.joinable()) sim_thread_.join();
    runtime_->stop_service();
  }

  std::unique_ptr<DebugClient> connect_client(const std::string& name,
                                              bool binary = false) {
    auto client =
        std::make_unique<DebugClient>(rpc::tcp_connect("127.0.0.1", port_));
    EXPECT_TRUE(client->connect(name, binary)) << client->last_error();
    EXPECT_EQ(client->binary_events(), binary);
    return client;
  }

  void run_async(uint64_t cycles) {
    sim_thread_ = std::thread([this, cycles] {
      while (simulator_->cycle() < cycles) simulator_->tick();
    });
  }

  /// A synthetic broadcast stop (not condition-routed, so every passive
  /// observer receives it) with enough body to exercise the codec.
  /// `padding` inflates the locals so a storm outgrows kernel socket
  /// buffers and actually reaches the bounded queue.
  static rpc::StopEvent make_stop(uint64_t time, size_t padding = 0) {
    rpc::StopEvent stop;
    stop.time = time;
    rpc::Frame frame;
    frame.breakpoint_id = 1;
    frame.instance_id = 2;
    frame.instance_name = "Fan";
    frame.filename = "fan.cc";
    frame.line = 7;
    frame.column = 1;
    frame.locals = Json::parse(R"({"cycle_reg": "5", "t": "12"})");
    if (padding != 0) frame.locals["pad"] = Json(std::string(padding, 'x'));
    frame.generator = Json::parse(R"({"kind": "wire"})");
    frame.matched_conditions = {"cycle_reg > 0"};
    stop.frames.push_back(std::move(frame));
    return stop;
  }

  std::unique_ptr<symbols::MemorySymbolTable> table_;
  std::unique_ptr<sim::Simulator> simulator_;
  std::unique_ptr<vpi::NativeBackend> backend_;
  std::unique_ptr<runtime::Runtime> runtime_;
  uint16_t port_ = 0;
  std::thread sim_thread_;
};

// -- capability negotiation ----------------------------------------------------

TEST_F(FanoutTest, ConnectNegotiatesBinaryEvents) {
  auto json_client = connect_client("plain");
  auto binary_client = connect_client("binary", /*binary=*/true);
  ASSERT_TRUE(binary_client->capabilities().has_value());
  EXPECT_TRUE(binary_client->capabilities()->binary_events);
  // The opt-out client is told the capability exists but stays on JSON.
  EXPECT_FALSE(json_client->binary_events());
  // Commands still round-trip as JSON v2 on the binary session.
  EXPECT_TRUE(binary_client->info().contains("breakpoints"));
}

// -- binary <-> JSON equivalence on the real wire ------------------------------

TEST_F(FanoutTest, BinaryAndJsonClientsReceiveTheSameStop) {
  auto json_client = connect_client("json-observer");
  auto binary_client = connect_client("binary-observer", /*binary=*/true);

  auto& service = runtime_->session_manager()->service();
  service.deliver_stop(make_stop(777));

  auto json_stop = json_client->wait_stop(std::chrono::milliseconds(2000));
  auto binary_stop = binary_client->wait_stop(std::chrono::milliseconds(2000));
  ASSERT_TRUE(json_stop.has_value());
  ASSERT_TRUE(binary_stop.has_value());

  EXPECT_EQ(binary_stop->time, json_stop->time);
  ASSERT_EQ(binary_stop->frames.size(), json_stop->frames.size());
  const auto& b = binary_stop->frames[0];
  const auto& j = json_stop->frames[0];
  EXPECT_EQ(b.breakpoint_id, j.breakpoint_id);
  EXPECT_EQ(b.instance_id, j.instance_id);
  EXPECT_EQ(b.instance_name, j.instance_name);
  EXPECT_EQ(b.filename, j.filename);
  EXPECT_EQ(b.line, j.line);
  EXPECT_EQ(b.column, j.column);
  EXPECT_EQ(b.locals.dump(), j.locals.dump());
  EXPECT_EQ(b.generator.dump(), j.generator.dump());
  EXPECT_EQ(b.matched_conditions, j.matched_conditions);
}

TEST_F(FanoutTest, BinaryAndJsonSubscribersSeeTheSameValueStream) {
  auto json_client = connect_client("json-subscriber");
  auto binary_client = connect_client("binary-subscriber", /*binary=*/true);
  ASSERT_TRUE(json_client->subscribe({"cycle_reg"}).has_value());
  ASSERT_TRUE(binary_client->subscribe({"cycle_reg"}).has_value());

  run_async(8);
  sim_thread_.join();

  std::vector<debugger::ValueEvent> json_events;
  while (auto event = json_client->wait_values(std::chrono::milliseconds(300))) {
    json_events.push_back(std::move(*event));
  }
  std::vector<debugger::ValueEvent> binary_events;
  while (auto event =
             binary_client->wait_values(std::chrono::milliseconds(300))) {
    binary_events.push_back(std::move(*event));
  }

  ASSERT_FALSE(json_events.empty());
  ASSERT_EQ(binary_events.size(), json_events.size());
  for (size_t i = 0; i < json_events.size(); ++i) {
    EXPECT_EQ(binary_events[i].time, json_events[i].time) << "event " << i;
    ASSERT_EQ(binary_events[i].changes.size(), json_events[i].changes.size());
    for (size_t c = 0; c < json_events[i].changes.size(); ++c) {
      EXPECT_EQ(binary_events[i].changes[c].signal,
                json_events[i].changes[c].signal);
      EXPECT_EQ(binary_events[i].changes[c].value,
                json_events[i].changes[c].value);
      EXPECT_EQ(binary_events[i].changes[c].width,
                json_events[i].changes[c].width);
    }
  }
}

// -- breakpoint-changed notifications ------------------------------------------

TEST_F(FanoutTest, ArmAndDisarmNotifyOtherSessionsButNotTheActor) {
  auto actor = connect_client("actor");
  auto binary_peer = connect_client("binary-peer", /*binary=*/true);
  auto json_peer = connect_client("json-peer");

  ASSERT_EQ(actor->set_breakpoint("fan.cc", 7, "cycle_reg == 3").size(), 1u);

  for (auto* peer : {binary_peer.get(), json_peer.get()}) {
    auto armed = peer->wait_breakpoint_change(std::chrono::milliseconds(2000));
    ASSERT_TRUE(armed.has_value());
    EXPECT_EQ(armed->action, "armed");
    EXPECT_EQ(armed->filename, "fan.cc");
    EXPECT_EQ(armed->line, 7u);
    EXPECT_EQ(armed->condition, "cycle_reg == 3");
  }
  // The editing session itself is not notified.
  EXPECT_FALSE(
      actor->wait_breakpoint_change(std::chrono::milliseconds(200)).has_value());

  ASSERT_EQ(actor->remove_breakpoint("fan.cc", 7), 1u);
  for (auto* peer : {binary_peer.get(), json_peer.get()}) {
    auto disarmed =
        peer->wait_breakpoint_change(std::chrono::milliseconds(2000));
    ASSERT_TRUE(disarmed.has_value());
    EXPECT_EQ(disarmed->action, "disarmed");
    EXPECT_EQ(disarmed->filename, "fan.cc");
    EXPECT_EQ(disarmed->line, 7u);
  }
}

// -- slow-client policy --------------------------------------------------------

class SlowClientTest : public FanoutTest {
 protected:
  void SetUp() override {
    runtime::RuntimeOptions options;
    options.event_queue_frames = 64;
    options.event_queue_bytes = 128 * 1024;
    SetUpWithOptions(options);
  }
};

TEST_F(SlowClientTest, StalledBinarySubscriberNeverBlocksTheStopPath) {
  auto healthy = connect_client("healthy", /*binary=*/true);
  // The stalled client completes the handshake, then never reads again —
  // its socket buffer and then its bounded queue fill up.
  auto stalled = connect_client("stalled", /*binary=*/true);

  std::atomic<int> healthy_received{0};
  std::thread drain([&] {
    while (healthy->wait_stop(std::chrono::milliseconds(1500))) {
      healthy_received.fetch_add(1);
    }
  });

  auto& service = runtime_->session_manager()->service();
  constexpr int kEvents = 2000;
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < kEvents; ++i) {
    // 16 KB per event: the stalled client's socket buffer fills within the
    // first couple hundred events, then its bounded queue, then drops.
    service.deliver_stop(make_stop(static_cast<uint64_t>(i), 16 * 1024));
    // Paced so a *reading* client keeps up comfortably: drops below must
    // then come from the stalled client, not from outrunning everyone.
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  drain.join();

  // Without the bounded async writer the storm would park on the stalled
  // client's full socket and never return; with it the whole storm is a
  // matter of enqueues. The generous bound only guards against a hang.
  EXPECT_LT(std::chrono::duration_cast<std::chrono::seconds>(elapsed).count(),
            30);
  // The stalled client overflowed and paid with dropped events...
  EXPECT_GT(
      runtime_->metrics().counter("rpc.writer.events_dropped").value(), 0u);
  // ...while staying attached (drop, not disconnect, is the default), and
  // the healthy client kept receiving events throughout.
  EXPECT_EQ(runtime_->session_manager()->session_count(), 2u);
  EXPECT_GT(healthy_received.load(), kEvents / 2);
}

TEST_F(SlowClientTest, StalledJsonSubscriberNeverBlocksTheStopPath) {
  // Same storm as the binary case, but both observers stay on the legacy
  // JSON wire: since the JSON event path rides the same async writer, a
  // stalled JSON client sheds events from its bounded queue instead of
  // parking the delivery thread on its full socket.
  auto healthy = connect_client("healthy-json");
  auto stalled = connect_client("stalled-json");

  std::atomic<int> healthy_received{0};
  std::thread drain([&] {
    while (healthy->wait_stop(std::chrono::milliseconds(1500))) {
      healthy_received.fetch_add(1);
    }
  });

  auto& service = runtime_->session_manager()->service();
  constexpr int kEvents = 2000;
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < kEvents; ++i) {
    service.deliver_stop(make_stop(static_cast<uint64_t>(i), 16 * 1024));
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  drain.join();

  // Before the fix this storm blocked in ::send on the stalled client's
  // full socket buffer inside the delivery bracket; the generous bound
  // only guards against re-introducing that hang.
  EXPECT_LT(std::chrono::duration_cast<std::chrono::seconds>(elapsed).count(),
            30);
  EXPECT_GT(
      runtime_->metrics().counter("rpc.writer.events_dropped").value(), 0u);
  // Drop, not disconnect: both JSON clients stay attached, and the healthy
  // one kept receiving events throughout.
  EXPECT_EQ(runtime_->session_manager()->session_count(), 2u);
  EXPECT_GT(healthy_received.load(), kEvents / 2);
}

class DisconnectOnOverflowTest : public FanoutTest {
 protected:
  void SetUp() override {
    runtime::RuntimeOptions options;
    options.event_queue_frames = 16;
    options.event_queue_bytes = 32 * 1024;
    options.disconnect_slow_clients = true;
    SetUpWithOptions(options);
  }
};

TEST_F(DisconnectOnOverflowTest, OverflowDisconnectsWhenConfigured) {
  auto control = connect_client("control");
  auto stalled = connect_client("stalled", /*binary=*/true);
  ASSERT_EQ(runtime_->session_manager()->session_count(), 2u);

  // The JSON control client rides the same bounded writer queues as the
  // binary one, so it can never head-of-line-block the storm — but with
  // disconnect_on_overflow armed it must keep reading or the overflow
  // policy would disconnect *it* too, and this test wants the stalled
  // client to be the one that dies.
  std::atomic<bool> storm_done{false};
  std::thread drain([&] {
    while (!storm_done.load()) {
      control->wait_stop(std::chrono::milliseconds(100));
    }
  });

  auto& service = runtime_->session_manager()->service();
  for (int i = 0; i < 4000; ++i) {
    service.deliver_stop(make_stop(static_cast<uint64_t>(i), 16 * 1024));
    if (runtime_->session_manager()->session_count() < 2) break;
  }
  storm_done.store(true);
  drain.join();
  // The overflow marks the session dead synchronously; its reader thread
  // then reaps it. The JSON control client is untouched.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (runtime_->session_manager()->session_count() > 1 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(runtime_->session_manager()->session_count(), 1u);
  EXPECT_GT(
      runtime_->metrics().counter("rpc.writer.events_dropped").value(), 0u);
  EXPECT_TRUE(control->info().contains("breakpoints"));
}

// -- observability -------------------------------------------------------------

TEST_F(FanoutTest, WriterMetricsAreExposedThroughTheMetricsCommand) {
  auto binary_client = connect_client("binary-metrics", /*binary=*/true);

  auto& service = runtime_->session_manager()->service();
  service.deliver_stop(make_stop(1));
  ASSERT_TRUE(binary_client->wait_stop(std::chrono::milliseconds(2000)));

  // The metrics command itself answers over the writer too (single-writer
  // invariant), so bytes_sent covers responses and events alike.
  Json metrics = binary_client->metrics_json();
  EXPECT_GT(metrics["counters"].get_int("session.native.bytes_sent"), 0);
  EXPECT_GT(metrics["histograms"]["rpc.writer.queue_depth"].get_int("count"),
            0);
  EXPECT_GE(metrics["counters"].get_int("session.breakpoint_changes"), 0);
}

}  // namespace
}  // namespace hgdb::session
