// Sharded-index suite: per-scope shard files behind a manifest must hold
// exactly the same per-signal content as a single-file convert, stay
// byte-identical for every worker count, share one cache budget on the
// read side, and reject hostile manifests with typed faults.
#include <gtest/gtest.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <random>

#include "obs/metrics.h"
#include "trace/vcd_reader.h"
#include "waveform/indexed_waveform.h"
#include "waveform/manifest.h"
#include "waveform/sharded_writer.h"
#include "waveform/wvx_verify.h"

namespace hgdb::waveform {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  return bytes;
}

/// Multi-scope synthetic dump: `scopes` top-level modules, each with a
/// clock, a bus and a sparse flag; one cross-scope alias pair.
std::string multi_scope_vcd(size_t scopes, size_t cycles) {
  std::string out;
  for (size_t s = 0; s < scopes; ++s) {
    out += "$scope module mod" + std::to_string(s) + " $end\n";
    out += "$var wire 1 c" + std::to_string(s) + " clk $end\n";
    out += "$var wire 32 b" + std::to_string(s) + " bus $end\n";
    out += "$var wire 1 f" + std::to_string(s) + " flag $end\n";
    out += "$upscope $end\n";
  }
  // The same id code re-declared under another scope: an alias whose
  // canonical signal lives in mod0's shard.
  out += "$scope module mirror $end\n$var wire 32 b0 bus_alias $end\n";
  out += "$upscope $end\n$enddefinitions $end\n";
  std::mt19937_64 rng(17);
  for (size_t t = 0; t < cycles; ++t) {
    out += "#" + std::to_string(2 * t) + "\n";
    for (size_t s = 0; s < scopes; ++s) {
      out += "1c" + std::to_string(s) + "\n";
      if (rng() % 4 == 0 || t == 0) {
        std::string bits = "b";
        uint64_t value = rng();
        for (int bit = 31; bit >= 0; --bit) {
          bits += ((value >> bit) & 1) ? '1' : '0';
        }
        out += bits + " b" + std::to_string(s) + "\n";
      }
      if (rng() % 16 == 0 || t == 0) {
        out += (rng() % 2 == 0 ? "1f" : "0f") + std::to_string(s) + "\n";
      }
    }
    out += "#" + std::to_string(2 * t + 1) + "\n";
    for (size_t s = 0; s < scopes; ++s) out += "0c" + std::to_string(s) + "\n";
  }
  return out;
}

class ShardTest : public ::testing::Test {
 protected:
  void SetUp() override {
    stem_ = ::testing::TempDir() + "hgdb_shard_" + std::to_string(::getpid()) +
            "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name();
    vcd_path_ = stem_ + ".vcd";
  }

  void TearDown() override {
    std::remove(vcd_path_.c_str());
    for (const auto& path : produced_) std::remove(path.c_str());
    for (const auto& dir : dirs_) ::rmdir(dir.c_str());
  }

  void write_vcd(const std::string& text) {
    std::ofstream out(vcd_path_);
    out << text;
  }

  /// Sharded (or single-file) convert, tracking every output for cleanup.
  std::string convert(const std::string& tag, ShardedConvertOptions options) {
    const std::string path = stem_ + "." + tag + ".wvx";
    const auto result =
        convert_vcd_to_sharded_index(vcd_path_, path, options);
    produced_.push_back(path);
    for (uint32_t k = 0; k < result.shards; ++k) {
      produced_.push_back(stem_ + "." + tag + ".shard" + std::to_string(k) +
                          ".wvx");
    }
    return path;
  }

  std::string stem_, vcd_path_;
  std::vector<std::string> produced_;
  std::vector<std::string> dirs_;
};

TEST_F(ShardTest, ShardedConvertMatchesSingleFileContentExactly) {
  write_vcd(multi_scope_vcd(5, 120));
  auto trace = trace::parse_vcd_file(vcd_path_);

  ShardedConvertOptions single;
  single.shard_by_scope = false;
  const auto single_path = convert("single", single);

  ShardedConvertOptions sharded;
  sharded.jobs = 3;
  const auto manifest_path = convert("sharded", sharded);

  IndexedWaveform one(single_path);
  IndexedWaveform many(manifest_path);
  EXPECT_FALSE(one.sharded());
  EXPECT_TRUE(many.sharded());
  // 5 scopes with canonical signals; the alias-only `mirror` scope adds
  // none (its alias rides on mod0's shard).
  EXPECT_EQ(many.shard_count(), 5u);
  ASSERT_EQ(many.signal_count(), one.signal_count());
  EXPECT_EQ(many.max_time(), one.max_time());
  EXPECT_EQ(many.alias_count(), one.alias_count());

  // Differential: every signal's stream must be *identical in content* —
  // same block boundaries, same encoded sizes, same checksums, same codec
  // — only the file it lives in differs.
  for (size_t i = 0; i < one.signal_count(); ++i) {
    const auto& name = one.signal(i).hier_name;
    auto index = many.signal_index(name);
    ASSERT_TRUE(index.has_value()) << name;
    EXPECT_STREQ(many.signal_codec_name(*index), one.signal_codec_name(i));
    const auto& single_blocks = one.blocks(i);
    const auto& shard_blocks = many.blocks(*index);
    ASSERT_EQ(shard_blocks.size(), single_blocks.size()) << name;
    for (size_t b = 0; b < single_blocks.size(); ++b) {
      EXPECT_EQ(shard_blocks[b].start_time, single_blocks[b].start_time);
      EXPECT_EQ(shard_blocks[b].end_time, single_blocks[b].end_time);
      EXPECT_EQ(shard_blocks[b].count, single_blocks[b].count);
      EXPECT_EQ(shard_blocks[b].payload_bytes, single_blocks[b].payload_bytes)
          << name << " block " << b;
      EXPECT_EQ(shard_blocks[b].crc32, single_blocks[b].crc32)
          << name << " block " << b;
    }
  }

  // And both agree with the in-memory trace on every queried value.
  std::mt19937_64 rng(29);
  for (int q = 0; q < 500; ++q) {
    const size_t signal = rng() % trace.signal_count();
    const uint64_t time = rng() % (trace.max_time() + 2);
    auto index = many.signal_index(trace.signal(signal).hier_name);
    ASSERT_TRUE(index.has_value());
    ASSERT_EQ(many.value_at(*index, time), trace.value_at(signal, time));
  }
}

TEST_F(ShardTest, ShardBytesAreIdenticalForEveryJobCount) {
  write_vcd(multi_scope_vcd(4, 150));
  std::vector<std::vector<std::string>> images;
  for (uint32_t jobs : {1u, 2u, 4u}) {
    // Same base name in a per-jobs directory: the manifest embeds shard
    // *names*, so identical names make the manifest itself comparable too.
    const std::string dir = stem_ + ".jobs" + std::to_string(jobs);
    ASSERT_EQ(::mkdir(dir.c_str(), 0755), 0);
    const std::string manifest_path = dir + "/dump.wvx";
    ShardedConvertOptions options;
    options.jobs = jobs;
    const auto result =
        convert_vcd_to_sharded_index(vcd_path_, manifest_path, options);
    produced_.push_back(manifest_path);
    for (uint32_t k = 0; k < result.shards; ++k) {
      produced_.push_back(dir + "/dump.shard" + std::to_string(k) + ".wvx");
    }
    dirs_.push_back(dir);
    std::vector<std::string> files{read_file(manifest_path)};
    IndexedWaveform reader(manifest_path);
    for (const auto& shard : reader.shard_paths()) {
      files.push_back(read_file(shard));
    }
    images.push_back(std::move(files));
  }
  ASSERT_EQ(images[0].size(), images[1].size());
  ASSERT_EQ(images[0].size(), images[2].size());
  for (size_t f = 0; f < images[0].size(); ++f) {
    EXPECT_EQ(images[0][f], images[1][f]) << "file " << f << " (jobs 1 vs 2)";
    EXPECT_EQ(images[0][f], images[2][f]) << "file " << f << " (jobs 1 vs 4)";
  }
}

TEST_F(ShardTest, CrossScopeAliasSharesItsCanonicalShardAndStream) {
  write_vcd(multi_scope_vcd(3, 60));
  const auto path = convert("alias", ShardedConvertOptions{});
  IndexedWaveform reader(path);
  auto canonical = reader.signal_index("mod0.bus");
  auto alias = reader.signal_index("mirror.bus_alias");
  ASSERT_TRUE(canonical && alias);
  EXPECT_EQ(reader.canonical_index(*alias), *canonical);
  EXPECT_EQ(reader.value_at(*alias, 41), reader.value_at(*canonical, 41));
  EXPECT_EQ(reader.alias_count(), 1u);
}

TEST_F(ShardTest, OneCacheBudgetServesEveryShard) {
  write_vcd(multi_scope_vcd(6, 100));
  const auto path = convert("cache", ShardedConvertOptions{});
  IndexedWaveform reader(path, WaveformOpenOptions{4, IoMode::kAuto});
  ASSERT_GE(reader.shard_count(), 6u);
  // Touch blocks in every shard, far more streams than cache slots: the
  // *global* budget must hold, not a per-shard one.
  std::mt19937_64 rng(7);
  for (int q = 0; q < 400; ++q) {
    const size_t signal = rng() % reader.signal_count();
    (void)reader.value_at(signal, rng() % (reader.max_time() + 1));
  }
  const auto stats = reader.cache_stats();
  EXPECT_LE(stats.resident, 4u);
  EXPECT_LE(stats.peak_resident, 4u);
  EXPECT_GT(stats.evictions, 0u);
  // Lifetime counters are monotonic and survive residency churn.
  EXPECT_EQ(stats.hits + stats.misses, 400u);
}

TEST_F(ShardTest, ResidentGaugeAggregatesAcrossReadersByDelta) {
  write_vcd(multi_scope_vcd(2, 80));
  const auto path = convert("gauge", ShardedConvertOptions{});
  auto& gauge =
      obs::MetricsRegistry::global().gauge("waveform.block_cache.resident");
  const int64_t before = gauge.value();
  {
    IndexedWaveform a(path, WaveformOpenOptions{8, IoMode::kAuto});
    IndexedWaveform b(path, WaveformOpenOptions{8, IoMode::kAuto});
    for (size_t i = 0; i < a.signal_count(); ++i) {
      (void)a.value_at(i, 3);
      (void)b.value_at(i, 3);
    }
    const auto resident_a =
        static_cast<int64_t>(a.cache_stats().resident);
    const auto resident_b =
        static_cast<int64_t>(b.cache_stats().resident);
    ASSERT_GT(resident_a, 0);
    ASSERT_GT(resident_b, 0);
    // Two live readers: the process gauge is the *sum* of both caches'
    // residency, not whichever instance reported last.
    EXPECT_EQ(gauge.value(), before + resident_a + resident_b);
  }
  // Both destroyed: each settled its contribution on the way out.
  EXPECT_EQ(gauge.value(), before);
}

TEST_F(ShardTest, VerifyWalksEveryShardAndNamesCorruptOnes) {
  write_vcd(multi_scope_vcd(3, 80));
  const auto path = convert("verify", ShardedConvertOptions{});
  auto clean = verify_index(path);
  ASSERT_TRUE(clean.ok);
  EXPECT_EQ(clean.shards, 3u);
  EXPECT_NE(describe(clean, path).find("3 shard(s)"), std::string::npos);

  // Flip one payload byte inside shard 1: verify must fail with the
  // checksum fault even though shard 0 and the manifest are pristine.
  IndexedWaveform reader(path);
  const std::string victim = reader.shard_paths()[1];
  std::string bytes = read_file(victim);
  bytes[40] = static_cast<char>(bytes[40] ^ 0x5a);
  {
    std::ofstream out(victim, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  const auto corrupt = verify_index(path);
  EXPECT_FALSE(corrupt.ok);
  EXPECT_EQ(corrupt.fault, WvxFault::kChecksum);
}

TEST(ManifestFormat, RoundTripsAndRendersRelativeNames) {
  Manifest manifest;
  manifest.max_time = 12345;
  manifest.signal_count = 42;
  manifest.shards = {"dump.shard0.wvx", "dump.shard1.wvx"};
  const std::string bytes = encode_manifest(manifest);
  EXPECT_TRUE(is_manifest_bytes(bytes.data(), bytes.size()));
  const Manifest parsed = parse_manifest(bytes.data(), bytes.size());
  EXPECT_EQ(parsed.version, kWvxManifestVersion);
  EXPECT_EQ(parsed.max_time, 12345u);
  EXPECT_EQ(parsed.signal_count, 42u);
  EXPECT_EQ(parsed.shards, manifest.shards);
}

TEST(ManifestFormat, ParserRejectsHostileBytesWithTypedFaults) {
  Manifest manifest;
  manifest.shards = {"a.wvx", "b.wvx"};
  const std::string good = encode_manifest(manifest);

  auto fault_of = [](const std::string& bytes) {
    try {
      (void)parse_manifest(bytes.data(), bytes.size());
    } catch (const WvxError& error) {
      return error.fault();
    }
    return WvxFault::kNotFound;  // sentinel: "did not throw"
  };

  // Wrong magic.
  std::string bad = good;
  bad[0] = 'X';
  EXPECT_EQ(fault_of(bad), WvxFault::kBadMagic);
  // Future version.
  bad = good;
  bad[4] = 9;
  EXPECT_EQ(fault_of(bad), WvxFault::kBadVersion);
  // Zero shards.
  bad = good;
  bad[8] = 0;
  EXPECT_EQ(fault_of(bad), WvxFault::kCorrupt);
  // Implausible shard count.
  bad = good;
  bad[8] = static_cast<char>(0xff);
  bad[9] = static_cast<char>(0xff);
  EXPECT_EQ(fault_of(bad), WvxFault::kCorrupt);
  // Nonzero reserved flags.
  bad = good;
  bad[12] = 1;
  EXPECT_EQ(fault_of(bad), WvxFault::kCorrupt);
  // Truncations at every prefix length must be typed, never a crash or an
  // over-read (the fuzz harness walks the same property with random cuts).
  for (size_t cut = 0; cut < good.size(); ++cut) {
    const auto fault = fault_of(good.substr(0, cut));
    EXPECT_TRUE(fault == WvxFault::kTruncatedDirectory ||
                fault == WvxFault::kBadMagic || fault == WvxFault::kCorrupt ||
                fault == WvxFault::kChecksum)
        << "cut at " << cut;
  }
  // Flipped checksum byte.
  bad = good;
  bad.back() = static_cast<char>(bad.back() ^ 1);
  EXPECT_EQ(fault_of(bad), WvxFault::kChecksum);
  // Trailing bytes after the checksum.
  bad = good + "zz";
  EXPECT_EQ(fault_of(bad), WvxFault::kCorrupt);

  // Escaping names: separators and traversal are rejected outright.
  for (const char* name : {"../a.wvx", "a/b.wvx", "a\\b.wvx", "", ".", ".."}) {
    Manifest hostile;
    hostile.shards = {name};
    const std::string bytes = encode_manifest(hostile);
    EXPECT_EQ(fault_of(bytes), WvxFault::kCorrupt) << "name '" << name << "'";
  }
}

TEST(ManifestFormat, ReaderRefusesManifestsThatPointOutsideTheirDirectory) {
  // End to end: a hostile manifest written to disk must not make the
  // reader open a path outside its directory.
  const std::string dir = ::testing::TempDir();
  const std::string path =
      dir + "hgdb_hostile_" + std::to_string(::getpid()) + ".wvx";
  Manifest hostile;
  hostile.shards = {"../../etc/passwd"};
  // write_manifest itself doesn't validate (it writes what it is told,
  // like any producer bug would); the *parser* is the trust boundary.
  write_manifest(path, hostile);
  EXPECT_THROW((void)IndexedWaveform(path), WvxError);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace hgdb::waveform
