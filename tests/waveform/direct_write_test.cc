// Differential test of the simulator -> .wvx direct write path: dumping
// the same run to VCD text (then converting) and straight to the index
// must produce waveform stores that answer every query bit-identically —
// the acceptance gate for skipping the VCD round-trip.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <memory>

#include "frontend/compile.h"
#include "ir/parser.h"
#include "sim/simulator.h"
#include "sim/vcd_writer.h"
#include "trace/replay.h"
#include "trace/vcd_reader.h"
#include "waveform/index_writer.h"
#include "waveform/indexed_waveform.h"
#include "waveform/wvx_verify.h"
#include "workloads/workloads.h"

namespace hgdb::waveform {
namespace {

/// 80-bit shift register: multi-word values + a 1-bit control, exercising
/// both codec paths (raw-wide and narrow-xor) end to end.
constexpr const char* kWide = R"(circuit Wide
  module Wide
    input clock : Clock
    input enable : UInt<1>
    output out : UInt<80>
    reg acc : UInt<80> clock clock
    connect acc = cat(bits(acc, 78, 0), enable)
    connect out = acc
  end
end
)";

class DirectWriteTest : public ::testing::Test {
 protected:
  void SetUp() override {
    stem_ = ::testing::TempDir() + "hgdb_direct_" + std::to_string(::getpid()) +
            "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name();
    vcd_path_ = stem_ + ".vcd";
    converted_path_ = stem_ + ".conv.wvx";
    direct_path_ = stem_ + ".direct.wvx";
  }

  void TearDown() override {
    std::remove(vcd_path_.c_str());
    std::remove(converted_path_.c_str());
    std::remove(direct_path_.c_str());
  }

  /// Runs `circuit` twice with identical stimulus: once dumping VCD text,
  /// once dumping the index directly.
  void dump_both(const char* circuit, uint64_t cycles) {
    for (const bool direct : {false, true}) {
      auto compiled = frontend::compile(ir::parse_circuit(circuit));
      sim::Simulator simulator(compiled.netlist);
      simulator.set_value("Wide.enable", 1);
      sim::VcdWriter writer(simulator, direct ? direct_path_ : vcd_path_);
      EXPECT_EQ(writer.direct_index(), direct);
      writer.attach();
      simulator.run(cycles);
      writer.finish();
    }
    convert_vcd_to_index(vcd_path_, converted_path_);
  }

  std::string stem_, vcd_path_, converted_path_, direct_path_;
};

TEST_F(DirectWriteTest, DirectEmissionRoundTripsBitIdentically) {
  dump_both(kWide, 100);

  IndexedWaveform converted(converted_path_);
  IndexedWaveform direct(direct_path_);
  EXPECT_EQ(direct.version(), kWvxVersion);

  // Same signal set (order may differ: the VCD header walks the scope
  // tree, the direct path the netlist), same values at every time.
  ASSERT_EQ(direct.signal_count(), converted.signal_count());
  for (size_t i = 0; i < converted.signal_count(); ++i) {
    const auto& name = converted.signal(i).hier_name;
    auto index = direct.signal_index(name);
    ASSERT_TRUE(index.has_value()) << name;
    EXPECT_EQ(direct.signal(*index).width, converted.signal(i).width);
    for (uint64_t t = 0; t <= converted.max_time() + 1; ++t) {
      ASSERT_EQ(direct.value_at(*index, t), converted.value_at(i, t))
          << name << " at " << t;
    }
    EXPECT_EQ(direct.rising_edges(*index), converted.rising_edges(i)) << name;
  }
  EXPECT_EQ(direct.max_time(), converted.max_time());

  // Both verify clean.
  EXPECT_TRUE(verify_index(converted_path_).ok);
  const auto result = verify_index(direct_path_);
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.version, kWvxVersion);
}

TEST_F(DirectWriteTest, DirectDumpReplaysOnTheFullEngine) {
  dump_both(kWide, 80);

  trace::ReplayEngine direct_engine(
      std::make_shared<IndexedWaveform>(direct_path_));
  trace::ReplayEngine converted_engine(
      std::make_shared<IndexedWaveform>(converted_path_));
  ASSERT_EQ(direct_engine.cycle_count(), converted_engine.cycle_count());
  EXPECT_EQ(direct_engine.edges(), converted_engine.edges());
  for (size_t cycle : {size_t{0}, size_t{17}, size_t{79}}) {
    direct_engine.seek_cycle(cycle);
    converted_engine.seek_cycle(cycle);
    EXPECT_EQ(direct_engine.value("Wide.out"),
              converted_engine.value("Wide.out"))
        << "cycle " << cycle;
  }
}

TEST_F(DirectWriteTest, FinishIsIdempotentAndDestructorFinalizes) {
  {
    auto compiled = frontend::compile(ir::parse_circuit(kWide));
    sim::Simulator simulator(compiled.netlist);
    sim::VcdWriter writer(simulator, direct_path_);
    writer.attach();
    simulator.run(10);
    writer.finish();
    writer.finish();  // no-op
  }
  EXPECT_TRUE(verify_index(direct_path_).ok);

  // Destructor-only finalization (no explicit finish()).
  {
    auto compiled = frontend::compile(ir::parse_circuit(kWide));
    sim::Simulator simulator(compiled.netlist);
    sim::VcdWriter writer(simulator, converted_path_);
    writer.attach();
    simulator.run(10);
  }
  EXPECT_TRUE(verify_index(converted_path_).ok);
}

TEST_F(DirectWriteTest, WorkloadDumpMatchesAcrossPaths) {
  // A real workload (towers) with many signals; spot-check parity on the
  // full signal set at sampled times.
  for (const bool direct : {false, true}) {
    frontend::CompileOptions options;
    options.debug_mode = true;
    auto compiled =
        frontend::compile(workloads::workload("towers").build(), options);
    sim::Simulator simulator(compiled.netlist);
    sim::VcdWriter writer(simulator, direct ? direct_path_ : vcd_path_);
    writer.attach();
    simulator.run(60);
    writer.finish();
  }
  convert_vcd_to_index(vcd_path_, converted_path_);

  IndexedWaveform converted(converted_path_);
  IndexedWaveform direct(direct_path_);
  ASSERT_EQ(direct.signal_count(), converted.signal_count());
  for (size_t i = 0; i < converted.signal_count(); ++i) {
    const auto& name = converted.signal(i).hier_name;
    auto index = direct.signal_index(name);
    ASSERT_TRUE(index.has_value()) << name;
    for (uint64_t t = 0; t <= converted.max_time(); t += 7) {
      ASSERT_EQ(direct.value_at(*index, t), converted.value_at(i, t))
          << name << " at " << t;
    }
  }
}

}  // namespace
}  // namespace hgdb::waveform
