// WriteBackend seam: the mmap write path must produce the same bytes as
// the buffered one (the reader can't tell how a file was written), grow
// past its initial chunk correctly, trim the growth slack on finish(),
// and reject patches outside the appended range.
#include "waveform/storage_backend.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <random>
#include <string>

#include "waveform/index_writer.h"
#include "waveform/indexed_waveform.h"

namespace hgdb::waveform {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

/// Same generator as index_test.cc: deterministic, includes >64-bit lanes.
std::string synthetic_vcd(size_t signals, size_t cycles) {
  std::string out = "$scope module top $end\n$var wire 1 ck clk $end\n";
  for (size_t i = 0; i < signals; ++i) {
    const uint32_t width = i % 3 == 2 ? 80 : 16;
    out += "$var wire " + std::to_string(width) + " c" + std::to_string(i) +
           " sig" + std::to_string(i) + " $end\n";
  }
  out += "$upscope $end\n$enddefinitions $end\n";
  std::mt19937_64 rng(11);
  for (size_t t = 0; t < cycles; ++t) {
    out += "#" + std::to_string(2 * t) + "\n1ck\n";
    for (size_t i = 0; i < signals; ++i) {
      if (rng() % 3 != 0 && t != 0) continue;
      const uint64_t value = rng();
      std::string bits = "b";
      for (int bit = 63; bit >= 0; --bit)
        bits += ((value >> bit) & 1) ? '1' : '0';
      out += bits + " c" + std::to_string(i) + "\n";
    }
    out += "#" + std::to_string(2 * t + 1) + "\n0ck\n";
  }
  return out;
}

class WriteBackendTest : public ::testing::Test {
 protected:
  void SetUp() override {
    stem_ = ::testing::TempDir() + "hgdb_write_backend_" +
            std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name();
  }
  void TearDown() override {
    for (const auto& path : cleanup_) std::remove(path.c_str());
  }

  std::string path(const std::string& suffix) {
    cleanup_.push_back(stem_ + suffix);
    return cleanup_.back();
  }

  std::string stem_;
  std::vector<std::string> cleanup_;
};

TEST_F(WriteBackendTest, AppendOffsetAndPatchRoundTrip) {
  for (IoMode mode : {IoMode::kBuffered, IoMode::kMmap}) {
    SCOPED_TRACE(to_string(mode));
    const auto file = path(std::string(".") + to_string(mode));
    auto backend = open_write_storage(file, mode);
    EXPECT_STREQ(backend->kind(), to_string(mode));
    EXPECT_EQ(backend->offset(), 0u);
    backend->append("placeholder-", 12);
    backend->append("payload", 7);
    EXPECT_EQ(backend->offset(), 19u);
    backend->write_at(0, "header-patch", 12);
    backend->finish();
    EXPECT_EQ(read_file(file), "header-patchpayload");
  }
}

TEST_F(WriteBackendTest, MmapGrowsPastInitialChunkAndTrimsSlack) {
  const auto file = path(".grow");
  auto backend = open_write_storage(file, IoMode::kMmap);
  // Push well past the initial chunk so the grow/remap path runs at
  // least twice; a stale mapping after remap would corrupt or crash.
  const std::string block(64 * 1024, 'x');
  const size_t kBlocks =
      3 * (1 << 20) / block.size() + 1;  // > 3 MiB total
  for (size_t i = 0; i < kBlocks; ++i) {
    backend->append(block.data(), block.size());
  }
  const uint64_t logical = backend->offset();
  EXPECT_EQ(logical, kBlocks * block.size());
  backend->write_at(logical - 4, "tail", 4);
  backend->finish();
  // finish() must truncate the chunk slack: on-disk size == logical size.
  const std::string contents = read_file(file);
  ASSERT_EQ(contents.size(), logical);
  EXPECT_EQ(contents.substr(logical - 4), "tail");
}

TEST_F(WriteBackendTest, PatchPastLogicalEndThrows) {
  for (IoMode mode : {IoMode::kBuffered, IoMode::kMmap}) {
    SCOPED_TRACE(to_string(mode));
    auto backend =
        open_write_storage(path(std::string(".oob.") + to_string(mode)), mode);
    backend->append("abc", 3);
    EXPECT_THROW(backend->write_at(2, "xy", 2), WvxError);
    EXPECT_THROW(backend->write_at(4, "x", 1), WvxError);
    backend->write_at(0, "xyz", 3);  // exactly the appended range is fine
    backend->finish();
  }
}

TEST_F(WriteBackendTest, MmapWrittenIndexIsByteIdenticalToBuffered) {
  const auto vcd = path(".vcd");
  {
    std::ofstream out(vcd);
    out << synthetic_vcd(6, 200);
  }
  const auto buffered_wvx = path(".buf.wvx");
  const auto mmap_wvx = path(".map.wvx");
  IndexWriterOptions buffered_options;
  buffered_options.io_mode = IoMode::kBuffered;
  IndexWriterOptions mmap_options;
  mmap_options.io_mode = IoMode::kMmap;
  convert_vcd_to_index(vcd, buffered_wvx, buffered_options);
  convert_vcd_to_index(vcd, mmap_wvx, mmap_options);

  const std::string buffered_bytes = read_file(buffered_wvx);
  ASSERT_FALSE(buffered_bytes.empty());
  EXPECT_EQ(buffered_bytes, read_file(mmap_wvx));

  // And the mmap-written file round-trips through the reader.
  IndexedWaveform waveform(mmap_wvx);
  EXPECT_GT(waveform.signal_count(), 0u);
  const auto index = waveform.signal_index("top.sig0");
  ASSERT_TRUE(index.has_value());
  EXPECT_FALSE(waveform.verify_blocks().has_value());
  EXPECT_GT(waveform.value_at(*index, 100).width(), 0u);
}

}  // namespace
}  // namespace hgdb::waveform
