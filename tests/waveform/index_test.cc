#include "waveform/indexed_waveform.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <random>

#include "trace/vcd_reader.h"
#include "waveform/index_writer.h"

namespace hgdb::waveform {
namespace {

/// Synthesizes a VCD with one clock and `signals` data signals over
/// `cycles` periods; deterministic values so both backends are comparable.
std::string synthetic_vcd(size_t signals, size_t cycles) {
  std::string out = "$scope module top $end\n$var wire 1 ck clk $end\n";
  for (size_t i = 0; i < signals; ++i) {
    const uint32_t width = i % 3 == 2 ? 80 : 16;  // include >64-bit lanes
    out += "$var wire " + std::to_string(width) + " c" + std::to_string(i) +
           " sig" + std::to_string(i) + " $end\n";
  }
  out += "$upscope $end\n$enddefinitions $end\n";
  std::mt19937_64 rng(7);
  for (size_t t = 0; t < cycles; ++t) {
    out += "#" + std::to_string(2 * t) + "\n1ck\n";
    for (size_t i = 0; i < signals; ++i) {
      if (rng() % 3 != 0 && t != 0) continue;
      const uint64_t value = rng();
      std::string bits = "b";
      for (int bit = 63; bit >= 0; --bit) bits += ((value >> bit) & 1) ? '1' : '0';
      out += bits + " c" + std::to_string(i) + "\n";
    }
    out += "#" + std::to_string(2 * t + 1) + "\n0ck\n";
  }
  return out;
}

class IndexedWaveformTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // pid + test name: unique across the concurrent ctest processes that
    // run this binary's cases in parallel (a `this` pointer is not — heap
    // layout repeats across processes, deterministically so under ASan).
    const std::string stem =
        ::testing::TempDir() + "hgdb_index_test_" +
        std::to_string(::getpid()) + "_" +
        ::testing::UnitTest::GetInstance()->current_test_info()->name();
    vcd_path_ = stem + ".vcd";
    wvx_path_ = stem + ".wvx";
  }
  void TearDown() override {
    std::remove(vcd_path_.c_str());
    std::remove(wvx_path_.c_str());
  }

  void write_vcd(const std::string& text) {
    std::ofstream out(vcd_path_);
    out << text;
  }

  std::string vcd_path_;
  std::string wvx_path_;
};

TEST_F(IndexedWaveformTest, RoundTripMatchesInMemoryTrace) {
  write_vcd(synthetic_vcd(6, 50));
  auto trace = trace::parse_vcd_file(vcd_path_);
  IndexWriterOptions options;
  options.block_capacity = 8;  // force multiple blocks per signal
  EXPECT_EQ(convert_vcd_to_index(vcd_path_, wvx_path_, options),
            trace.signal_count());

  IndexedWaveform indexed(wvx_path_);
  ASSERT_EQ(indexed.signal_count(), trace.signal_count());
  EXPECT_EQ(indexed.max_time(), trace.max_time());
  for (size_t i = 0; i < trace.signal_count(); ++i) {
    EXPECT_EQ(indexed.signal(i).hier_name, trace.signal(i).hier_name);
    EXPECT_EQ(indexed.signal(i).width, trace.signal(i).width);
    for (uint64_t t = 0; t <= trace.max_time() + 2; ++t) {
      ASSERT_EQ(indexed.value_at(i, t), trace.value_at(i, t))
          << trace.signal(i).hier_name << " at time " << t;
    }
    EXPECT_EQ(indexed.rising_edges(i), trace.rising_edges(i))
        << trace.signal(i).hier_name;
  }
}

TEST_F(IndexedWaveformTest, SignalIndexLookup) {
  write_vcd(synthetic_vcd(3, 5));
  convert_vcd_to_index(vcd_path_, wvx_path_);
  IndexedWaveform indexed(wvx_path_);
  ASSERT_TRUE(indexed.signal_index("top.sig0").has_value());
  EXPECT_EQ(indexed.signal(*indexed.signal_index("top.clk")).width, 1u);
  EXPECT_FALSE(indexed.signal_index("top.ghost").has_value());
}

TEST_F(IndexedWaveformTest, DirectoryIsTimeSortedWithBoundedBlocks) {
  write_vcd(synthetic_vcd(4, 100));
  IndexWriterOptions options;
  options.block_capacity = 16;
  convert_vcd_to_index(vcd_path_, wvx_path_, options);
  IndexedWaveform indexed(wvx_path_);
  for (size_t i = 0; i < indexed.signal_count(); ++i) {
    const auto& blocks = indexed.blocks(i);
    uint64_t previous_end = 0;
    size_t total = 0;
    for (size_t b = 0; b < blocks.size(); ++b) {
      EXPECT_LE(blocks[b].start_time, blocks[b].end_time);
      EXPECT_LE(blocks[b].count, options.block_capacity);
      EXPECT_GT(blocks[b].count, 0u);
      // >= rather than >: same-timestamp glitches may straddle a block
      // boundary, and the writer keeps them verbatim for backend parity.
      if (b > 0) EXPECT_GE(blocks[b].start_time, previous_end);
      previous_end = blocks[b].end_time;
      total += blocks[b].count;
    }
    EXPECT_GT(total, 0u);
  }
  // The clock toggles every step: it must span several blocks.
  EXPECT_GT(indexed.blocks(0).size(), 3u);
}

TEST_F(IndexedWaveformTest, LruResidencyIsBoundedByCapacity) {
  write_vcd(synthetic_vcd(8, 200));
  IndexWriterOptions options;
  options.block_capacity = 8;
  convert_vcd_to_index(vcd_path_, wvx_path_, options);

  constexpr size_t kCapacity = 3;
  IndexedWaveform indexed(wvx_path_, kCapacity);
  ASSERT_GT(indexed.total_blocks(), kCapacity * 4);

  std::mt19937_64 rng(11);
  for (int i = 0; i < 500; ++i) {
    const size_t signal = rng() % indexed.signal_count();
    const uint64_t time = rng() % (indexed.max_time() + 1);
    (void)indexed.value_at(signal, time);
  }
  const auto stats = indexed.cache_stats();
  EXPECT_LE(stats.peak_resident, kCapacity);
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_GT(stats.misses, 0u);
}

TEST_F(IndexedWaveformTest, HotBlockQueriesHitTheCache) {
  write_vcd(synthetic_vcd(2, 50));
  convert_vcd_to_index(vcd_path_, wvx_path_);
  IndexedWaveform indexed(wvx_path_, 16);
  for (int repeat = 0; repeat < 10; ++repeat) {
    (void)indexed.value_at(0, 5);
  }
  const auto stats = indexed.cache_stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 9u);
}

TEST_F(IndexedWaveformTest, SameTimestampGlitchesMatchInMemoryBackend) {
  // A 0->1->0 glitch within one #time: both backends must agree on the
  // final value AND the edge grid (the glitch produces a rising edge).
  write_vcd(
      "$var wire 1 c clk $end\n$enddefinitions $end\n"
      "#0\n0c\n1c\n0c\n#5\n1c\n");
  auto trace = trace::parse_vcd_file(vcd_path_);
  convert_vcd_to_index(vcd_path_, wvx_path_);
  IndexedWaveform indexed(wvx_path_);
  EXPECT_EQ(indexed.value_at(0, 0), trace.value_at(0, 0));
  EXPECT_EQ(indexed.value_at(0, 0).to_uint64(), 0u);  // last write at #0 wins
  EXPECT_EQ(indexed.rising_edges(0), trace.rising_edges(0));
  EXPECT_EQ(indexed.rising_edges(0), (std::vector<uint64_t>{0, 5}));
}

TEST_F(IndexedWaveformTest, ValueBeforeFirstChangeIsZero) {
  write_vcd(
      "$var wire 4 ! x $end\n$enddefinitions $end\n#5\nb111 !\n");
  convert_vcd_to_index(vcd_path_, wvx_path_);
  IndexedWaveform indexed(wvx_path_);
  EXPECT_EQ(indexed.value_at(0, 2).to_uint64(), 0u);
  EXPECT_EQ(indexed.value_at(0, 5).to_uint64(), 0b111u);
  EXPECT_EQ(indexed.value_at(0, 9).to_uint64(), 0b111u);
}

TEST_F(IndexedWaveformTest, WideValuesSurviveTheRoundTrip) {
  // 80-bit value with bits set above 64.
  write_vcd(
      "$var wire 80 ! wide $end\n$enddefinitions $end\n#0\nb1" +
      std::string(78, '0') + "1 !\n");
  convert_vcd_to_index(vcd_path_, wvx_path_);
  IndexedWaveform indexed(wvx_path_);
  const auto value = indexed.value_at(0, 0);
  EXPECT_EQ(value.width(), 80u);
  EXPECT_TRUE(value.bit(0));
  EXPECT_TRUE(value.bit(79));
  EXPECT_EQ(value.popcount(), 2u);
}

TEST_F(IndexedWaveformTest, RejectsMissingAndCorruptFiles) {
  EXPECT_THROW(IndexedWaveform("/nonexistent/trace.wvx"), std::runtime_error);

  {
    std::ofstream out(wvx_path_, std::ios::binary);
    out << "this is not a waveform index at all................";
  }
  EXPECT_THROW(IndexedWaveform{wvx_path_}, std::runtime_error);

  // A header-only file (writer died before on_finish): footer offset 0.
  {
    std::ofstream out(wvx_path_, std::ios::binary | std::ios::trunc);
    const uint32_t magic = kWvxMagic, version = kWvxVersion;
    out.write(reinterpret_cast<const char*>(&magic), 4);
    out.write(reinterpret_cast<const char*>(&version), 4);
    const char zeros[24] = {};
    out.write(zeros, 24);
  }
  EXPECT_THROW(IndexedWaveform{wvx_path_}, std::runtime_error);
}

TEST_F(IndexedWaveformTest, RejectsImplausibleFooterMetadata) {
  // A structurally valid header whose footer claims absurd counts must
  // fail cleanly instead of attempting huge allocations.
  write_vcd("$var wire 4 ! x $end\n$enddefinitions $end\n#0\nb101 !\n");
  convert_vcd_to_index(vcd_path_, wvx_path_);

  // Corrupt the signal-count field (v2 header offset 28) to 2^60.
  {
    std::fstream file(wvx_path_, std::ios::binary | std::ios::in | std::ios::out);
    file.seekp(28);
    const uint64_t absurd = uint64_t{1} << 60;
    file.write(reinterpret_cast<const char*>(&absurd), 8);
  }
  try {
    IndexedWaveform indexed(wvx_path_);
    FAIL() << "expected runtime_error";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("corrupt"), std::string::npos);
  }
}

}  // namespace
}  // namespace hgdb::waveform
