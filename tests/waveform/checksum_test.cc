#include <cstdio>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "common/crc32.h"
#include "waveform/index_writer.h"
#include "waveform/indexed_waveform.h"
#include "waveform/wvx_verify.h"

namespace hgdb::waveform {
namespace {

class ChecksumTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    base_ = std::string("/tmp/hgdb_checksum_") + info->name();
    vcd_path_ = base_ + ".vcd";
    wvx_path_ = base_ + ".wvx";
  }

  void TearDown() override {
    std::remove(vcd_path_.c_str());
    std::remove(wvx_path_.c_str());
  }

  void write_vcd(const std::string& body) {
    std::ofstream out(vcd_path_);
    out << body;
  }

  /// A small dump: one 8-bit signal with a handful of changes.
  void write_default_vcd() {
    write_vcd(
        "$var wire 8 ! top.data $end\n"
        "$enddefinitions $end\n"
        "#0\nb00000001 !\n"
        "#5\nb00000010 !\n"
        "#10\nb00000100 !\n"
        "#15\nb11111111 !\n");
  }

  void corrupt_byte(uint64_t offset, char value) {
    std::fstream file(wvx_path_,
                      std::ios::binary | std::ios::in | std::ios::out);
    file.seekp(static_cast<std::streamoff>(offset));
    file.put(value);
  }

  std::string base_, vcd_path_, wvx_path_;
};

TEST(Crc32, MatchesKnownVectors) {
  // The canonical IEEE check value.
  EXPECT_EQ(common::crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(common::crc32("", 0), 0u);
  // Incremental == one-shot.
  const std::string data = "hello, waveform";
  const uint32_t whole = common::crc32(data.data(), data.size());
  const uint32_t first = common::crc32(data.data(), 5);
  EXPECT_EQ(common::crc32(data.data() + 5, data.size() - 5, first), whole);
}

TEST_F(ChecksumTest, FreshIndexesCarryChecksumsAndVerifyClean) {
  write_default_vcd();
  convert_vcd_to_index(vcd_path_, wvx_path_);

  IndexedWaveform waveform(wvx_path_);
  EXPECT_TRUE(waveform.has_block_checksums());
  EXPECT_FALSE(waveform.verify_blocks().has_value());

  const auto result = verify_index(wvx_path_);
  EXPECT_TRUE(result.ok);
  EXPECT_TRUE(result.checksummed);
  EXPECT_EQ(result.signals, 1u);
  EXPECT_GE(result.blocks, 1u);
}

TEST_F(ChecksumTest, CorruptBlockFailsOnLoadWithBlockDetail) {
  write_default_vcd();
  convert_vcd_to_index(vcd_path_, wvx_path_);

  // Flip a payload byte inside the first block (header is 36 bytes; the
  // block region starts right after).
  corrupt_byte(kWvxHeaderSizeV2 + 9, '\x5a');

  IndexedWaveform waveform(wvx_path_);
  try {
    (void)waveform.value_at(0, 5);
    FAIL() << "expected checksum mismatch";
  } catch (const std::runtime_error& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("checksum mismatch"), std::string::npos);
    EXPECT_NE(what.find("top.data"), std::string::npos);
  }

  const auto result = verify_index(wvx_path_);
  EXPECT_FALSE(result.ok);
  EXPECT_TRUE(result.checksummed);
  EXPECT_EQ(result.signal, "top.data");
  EXPECT_EQ(result.block_index, 0u);
  EXPECT_EQ(result.file_offset, kWvxHeaderSizeV2);
  EXPECT_NE(result.error.find("checksum mismatch"), std::string::npos);
}

TEST_F(ChecksumTest, CacheHitsSkipReVerification) {
  write_default_vcd();
  convert_vcd_to_index(vcd_path_, wvx_path_);

  IndexedWaveform waveform(wvx_path_);
  // First load verifies and caches the block.
  EXPECT_EQ(waveform.value_at(0, 0).to_uint64(), 1u);
  // Corrupt the file *behind* the cache: resident blocks keep serving.
  corrupt_byte(kWvxHeaderSizeV2 + 9, '\x5a');
  EXPECT_EQ(waveform.value_at(0, 5).to_uint64(), 2u);
}

TEST_F(ChecksumTest, ChecksumsCanBeDisabled) {
  write_default_vcd();
  IndexWriterOptions options;
  options.block_checksums = false;
  convert_vcd_to_index(vcd_path_, wvx_path_, options);

  IndexedWaveform waveform(wvx_path_);
  EXPECT_FALSE(waveform.has_block_checksums());
  // Without checksums, corruption goes undetected (the legacy behavior).
  const auto result = verify_index(wvx_path_);
  EXPECT_TRUE(result.ok);
  EXPECT_FALSE(result.checksummed);
}

TEST_F(ChecksumTest, LegacyV1FilesRemainReadable) {
  // Hand-craft a version-1 index: 32-byte header, one 8-bit signal "a"
  // with one 2-entry block, 28-byte directory entries, no checksums.
  {
    std::ofstream out(wvx_path_, std::ios::binary | std::ios::trunc);
    auto u32 = [&](uint32_t value) {
      for (int i = 0; i < 4; ++i) out.put(static_cast<char>(value >> (8 * i)));
    };
    auto u64 = [&](uint64_t value) {
      for (int i = 0; i < 8; ++i) out.put(static_cast<char>(value >> (8 * i)));
    };
    u32(kWvxMagic);
    u32(1);           // version 1: no flags word follows
    u64(32 + 18);     // footer offset: header + 2 entries * (8 + 1)
    u64(5);           // max_time
    u64(1);           // signal_count
    // Block region: entries (u64 time, 1 value byte).
    u64(0);
    out.put(static_cast<char>(0x11));
    u64(5);
    out.put(static_cast<char>(0x22));
    // Footer: name, width, block directory (28-byte entry, no crc).
    u32(1);
    out.put('a');
    u32(8);           // width
    u64(1);           // block_count
    u64(0);           // start_time
    u64(5);           // end_time
    u64(32);          // file_offset
    u32(2);           // count
  }

  IndexedWaveform waveform(wvx_path_);
  EXPECT_FALSE(waveform.has_block_checksums());
  EXPECT_EQ(waveform.signal_count(), 1u);
  EXPECT_EQ(waveform.signal(0).width, 8u);
  EXPECT_EQ(waveform.value_at(0, 0).to_uint64(), 0x11u);
  EXPECT_EQ(waveform.value_at(0, 7).to_uint64(), 0x22u);

  const auto result = verify_index(wvx_path_);
  EXPECT_TRUE(result.ok);
  EXPECT_FALSE(result.checksummed);
}

TEST_F(ChecksumTest, VerifyReportsStructuralErrorsToo) {
  const auto missing = verify_index("/nonexistent/file.wvx");
  EXPECT_FALSE(missing.ok);
  EXPECT_TRUE(missing.signal.empty());
  EXPECT_FALSE(missing.error.empty());

  {
    std::ofstream out(wvx_path_, std::ios::binary);
    out << "garbage";
  }
  const auto garbage = verify_index(wvx_path_);
  EXPECT_FALSE(garbage.ok);
  EXPECT_FALSE(garbage.error.empty());
}

TEST_F(ChecksumTest, DescribeRendersBothOutcomes) {
  write_default_vcd();
  convert_vcd_to_index(vcd_path_, wvx_path_);
  const auto ok = verify_index(wvx_path_);
  EXPECT_NE(describe(ok, wvx_path_).find("OK"), std::string::npos);

  corrupt_byte(kWvxHeaderSizeV2 + 2, '\x7e');
  const auto bad = verify_index(wvx_path_);
  const std::string text = describe(bad, wvx_path_);
  EXPECT_NE(text.find("CORRUPT"), std::string::npos);
  EXPECT_NE(text.find("top.data"), std::string::npos);
}

}  // namespace
}  // namespace hgdb::waveform
