// CacheStats lifetime semantics: hits/misses/evictions/peak_resident are
// monotonic (they feed registry counters and must survive a reset);
// `resident` is instantaneous and is the only field clear() touches.
#include <gtest/gtest.h>

#include <memory>

#include "waveform/block_cache.h"

namespace hgdb::waveform {
namespace {

BlockCache::BlockPtr make_block() {
  return std::make_shared<const BlockCache::Block>();
}

TEST(BlockCache, CountsHitsMissesAndCapacityEvictions) {
  BlockCache cache(2);
  EXPECT_EQ(cache.lookup({0, 0}), nullptr);  // miss
  cache.insert({0, 0}, make_block());
  cache.insert({0, 1}, make_block());
  EXPECT_NE(cache.lookup({0, 0}), nullptr);  // hit
  cache.insert({0, 2}, make_block());        // evicts LRU {0,1}

  const CacheStats& stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.resident, 2u);
  EXPECT_EQ(stats.peak_resident, 2u);
}

TEST(BlockCache, ClearResetsResidencyButKeepsLifetimeCounters) {
  BlockCache cache(2);
  cache.insert({0, 0}, make_block());
  cache.insert({0, 1}, make_block());
  cache.insert({0, 2}, make_block());        // 1 capacity eviction
  EXPECT_NE(cache.lookup({0, 2}), nullptr);  // 1 hit
  EXPECT_EQ(cache.lookup({9, 9}), nullptr);  // 1 miss

  cache.clear();

  const CacheStats& stats = cache.stats();
  EXPECT_EQ(cache.resident(), 0u);
  EXPECT_EQ(stats.resident, 0u);
  // Monotonic fields survive: the reset did not erase history, and the
  // 2 blocks dropped by clear() are NOT counted as evictions (evictions
  // measures capacity pressure, which a reset is not).
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.peak_resident, 2u);

  // The cache keeps working after a reset: re-inserting counts normally.
  cache.insert({0, 0}, make_block());
  EXPECT_NE(cache.lookup({0, 0}), nullptr);
  EXPECT_EQ(cache.stats().hits, 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);
}

}  // namespace
}  // namespace hgdb::waveform
