// WaveformSource parity suite: the in-memory VcdTrace and the on-disk
// IndexedWaveform must answer every replay query identically on the same
// dump — values, edges, the ReplayEngine cycle grid, and debugger-runtime
// breakpoint behavior.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <memory>

#include "frontend/compile.h"
#include "ir/parser.h"
#include "runtime/runtime.h"
#include "sim/simulator.h"
#include "sim/vcd_writer.h"
#include "symbols/symbol_table.h"
#include "trace/replay.h"
#include "trace/vcd_reader.h"
#include "vpi/replay_backend.h"
#include "waveform/index_writer.h"
#include "waveform/indexed_waveform.h"
#include "workloads/workloads.h"

namespace hgdb::waveform {
namespace {

using Command = runtime::Runtime::Command;

/// 80-bit shift register: after >64 cycles with enable=1, bits above word 0
/// are set, exercising multi-word values end to end.
constexpr const char* kWide = R"(circuit Wide
  module Wide
    input clock : Clock
    input enable : UInt<1>
    output out : UInt<80>
    reg acc : UInt<80> clock clock
    connect acc = cat(bits(acc, 78, 0), enable)
    connect out = acc
  end
end
)";

class SourceParityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // pid + test name: unique across concurrent ctest processes.
    const std::string stem =
        ::testing::TempDir() + "hgdb_parity_" + std::to_string(::getpid()) +
        "_" + ::testing::UnitTest::GetInstance()->current_test_info()->name();
    vcd_path_ = stem + ".vcd";
    wvx_path_ = stem + ".wvx";

    auto compiled = frontend::compile(ir::parse_circuit(kWide));
    {
      sim::Simulator simulator(compiled.netlist);
      simulator.set_value("Wide.enable", 1);
      sim::VcdWriter writer(simulator, vcd_path_);
      writer.attach();
      simulator.run(100);
    }

    IndexWriterOptions options;
    options.block_capacity = 16;
    convert_vcd_to_index(vcd_path_, wvx_path_, options);

    memory_ = std::make_shared<trace::VcdTrace>(trace::parse_vcd_file(vcd_path_));
    indexed_ = std::make_shared<IndexedWaveform>(wvx_path_, /*cache_blocks=*/4);
  }

  void TearDown() override {
    std::remove(vcd_path_.c_str());
    std::remove(wvx_path_.c_str());
  }

  std::string vcd_path_;
  std::string wvx_path_;
  std::shared_ptr<trace::VcdTrace> memory_;
  std::shared_ptr<IndexedWaveform> indexed_;
};

TEST_F(SourceParityTest, SameSignalsAndValuesEverywhere) {
  ASSERT_EQ(indexed_->signal_count(), memory_->signal_count());
  ASSERT_GT(indexed_->signal_count(), 0u);
  EXPECT_EQ(indexed_->max_time(), memory_->max_time());
  for (size_t i = 0; i < memory_->signal_count(); ++i) {
    EXPECT_EQ(indexed_->signal(i).hier_name, memory_->signal(i).hier_name);
    EXPECT_EQ(indexed_->signal(i).width, memory_->signal(i).width);
    for (uint64_t t = 0; t <= memory_->max_time() + 1; ++t) {
      ASSERT_EQ(indexed_->value_at(i, t), memory_->value_at(i, t))
          << memory_->signal(i).hier_name << " at " << t;
    }
    EXPECT_EQ(indexed_->rising_edges(i), memory_->rising_edges(i));
  }
}

TEST_F(SourceParityTest, WideValuesCrossTheWordBoundary) {
  auto index = memory_->signal_index("Wide.out");
  ASSERT_TRUE(index.has_value());
  const auto last = indexed_->value_at(*index, indexed_->max_time());
  EXPECT_EQ(last.width(), 80u);
  // 100 shifted-in ones saturate all 80 bits, including those above bit 63.
  EXPECT_EQ(last.popcount(), 80u);
  EXPECT_EQ(last, memory_->value_at(*index, memory_->max_time()));
}

TEST_F(SourceParityTest, ReplayEnginesAgreeOnTheCycleGrid) {
  trace::ReplayEngine memory_engine(memory_);
  trace::ReplayEngine indexed_engine(indexed_);
  ASSERT_EQ(memory_engine.cycle_count(), indexed_engine.cycle_count());
  EXPECT_EQ(memory_engine.edges(), indexed_engine.edges());
  EXPECT_EQ(memory_engine.clock_name(), indexed_engine.clock_name());

  for (size_t cycle : {size_t{0}, size_t{5}, size_t{63}, size_t{99}}) {
    memory_engine.seek_cycle(cycle);
    indexed_engine.seek_cycle(cycle);
    EXPECT_EQ(memory_engine.value("Wide.out"), indexed_engine.value("Wide.out"))
        << "cycle " << cycle;
  }
  // Reverse stepping visits identical states.
  while (indexed_engine.step_backward()) {
    ASSERT_TRUE(memory_engine.step_backward());
    ASSERT_EQ(memory_engine.value("Wide.acc"), indexed_engine.value("Wide.acc"));
  }
  EXPECT_FALSE(memory_engine.step_backward());
}

TEST_F(SourceParityTest, OpenWaveformDispatchesOnExtension) {
  auto from_vcd = trace::open_waveform(vcd_path_);
  auto from_wvx = trace::open_waveform(wvx_path_);
  ASSERT_NE(from_vcd, nullptr);
  ASSERT_NE(from_wvx, nullptr);
  EXPECT_NE(dynamic_cast<trace::VcdTrace*>(from_vcd.get()), nullptr);
  EXPECT_NE(dynamic_cast<IndexedWaveform*>(from_wvx.get()), nullptr);
  EXPECT_EQ(from_vcd->max_time(), from_wvx->max_time());
}

/// Full-stack parity: the debugger runtime sees identical breakpoint
/// behavior from both backends on a real workload dump.
class RuntimeParityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const std::string stem =
        ::testing::TempDir() + "hgdb_rt_parity_" + std::to_string(::getpid()) +
        "_" + ::testing::UnitTest::GetInstance()->current_test_info()->name();
    vcd_path_ = stem + ".vcd";
    wvx_path_ = stem + ".wvx";

    frontend::CompileOptions options;
    options.debug_mode = true;
    auto compiled = frontend::compile(workloads::workload("towers").build(),
                                      options);
    symbols_ = compiled.symbols;
    {
      sim::Simulator simulator(compiled.netlist);
      sim::VcdWriter writer(simulator, vcd_path_);
      writer.attach();
      simulator.run(120);
    }
    convert_vcd_to_index(vcd_path_, wvx_path_);
  }

  void TearDown() override {
    std::remove(vcd_path_.c_str());
    std::remove(wvx_path_.c_str());
  }

  struct Session {
    int stops = 0;
    uint64_t first_hit = 0;
  };

  Session run_session(std::shared_ptr<WaveformSource> source) {
    symbols::MemorySymbolTable table(symbols_);
    vpi::ReplayBackend backend{trace::ReplayEngine(std::move(source))};
    runtime::Runtime runtime(backend, table);
    runtime.attach();
    const auto bp = table.all_breakpoints().front();
    runtime.add_breakpoint(bp.filename, bp.line_num, "moves > 10");
    Session session;
    runtime.set_stop_handler([&](const rpc::StopEvent& event) {
      if (++session.stops == 1) session.first_hit = event.time;
      return Command::Continue;
    });
    backend.run_forward();
    return session;
  }

  std::string vcd_path_;
  std::string wvx_path_;
  symbols::SymbolTableData symbols_;
};

TEST_F(RuntimeParityTest, BreakpointsHitIdenticallyOnBothBackends) {
  auto memory = run_session(
      std::make_shared<trace::VcdTrace>(trace::parse_vcd_file(vcd_path_)));
  auto indexed =
      run_session(std::make_shared<IndexedWaveform>(wvx_path_, /*cache=*/8));
  ASSERT_GT(memory.stops, 0);
  EXPECT_EQ(indexed.stops, memory.stops);
  EXPECT_EQ(indexed.first_hit, memory.first_hit);
}

}  // namespace
}  // namespace hgdb::waveform
