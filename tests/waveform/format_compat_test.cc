// Format-compatibility suite for the layered storage engine: v1/v2
// fixtures must keep opening, verifying and replaying bit-identically
// through the new codec layer; v3 must dedupe aliases and shrink the
// file; both storage backends (buffered / mmap) must answer identically.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <random>

#include "trace/replay.h"
#include "trace/vcd_reader.h"
#include "waveform/block_codec.h"
#include "waveform/index_writer.h"
#include "waveform/indexed_waveform.h"
#include "waveform/storage_backend.h"
#include "waveform/wvx_verify.h"

namespace hgdb::waveform {
namespace {

uint64_t file_size(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  return static_cast<uint64_t>(in.tellg());
}

/// Mixed-width synthetic VCD; `alias_ratio` of the vars are re-declared
/// names of earlier ones (shared id codes), like heavily aliased nets in
/// real dumps.
std::string synthetic_vcd(size_t signals, size_t cycles, size_t aliases) {
  std::string out = "$scope module top $end\n$var wire 1 ck clk $end\n";
  for (size_t i = 0; i < signals; ++i) {
    const uint32_t width = i % 3 == 2 ? 80 : (i % 3 == 1 ? 32 : 8);
    out += "$var wire " + std::to_string(width) + " c" + std::to_string(i) +
           " sig" + std::to_string(i) + " $end\n";
  }
  for (size_t a = 0; a < aliases; ++a) {
    const size_t target = a % signals;
    const uint32_t width = target % 3 == 2 ? 80 : (target % 3 == 1 ? 32 : 8);
    out += "$var wire " + std::to_string(width) + " c" + std::to_string(target) +
           " alias" + std::to_string(a) + " $end\n";
  }
  out += "$upscope $end\n$enddefinitions $end\n";
  std::mt19937_64 rng(21);
  for (size_t t = 0; t < cycles; ++t) {
    out += "#" + std::to_string(2 * t) + "\n1ck\n";
    for (size_t i = 0; i < signals; ++i) {
      if (rng() % 3 != 0 && t != 0) continue;
      const uint64_t value = rng();
      std::string bits = "b";
      for (int bit = 31; bit >= 0; --bit) bits += ((value >> bit) & 1) ? '1' : '0';
      out += bits + " c" + std::to_string(i) + "\n";
    }
    out += "#" + std::to_string(2 * t + 1) + "\n0ck\n";
  }
  return out;
}

class FormatCompatTest : public ::testing::Test {
 protected:
  void SetUp() override {
    stem_ = ::testing::TempDir() + "hgdb_compat_" + std::to_string(::getpid()) +
            "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name();
    vcd_path_ = stem_ + ".vcd";
  }

  void TearDown() override {
    std::remove(vcd_path_.c_str());
    for (const auto& path : produced_) std::remove(path.c_str());
  }

  void write_vcd(const std::string& text) {
    std::ofstream out(vcd_path_);
    out << text;
  }

  /// Converts vcd_path_ with `options`, tracking the file for cleanup.
  std::string convert(const std::string& tag, IndexWriterOptions options) {
    const std::string path = stem_ + "." + tag + ".wvx";
    convert_vcd_to_index(vcd_path_, path, options);
    produced_.push_back(path);
    return path;
  }

  /// Every signal/time query must agree with the in-memory trace.
  void expect_parity(const IndexedWaveform& indexed, const trace::VcdTrace& trace) {
    ASSERT_EQ(indexed.signal_count(), trace.signal_count());
    EXPECT_EQ(indexed.max_time(), trace.max_time());
    for (size_t i = 0; i < trace.signal_count(); ++i) {
      EXPECT_EQ(indexed.signal(i).hier_name, trace.signal(i).hier_name);
      for (uint64_t t = 0; t <= trace.max_time() + 1; t += 3) {
        ASSERT_EQ(indexed.value_at(i, t), trace.value_at(i, t))
            << trace.signal(i).hier_name << " at " << t;
      }
      EXPECT_EQ(indexed.rising_edges(i), trace.rising_edges(i));
    }
  }

  std::string stem_, vcd_path_;
  std::vector<std::string> produced_;
};

TEST_F(FormatCompatTest, V2FilesStillOpenVerifyAndReplayIdentically) {
  write_vcd(synthetic_vcd(6, 60, 0));
  auto trace = trace::parse_vcd_file(vcd_path_);

  IndexWriterOptions v2;
  v2.version = 2;
  v2.block_capacity = 16;
  const auto v2_path = convert("v2", v2);
  IndexedWaveform indexed(v2_path);
  EXPECT_EQ(indexed.version(), 2u);
  EXPECT_STREQ(indexed.codec_name(), "fixed");
  expect_parity(indexed, trace);

  const auto result = verify_index(v2_path);
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.version, 2u);
  EXPECT_EQ(result.codec, "fixed");
  EXPECT_TRUE(result.checksummed);

  // And a v2 trace replays on the full engine, byte-for-byte with memory.
  trace::ReplayEngine engine(std::make_shared<IndexedWaveform>(v2_path));
  trace::ReplayEngine memory_engine(
      std::make_shared<trace::VcdTrace>(std::move(trace)));
  EXPECT_EQ(engine.edges(), memory_engine.edges());
}

TEST_F(FormatCompatTest, V1FixtureStillOpensAndReplays) {
  // Hand-crafted version-1 fixture: 32-byte header, no flags, fixed
  // codec, one 8-bit signal with a 2-entry block.
  const std::string path = stem_ + ".v1.wvx";
  produced_.push_back(path);
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    auto u32 = [&](uint32_t value) {
      for (int i = 0; i < 4; ++i) out.put(static_cast<char>(value >> (8 * i)));
    };
    auto u64 = [&](uint64_t value) {
      for (int i = 0; i < 8; ++i) out.put(static_cast<char>(value >> (8 * i)));
    };
    u32(kWvxMagic);
    u32(1);
    u64(32 + 18);  // footer offset
    u64(9);        // max_time
    u64(1);        // signal_count
    u64(0);
    out.put(static_cast<char>(0x2a));
    u64(9);
    out.put(static_cast<char>(0x55));
    u32(1);
    out.put('x');
    u32(8);
    u64(1);
    u64(0);
    u64(9);
    u64(32);
    u32(2);
  }
  IndexedWaveform indexed(path);
  EXPECT_EQ(indexed.version(), 1u);
  EXPECT_STREQ(indexed.codec_name(), "fixed");
  EXPECT_FALSE(indexed.has_block_checksums());
  EXPECT_EQ(indexed.value_at(0, 0).to_uint64(), 0x2au);
  EXPECT_EQ(indexed.value_at(0, 9).to_uint64(), 0x55u);

  const auto result = verify_index(path);
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.version, 1u);
}

TEST_F(FormatCompatTest, V3DefaultsToDeltaCodecAndMatchesV2BitForBit) {
  write_vcd(synthetic_vcd(8, 120, 0));
  auto trace = trace::parse_vcd_file(vcd_path_);

  IndexWriterOptions v2;
  v2.version = 2;
  const auto v2_path = convert("v2", v2);
  IndexWriterOptions v3;
  v3.version = 3;
  const auto v3_path = convert("v3", v3);

  IndexedWaveform two(v2_path), three(v3_path);
  EXPECT_EQ(three.version(), 3u);
  EXPECT_STREQ(three.codec_name(), "delta");
  expect_parity(two, trace);
  expect_parity(three, trace);

  // The varint/delta encoding must be materially smaller on this
  // near-sequential mixed-width traffic.
  EXPECT_LT(file_size(v3_path), file_size(v2_path));
}

TEST_F(FormatCompatTest, V3FixedCodecContainerIsAlsoReadable) {
  write_vcd(synthetic_vcd(4, 40, 0));
  auto trace = trace::parse_vcd_file(vcd_path_);
  IndexWriterOptions options;
  options.version = 3;
  options.delta_codec = false;
  const auto path = convert("v3fixed", options);
  IndexedWaveform indexed(path);
  EXPECT_EQ(indexed.version(), 3u);
  EXPECT_STREQ(indexed.codec_name(), "fixed");
  expect_parity(indexed, trace);
}

TEST_F(FormatCompatTest, AliasDedupKeepsParityAndShrinksTheFile) {
  // Heavy aliasing: 3 extra names per net. Queries through every aliased
  // name must match the in-memory backend exactly, while the dedup file
  // stores one stream per net.
  write_vcd(synthetic_vcd(6, 80, 18));
  auto trace = trace::parse_vcd_file(vcd_path_);
  EXPECT_EQ(trace.alias_count(), 18u);

  const auto dedup_path = convert("dedup", IndexWriterOptions{});
  IndexWriterOptions no_dedup;
  no_dedup.dedup_aliases = false;
  const auto dup_path = convert("dup", no_dedup);

  IndexedWaveform deduped(dedup_path), duplicated(dup_path);
  EXPECT_EQ(deduped.alias_count(), 18u);
  EXPECT_EQ(duplicated.alias_count(), 0u);
  expect_parity(deduped, trace);
  expect_parity(duplicated, trace);

  // Aliased queries resolve to the canonical signal's stream and share
  // its cache entries.
  auto canonical = deduped.signal_index("top.sig0");
  auto alias = deduped.signal_index("top.alias0");
  ASSERT_TRUE(canonical && alias);
  EXPECT_EQ(deduped.canonical_index(*alias), *canonical);
  EXPECT_EQ(deduped.value_at(*alias, 33), deduped.value_at(*canonical, 33));

  // Dedup must save real space: 18 duplicated streams vs. 18 footer rows.
  EXPECT_LT(file_size(dedup_path), file_size(dup_path) * 3 / 4);

  const auto result = verify_index(dedup_path);
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.aliases, 18u);
}

TEST_F(FormatCompatTest, InMemoryTraceDedupesAliasStorageToo) {
  write_vcd(synthetic_vcd(4, 60, 12));
  auto aliased = trace::parse_vcd_file(vcd_path_);

  write_vcd(synthetic_vcd(4, 60, 0));
  auto plain = trace::parse_vcd_file(vcd_path_);

  // 12 aliased names add footer entries but no change-list memory.
  EXPECT_EQ(aliased.alias_count(), 12u);
  EXPECT_EQ(aliased.resident_bytes(), plain.resident_bytes());
  // Aliased and canonical names answer identically.
  auto a = aliased.var_index("top.alias0");
  auto c = aliased.var_index("top.sig0");
  ASSERT_TRUE(a && c);
  EXPECT_EQ(aliased.canonical_index(*a), *c);
  EXPECT_EQ(aliased.value_at(*a, 17), aliased.value_at(*c, 17));
  EXPECT_EQ(&aliased.changes(*a), &aliased.changes(*c));
}

TEST_F(FormatCompatTest, MmapAndBufferedBackendsAnswerIdentically) {
  write_vcd(synthetic_vcd(6, 100, 6));
  const auto path = convert("io", IndexWriterOptions{});

  IndexedWaveform mapped(path, WaveformOpenOptions{8, IoMode::kMmap});
  IndexedWaveform buffered(path, WaveformOpenOptions{8, IoMode::kBuffered});
  EXPECT_STREQ(mapped.io_kind(), "mmap");
  EXPECT_STREQ(buffered.io_kind(), "buffered");

  std::mt19937_64 rng(5);
  for (int i = 0; i < 300; ++i) {
    const size_t signal = rng() % mapped.signal_count();
    const uint64_t time = rng() % (mapped.max_time() + 1);
    ASSERT_EQ(mapped.value_at(signal, time), buffered.value_at(signal, time));
  }
  // Both stay LRU-bounded.
  EXPECT_LE(mapped.cache_stats().peak_resident, mapped.cache_capacity());
  EXPECT_LE(buffered.cache_stats().peak_resident, buffered.cache_capacity());
}

TEST_F(FormatCompatTest, TruncatedDirectoryFailsWithTypedFault) {
  write_vcd(synthetic_vcd(3, 30, 0));
  const auto path = convert("trunc", IndexWriterOptions{});

  // Cut the last 5 bytes: the footer now ends mid-directory-entry, which
  // must surface as the typed truncated-directory fault, not a generic
  // parse error.
  const uint64_t size = file_size(path);
  std::ifstream in(path, std::ios::binary);
  std::string bytes(static_cast<size_t>(size), '\0');
  in.read(bytes.data(), static_cast<std::streamsize>(size));
  in.close();
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(size - 5));
  }

  try {
    IndexedWaveform indexed(path);
    FAIL() << "expected WvxError";
  } catch (const WvxError& error) {
    EXPECT_EQ(error.fault(), WvxFault::kTruncatedDirectory);
    EXPECT_NE(std::string(error.what()).find("truncated signal directory"),
              std::string::npos);
  }

  const auto result = verify_index(path);
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.fault, WvxFault::kTruncatedDirectory);
  EXPECT_NE(describe(result, path).find("truncated-directory"),
            std::string::npos);
}

TEST_F(FormatCompatTest, AliasHeavyShortNameFilesPassTheFooterSanityCap) {
  // Alias footer entries are only 12 + name_len bytes; with one-char
  // unscoped names the a-priori signal-count cap must not misclassify a
  // valid writer output as corrupt.
  std::string vcd = "$var wire 8 d a $end\n";
  const std::string aliases = "bcdefghijklmnop";
  for (char name : aliases) {
    vcd += std::string("$var wire 8 d ") + name + " $end\n";
  }
  vcd += "$enddefinitions $end\n#0\nb101 d\n#5\nb111 d\n";
  write_vcd(vcd);
  const auto path = convert("short", IndexWriterOptions{});
  IndexedWaveform indexed(path);
  EXPECT_EQ(indexed.signal_count(), 1 + aliases.size());
  EXPECT_EQ(indexed.alias_count(), aliases.size());
  EXPECT_EQ(indexed.value_at(*indexed.signal_index("p"), 5).to_uint64(), 7u);
  EXPECT_TRUE(verify_index(path).ok);
}

TEST_F(FormatCompatTest, VerifyReportsVersionAndCodec) {
  write_vcd(synthetic_vcd(2, 20, 2));
  IndexWriterOptions v3;
  v3.version = 3;
  const auto path = convert("report", v3);
  const auto result = verify_index(path);
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.version, 3u);
  EXPECT_EQ(result.codec, "delta");
  EXPECT_EQ(result.aliases, 2u);
  const std::string text = describe(result, path);
  EXPECT_NE(text.find("format v3"), std::string::npos);
  EXPECT_NE(text.find("delta codec"), std::string::npos);
}

TEST_F(FormatCompatTest, V4AutoSelectsRlePerSignalAndKeepsParity) {
  // A real clock (toggles every step, >= the selection sample), a sparse
  // 1-bit signal and a bus: v4 must pick rle for the clock only, record
  // the choice per signal in the footer, and answer every query exactly
  // like the in-memory trace.
  std::string vcd =
      "$scope module top $end\n"
      "$var wire 1 c clk $end\n"
      "$var wire 1 s sparse $end\n"
      "$var wire 8 d bus $end\n"
      "$upscope $end\n$enddefinitions $end\n";
  for (int t = 0; t < 200; ++t) {
    vcd += "#" + std::to_string(t) + "\n";
    vcd += (t % 2 == 0 ? "1c\n" : "0c\n");
    if (t % 37 == 0) vcd += (t % 74 == 0 ? "1s\n" : "0s\n");
    if (t % 5 == 0) vcd += "b" + std::to_string(t % 2) + "01 d\n";
  }
  write_vcd(vcd);
  auto trace = trace::parse_vcd_file(vcd_path_);

  const auto v4_path = convert("v4", IndexWriterOptions{});
  IndexWriterOptions v3;
  v3.version = 3;
  const auto v3_path = convert("v3", v3);

  IndexedWaveform four(v4_path);
  EXPECT_EQ(four.version(), 4u);
  EXPECT_STREQ(four.codec_name(), "delta");  // the file default
  EXPECT_STREQ(four.signal_codec_name(*four.signal_index("top.clk")), "rle");
  EXPECT_STREQ(four.signal_codec_name(*four.signal_index("top.sparse")),
               "delta");
  EXPECT_STREQ(four.signal_codec_name(*four.signal_index("top.bus")), "delta");
  expect_parity(four, trace);

  // The clock stream collapses to a few bytes per block, so the v4 file
  // must be smaller than the same dump pinned at v3.
  EXPECT_LT(file_size(v4_path), file_size(v3_path));

  const auto result = verify_index(v4_path);
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.version, 4u);
}

TEST_F(FormatCompatTest, V4ShortOneBitStreamsKeepTheFileDefault) {
  // Below the selection sample (16 changes in the first block) the choice
  // must fall back to the file default — a 4-entry "clock" is noise.
  std::string vcd =
      "$var wire 1 c tick $end\n$enddefinitions $end\n"
      "#0\n1c\n#1\n0c\n#2\n1c\n#3\n0c\n";
  write_vcd(vcd);
  const auto path = convert("short1", IndexWriterOptions{});
  IndexedWaveform indexed(path);
  EXPECT_STREQ(indexed.signal_codec_name(0), "delta");
  EXPECT_TRUE(verify_index(path).ok);
}

TEST(BlockCodecs, RleRoundTripsClockAndLiteralMixes) {
  // Pure toggling runs, interrupted by repeats (non-toggles, which must
  // take the literal escape) and irregular gaps.
  std::vector<uint64_t> times;
  std::vector<common::BitVector> values;
  bool bit = false;
  uint64_t t = 5;
  for (int i = 0; i < 64; ++i) {  // regular clock: one run
    bit = !bit;
    times.push_back(t += 2);
    values.push_back(common::BitVector(1, bit ? 1 : 0));
  }
  times.push_back(t += 7);  // repeat: literal escape
  values.push_back(common::BitVector(1, bit ? 1 : 0));
  for (int i = 0; i < 5; ++i) {  // irregular deltas: short runs
    bit = !bit;
    times.push_back(t += 1 + i);
    values.push_back(common::BitVector(1, bit ? 1 : 0));
  }
  std::string encoded;
  rle_codec().encode(times.data(), values.data(), values.size(), 1, encoded);
  // The 64-entry clock run costs ~3 bytes; everything must round-trip.
  EXPECT_LT(encoded.size(), values.size());
  DecodedBlock decoded;
  rle_codec().decode(encoded.data(), encoded.size(),
                     static_cast<uint32_t>(values.size()), 1, decoded);
  ASSERT_EQ(decoded.size(), values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(decoded[i].first, times[i]) << i;
    EXPECT_EQ(decoded[i].second, values[i]) << i;
  }
}

TEST(BlockCodecs, RleRejectsWideSignalsAndCorruptPayloads) {
  std::vector<uint64_t> times{1, 2};
  std::vector<common::BitVector> values{common::BitVector(8, 1),
                                        common::BitVector(8, 2)};
  std::string out;
  EXPECT_THROW(rle_codec().encode(times.data(), values.data(), 2, 8, out),
               std::invalid_argument);
  DecodedBlock decoded;
  EXPECT_THROW(rle_codec().decode("", 0, 1, 8, decoded), WvxError);

  // A valid 1-bit encoding, then mutilations.
  std::vector<common::BitVector> bits{common::BitVector(1, 1),
                                      common::BitVector(1, 0),
                                      common::BitVector(1, 1)};
  std::string encoded;
  rle_codec().encode(times.data(), bits.data(), 2, 1, encoded);
  // Truncation mid-payload.
  EXPECT_THROW(
      rle_codec().decode(encoded.data(), encoded.size() - 1, 2, 1, decoded),
      WvxError);
  // Trailing garbage.
  std::string padded = encoded + '\x01';
  EXPECT_THROW(rle_codec().decode(padded.data(), padded.size(), 2, 1, decoded),
               WvxError);
  // A run longer than the block's entry count.
  std::string overflow;
  append_varint(overflow, 100);  // run of 100 toggles...
  append_varint(overflow, 1);
  EXPECT_THROW(
      rle_codec().decode(overflow.data(), overflow.size(), 3, 1, decoded),
      WvxError);  // ...into a 3-entry block
  // A literal escape whose value byte is not 0/1.
  std::string literal;
  append_varint(literal, 0);
  append_varint(literal, 4);
  literal += '\x07';
  EXPECT_THROW(
      rle_codec().decode(literal.data(), literal.size(), 1, 1, decoded),
      WvxError);
}

TEST(BlockCodecs, CodecRegistryMapsIdsBothWays) {
  EXPECT_EQ(codec_id(fixed_codec()), 0);
  EXPECT_EQ(codec_id(delta_codec()), 1);
  EXPECT_EQ(codec_id(rle_codec()), 2);
  EXPECT_EQ(codec_by_id(0), &fixed_codec());
  EXPECT_EQ(codec_by_id(1), &delta_codec());
  EXPECT_EQ(codec_by_id(2), &rle_codec());
  EXPECT_EQ(codec_by_id(3), nullptr);
  EXPECT_EQ(codec_by_id(255), nullptr);
}

TEST(BlockCodecs, VarintRoundTripAndBounds) {
  std::string buffer;
  const uint64_t values[] = {0, 1, 127, 128, 300, 1u << 20, ~uint64_t{0}};
  for (uint64_t value : values) {
    buffer.clear();
    append_varint(buffer, value);
    EXPECT_EQ(buffer.size(), varint_size(value));
    const auto* p = reinterpret_cast<const uint8_t*>(buffer.data());
    const auto* end = p + buffer.size();
    EXPECT_EQ(read_varint(&p, end), value);
    EXPECT_EQ(p, end);
  }
  // Truncated varint throws the typed fault.
  buffer.assign(1, '\x80');
  const auto* p = reinterpret_cast<const uint8_t*>(buffer.data());
  EXPECT_THROW((void)read_varint(&p, p + 1), WvxError);
  // Overlong encodings (a run of continuation bytes past the 10-byte u64
  // maximum, or a 10th byte carrying more than bit 0) are rejected before
  // any out-of-range shift can happen.
  buffer.assign(11, '\x80');
  p = reinterpret_cast<const uint8_t*>(buffer.data());
  EXPECT_THROW((void)read_varint(&p, p + buffer.size()), WvxError);
  buffer.assign(9, '\x80');
  buffer += '\x02';  // shift 63 with payload > 1
  p = reinterpret_cast<const uint8_t*>(buffer.data());
  EXPECT_THROW((void)read_varint(&p, p + buffer.size()), WvxError);
  buffer.assign(9, '\x81');
  buffer += '\x01';  // bit set at every 7th position + bit 63: legal
  p = reinterpret_cast<const uint8_t*>(buffer.data());
  EXPECT_EQ(read_varint(&p, p + buffer.size()), 0x8102040810204081ull);
}

TEST(BlockCodecs, DeltaRoundTripsMixedWidths) {
  std::mt19937_64 rng(3);
  for (uint32_t width : {1u, 8u, 17u, 32u, 64u, 80u, 130u}) {
    std::vector<uint64_t> times;
    std::vector<common::BitVector> values;
    uint64_t t = 1000;
    for (int i = 0; i < 200; ++i) {
      t += rng() % 3;  // nondecreasing incl. same-time glitches
      times.push_back(t);
      common::BitVector value(width, rng());
      if (width > 64 && rng() % 2 == 0) value.set_bit(width - 1, true);
      if (rng() % 4 == 0 && !values.empty()) value = values.back();  // runs
      values.push_back(std::move(value));
    }
    std::string encoded;
    delta_codec().encode(times.data(), values.data(), values.size(), width,
                         encoded);
    DecodedBlock decoded;
    delta_codec().decode(encoded.data(), encoded.size(),
                         static_cast<uint32_t>(values.size()), width, decoded);
    ASSERT_EQ(decoded.size(), values.size()) << "width " << width;
    for (size_t i = 0; i < values.size(); ++i) {
      EXPECT_EQ(decoded[i].first, times[i]);
      EXPECT_EQ(decoded[i].second, values[i]) << "width " << width << " @" << i;
    }
    // Fixed codec agrees with itself too, and delta is never larger on
    // this clustered traffic.
    std::string fixed;
    fixed_codec().encode(times.data(), values.data(), values.size(), width,
                         fixed);
    EXPECT_LT(encoded.size(), fixed.size()) << "width " << width;
  }
}

TEST(BlockCodecs, DecodeRejectsCorruptPayloads) {
  std::vector<uint64_t> times{1, 2};
  std::vector<common::BitVector> values{common::BitVector(8, 3),
                                        common::BitVector(8, 200)};
  std::string encoded;
  delta_codec().encode(times.data(), values.data(), 2, 8, encoded);
  DecodedBlock out;
  // Truncation: chop the tail.
  EXPECT_THROW(
      delta_codec().decode(encoded.data(), encoded.size() - 1, 2, 8, out),
      WvxError);
  // Trailing garbage after the last entry.
  std::string padded = encoded + '\x00';
  EXPECT_THROW(delta_codec().decode(padded.data(), padded.size(), 2, 8, out),
               WvxError);
  // Unknown value tag.
  std::string bad = encoded;
  bad[1] = '\x7f';
  EXPECT_THROW(delta_codec().decode(bad.data(), bad.size(), 2, 8, out),
               WvxError);
}

TEST(StorageBackends, OpenModesAndTypedErrors) {
  EXPECT_THROW((void)open_storage("/nonexistent/trace.wvx", IoMode::kAuto),
               WvxError);
  const std::string path = ::testing::TempDir() + "hgdb_storage_" +
                           std::to_string(::getpid()) + ".bin";
  {
    std::ofstream out(path, std::ios::binary);
    out << "0123456789";
  }
  auto buffered = open_storage(path, IoMode::kBuffered);
  auto mapped = open_storage(path, IoMode::kMmap);
  EXPECT_STREQ(buffered->kind(), "buffered");
  EXPECT_STREQ(mapped->kind(), "mmap");
  EXPECT_EQ(buffered->size(), 10u);
  std::string scratch;
  EXPECT_EQ(std::string(buffered->view(2, 3, scratch), 3), "234");
  EXPECT_EQ(std::string(mapped->view(2, 3, scratch), 3), "234");
  // Reads past EOF are typed truncation faults, not garbage.
  EXPECT_THROW((void)buffered->view(8, 4, scratch), WvxError);
  EXPECT_THROW((void)mapped->view(8, 4, scratch), WvxError);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace hgdb::waveform
