#include "waveform/vcd_stream_parser.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace hgdb::waveform {
namespace {

/// Records every event for assertions.
class Collector : public VcdEventSink {
 public:
  struct Change {
    size_t id;
    uint64_t time;
    common::BitVector value;
  };

  void on_signal(size_t id, const SignalInfo& info) override {
    EXPECT_EQ(id, signals.size());
    signals.push_back(info);
  }
  void on_alias(size_t id, size_t canonical_id) override {
    aliases.emplace_back(id, canonical_id);
  }
  void on_definitions_done() override { definitions_done = true; }
  void on_time(uint64_t time) override { times.push_back(time); }
  void on_change(size_t id, uint64_t time,
                 const common::BitVector& value) override {
    changes.push_back({id, time, value});
  }
  void on_finish(uint64_t max) override { max_time = max; }

  std::vector<SignalInfo> signals;
  std::vector<std::pair<size_t, size_t>> aliases;
  std::vector<uint64_t> times;
  std::vector<Change> changes;
  bool definitions_done = false;
  uint64_t max_time = 0;
};

constexpr const char* kSmall = R"($date today $end
$timescale 1ns $end
$scope module top $end
$var wire 1 ! clock $end
$var wire 8 " data [7:0] $end
$upscope $end
$enddefinitions $end
#0
$dumpvars
0!
b0 "
$end
#1
1!
b101 "
#2
0!
)";

TEST(VcdStreamParser, SingleFeedParsesEverything) {
  Collector sink;
  VcdStreamParser::parse_text(kSmall, sink);
  ASSERT_EQ(sink.signals.size(), 2u);
  EXPECT_EQ(sink.signals[0].hier_name, "top.clock");
  EXPECT_EQ(sink.signals[1].hier_name, "top.data");
  EXPECT_EQ(sink.signals[1].width, 8u);
  EXPECT_TRUE(sink.definitions_done);
  EXPECT_EQ(sink.max_time, 2u);
  ASSERT_EQ(sink.changes.size(), 5u);
  EXPECT_EQ(sink.changes.back().id, 0u);
  EXPECT_EQ(sink.changes.back().time, 2u);
}

TEST(VcdStreamParser, ByteAtATimeFeedMatchesSingleFeed) {
  Collector whole;
  VcdStreamParser::parse_text(kSmall, whole);

  Collector chunked;
  VcdStreamParser parser(chunked);
  const std::string_view text = kSmall;
  for (size_t i = 0; i < text.size(); ++i) parser.feed(text.substr(i, 1));
  parser.finish();

  ASSERT_EQ(chunked.signals.size(), whole.signals.size());
  ASSERT_EQ(chunked.changes.size(), whole.changes.size());
  for (size_t i = 0; i < whole.changes.size(); ++i) {
    EXPECT_EQ(chunked.changes[i].id, whole.changes[i].id);
    EXPECT_EQ(chunked.changes[i].time, whole.changes[i].time);
    EXPECT_EQ(chunked.changes[i].value, whole.changes[i].value);
  }
  EXPECT_EQ(chunked.max_time, whole.max_time);
}

TEST(VcdStreamParser, RaggedChunkBoundariesMatch) {
  Collector whole;
  VcdStreamParser::parse_text(kSmall, whole);
  // Prime-sized chunks land mid-token and mid-directive.
  for (size_t chunk : {2u, 3u, 5u, 7u, 11u}) {
    Collector sink;
    VcdStreamParser parser(sink);
    const std::string_view text = kSmall;
    for (size_t i = 0; i < text.size(); i += chunk) {
      parser.feed(text.substr(i, chunk));
    }
    parser.finish();
    EXPECT_EQ(sink.changes.size(), whole.changes.size()) << "chunk " << chunk;
    EXPECT_EQ(sink.max_time, whole.max_time) << "chunk " << chunk;
  }
}

TEST(VcdStreamParser, AliasedIdCodesShareOneStream) {
  // Three $var declarations share id code '!' (common in real dumps where
  // a net has several names): both aliases are announced against the
  // first-declared (canonical) signal, and the change is reported exactly
  // once — sinks dedupe storage by construction.
  Collector sink;
  VcdStreamParser::parse_text(
      "$scope module top $end\n"
      "$var wire 4 ! a $end\n"
      "$var wire 4 ! b_alias $end\n"
      "$var wire 4 ! c_alias $end\n"
      "$upscope $end\n"
      "$enddefinitions $end\n"
      "#0\nb1010 !\n",
      sink);
  ASSERT_EQ(sink.signals.size(), 3u);
  ASSERT_EQ(sink.aliases.size(), 2u);
  EXPECT_EQ(sink.aliases[0], (std::pair<size_t, size_t>{1, 0}));
  EXPECT_EQ(sink.aliases[1], (std::pair<size_t, size_t>{2, 0}));
  ASSERT_EQ(sink.changes.size(), 1u);
  EXPECT_EQ(sink.changes[0].id, 0u);
  EXPECT_EQ(sink.changes[0].value.to_uint64(), 0b1010u);
}

TEST(VcdStreamParser, MismatchedWidthRedeclarationsKeepFanOut) {
  // A re-declaration at a different width is not a pure alias: its values
  // re-parse at its own width, so it keeps its own change stream (the
  // legacy behavior) and no on_alias is announced for it.
  Collector sink;
  VcdStreamParser::parse_text(
      "$var wire 8 ! data $end\n"
      "$var wire 1 ! data_bit $end\n"
      "$var wire 8 ! data_alias $end\n"
      "$enddefinitions $end\n"
      "#0\nb10100000 !\n",
      sink);
  ASSERT_EQ(sink.signals.size(), 3u);
  // Only the same-width re-declaration aliased.
  ASSERT_EQ(sink.aliases.size(), 1u);
  EXPECT_EQ(sink.aliases[0], (std::pair<size_t, size_t>{2, 0}));
  // The canonical and the mismatched-width signal each got a change, at
  // their own widths.
  ASSERT_EQ(sink.changes.size(), 2u);
  EXPECT_EQ(sink.changes[0].id, 0u);
  EXPECT_EQ(sink.changes[0].value.width(), 8u);
  EXPECT_EQ(sink.changes[0].value.to_uint64(), 0b10100000u);
  EXPECT_EQ(sink.changes[1].id, 1u);
  EXPECT_EQ(sink.changes[1].value.width(), 1u);
  EXPECT_EQ(sink.changes[1].value.to_uint64(), 0u);  // low bit of the vector
}

TEST(VcdStreamParser, RealAndStringChangesAreSkipped) {
  Collector sink;
  VcdStreamParser::parse_text(
      "$var wire 1 ! x $end\n"
      "$var real 64 r temp $end\n"
      "$enddefinitions $end\n"
      "#0\nr3.14 r\nsHELLO r\n1!\n#1\nR2.71 r\n0!\n",
      sink);
  // The real var is not registered as a two-state signal...
  ASSERT_EQ(sink.signals.size(), 1u);
  // ...and its changes vanish while scalar changes still arrive.
  ASSERT_EQ(sink.changes.size(), 2u);
  EXPECT_EQ(sink.changes[0].value.to_uint64(), 1u);
  EXPECT_EQ(sink.changes[1].value.to_uint64(), 0u);
}

TEST(VcdStreamParser, EventVarsStayRegistered) {
  // `event` triggers use scalar change syntax, so the var must resolve.
  Collector sink;
  VcdStreamParser::parse_text(
      "$var event 1 e trigger $end\n$var wire 1 ! x $end\n"
      "$enddefinitions $end\n#0\n1e\n1!\n",
      sink);
  ASSERT_EQ(sink.signals.size(), 2u);
  EXPECT_EQ(sink.signals[0].hier_name, "trigger");
  ASSERT_EQ(sink.changes.size(), 2u);
  EXPECT_EQ(sink.changes[0].id, 0u);
}

TEST(VcdStreamParser, ScalarXZMapToZero) {
  Collector sink;
  VcdStreamParser::parse_text(
      "$var wire 1 ! x $end\n$enddefinitions $end\n#0\nx!\n#1\n1!\n#2\nz!\n",
      sink);
  ASSERT_EQ(sink.changes.size(), 3u);
  EXPECT_EQ(sink.changes[0].value.to_uint64(), 0u);
  EXPECT_EQ(sink.changes[1].value.to_uint64(), 1u);
  EXPECT_EQ(sink.changes[2].value.to_uint64(), 0u);
}

TEST(VcdStreamParser, VectorXZDigitsMapToZero) {
  Collector sink;
  VcdStreamParser::parse_text(
      "$var wire 4 ! v $end\n$enddefinitions $end\n#0\nbx1z1 !\n", sink);
  ASSERT_EQ(sink.changes.size(), 1u);
  EXPECT_EQ(sink.changes[0].value.to_uint64(), 0b0101u);
}

TEST(VcdStreamParser, MalformedInputRejected) {
  auto parse = [](const char* text) {
    Collector sink;  // fresh sink per case: each parse restarts signal ids
    VcdStreamParser::parse_text(text, sink);
  };
  EXPECT_THROW(parse("$enddefinitions $end\n#0\n1?\n"),
               std::runtime_error);  // unknown id code
  EXPECT_THROW(parse("$var wire 1 ! x $end\n$enddefinitions $end\n#0\n1\n"),
               std::runtime_error);  // scalar without code
  EXPECT_THROW(parse("$scope module top\n"),
               std::runtime_error);  // unterminated directive
  EXPECT_THROW(parse("$upscope $end\n"),
               std::runtime_error);  // upscope underflow
  EXPECT_THROW(parse("$var wire 1 ! x $end\n$enddefinitions $end\n#0\nb101\n"),
               std::runtime_error);  // vector change truncated at EOF
  EXPECT_THROW(parse("$var wire nope ! x $end\n$enddefinitions $end\n"),
               std::runtime_error);  // bad $var width
}

TEST(VcdStreamParser, ParseFileStreamsInChunks) {
  const std::string path = ::testing::TempDir() + "hgdb_stream_parser.vcd";
  {
    std::ofstream out(path);
    out << kSmall;
  }
  Collector tiny_chunks;
  VcdStreamParser::parse_file(path, tiny_chunks, /*chunk_size=*/3);
  Collector whole;
  VcdStreamParser::parse_text(kSmall, whole);
  EXPECT_EQ(tiny_chunks.changes.size(), whole.changes.size());
  EXPECT_EQ(tiny_chunks.max_time, whole.max_time);
  std::remove(path.c_str());

  EXPECT_THROW(VcdStreamParser::parse_file("/nonexistent/trace.vcd", whole),
               std::runtime_error);
}

}  // namespace
}  // namespace hgdb::waveform
