#!/usr/bin/env python3
"""Repo-local concurrency lint — the cheap, compiler-independent half of
the static-analysis gate (the expensive half is clang's -Wthread-safety,
which needs clang and runs in CI).

Rules enforced over src/:

  1. Every method whose name ends in `_locked` must carry an
     HGDB_REQUIRES annotation on its declaration. The suffix is the
     human-facing convention; the annotation is what the analysis
     actually checks — this rule keeps the two from drifting apart.

  2. No raw `std::mutex` / `std::lock_guard` / `std::unique_lock` /
     `std::scoped_lock` (or a bare `#include <mutex>`) outside
     src/common/checked_mutex.h. Raw mutexes are invisible to both the
     thread-safety analysis and the rank checker.

  3. No HGDB_NO_THREAD_SAFETY_ANALYSIS under src/runtime or src/session.
     Those trees are the zero-suppression core; escapes belong in the
     leaf layers, with a comment, or nowhere.

  4. No `hgdb-analyze: suppress(...)` waivers under src/session or
     src/rpc — the analyzer suppression budget there is zero. A finding
     in those trees gets fixed or becomes a reviewed model.json
     contract, never a per-line waiver.

  5. Every metric-name literal registered via `.counter("...")` /
     `.histogram("...")` / `.gauge("...")` must appear in the README
     metric catalogue (delegated to the hgdb-analyze exhaustiveness
     checker, so the lint and the analyzer can never disagree).

Exit status 0 when clean; 1 with one `file:line: message` per violation
otherwise. Run from the repo root: `python3 tools/lint.py`.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"

# The only file allowed to spell std::mutex: it wraps it.
RAW_MUTEX_ALLOWED = {SRC / "common" / "checked_mutex.h"}

# Trees where suppression escapes are banned outright.
NO_SUPPRESSION_TREES = (SRC / "runtime", SRC / "session")

# Trees where the hgdb-analyze suppression budget is zero: findings get
# fixed or promoted to model.json contracts, never waived per-line.
ANALYZE_ZERO_BUDGET_TREES = (SRC / "session", SRC / "rpc")

RAW_MUTEX_RE = re.compile(
    r"std::(?:mutex|recursive_mutex|timed_mutex|shared_mutex|"
    r"lock_guard|unique_lock|scoped_lock|shared_lock)\b"
)
RAW_INCLUDE_RE = re.compile(r'#\s*include\s*<(?:mutex|shared_mutex)>')
# A `_locked(` occurrence that looks like a declaration or definition
# (not a call site): return type or qualifier before the name.
LOCKED_DECL_RE = re.compile(
    r"^\s*(?:[\w:<>,&*\s]+?[&*\s])([a-zA-Z_]\w*_locked)\s*\("
)
SUPPRESS_RE = re.compile(r"\bHGDB_NO_THREAD_SAFETY_ANALYSIS\b")
ANALYZE_SUPPRESS_RE = re.compile(r"hgdb-analyze:\s*suppress\s*\(")


def strip_comments(line: str) -> str:
    """Drops // comments; good enough for the patterns we scan for."""
    return line.split("//", 1)[0]


def statement_after(lines: list[str], index: int) -> str:
    """Joins from `lines[index]` to the end of the statement (`;` or `{`)."""
    collected: list[str] = []
    for line in lines[index:index + 8]:
        code = strip_comments(line)
        collected.append(code)
        if ";" in code or "{" in code:
            break
    return " ".join(collected)


def check_file(path: Path) -> list[str]:
    violations: list[str] = []
    rel = path.relative_to(REPO_ROOT)
    lines = path.read_text(encoding="utf-8").splitlines()
    in_no_suppression_tree = any(
        path.is_relative_to(tree) for tree in NO_SUPPRESSION_TREES
    )
    in_zero_budget_tree = any(
        path.is_relative_to(tree) for tree in ANALYZE_ZERO_BUDGET_TREES
    )
    for i, raw_line in enumerate(lines):
        line_no = i + 1
        code = strip_comments(raw_line)

        if path not in RAW_MUTEX_ALLOWED:
            if RAW_MUTEX_RE.search(code):
                violations.append(
                    f"{rel}:{line_no}: raw {RAW_MUTEX_RE.search(code).group(0)}"
                    " — use the annotated types from common/checked_mutex.h"
                )
            if RAW_INCLUDE_RE.search(code):
                violations.append(
                    f"{rel}:{line_no}: bare #include <mutex> — include"
                    ' "common/checked_mutex.h" instead'
                )

        if in_no_suppression_tree and SUPPRESS_RE.search(code):
            violations.append(
                f"{rel}:{line_no}: HGDB_NO_THREAD_SAFETY_ANALYSIS is banned"
                " under src/runtime and src/session (zero-suppression core)"
            )

        # Scan the raw line: the waiver is itself a comment.
        if in_zero_budget_tree and ANALYZE_SUPPRESS_RE.search(raw_line):
            violations.append(
                f"{rel}:{line_no}: hgdb-analyze suppression — the budget"
                " under src/session and src/rpc is zero; fix the finding"
                " or promote it to a model.json contract"
            )

        match = LOCKED_DECL_RE.match(code)
        if match and path.suffix == ".h":
            statement = statement_after(lines, i)
            if "HGDB_REQUIRES" not in statement:
                violations.append(
                    f"{rel}:{line_no}: {match.group(1)}() follows the _locked"
                    " convention but has no HGDB_REQUIRES annotation"
                )
    return violations


def check_metric_literals(files: list[Path]) -> list[str]:
    """Rule 5: delegate metric-name validation to the hgdb-analyze
    exhaustiveness checker — same regex, same README-catalogue parser, so
    the two tools cannot drift apart."""
    sys.path.insert(0, str(REPO_ROOT / "tools" / "analyze"))
    import checkers  # noqa: E402  (repo-local, dependency-free)

    class _StubModel:
        """check_metrics() only reads .files off the model."""
        def __init__(self, paths: list[str]):
            self.files = paths

    checker = checkers.ExhaustivenessChecker(
        _StubModel([str(p) for p in files]), {}, str(REPO_ROOT))
    return [
        f"{finding.file}:{finding.line}: {finding.message}"
        f" (README § Metric catalogue)"
        for finding in checker.check_metrics()
    ]


def main() -> int:
    files = sorted(
        p for p in SRC.rglob("*")
        if p.suffix in {".h", ".cc", ".cpp", ".hpp"} and p.is_file()
    )
    all_violations: list[str] = []
    for path in files:
        all_violations.extend(check_file(path))
    all_violations.extend(check_metric_literals(files))
    for violation in all_violations:
        print(violation)
    if all_violations:
        print(f"\nlint: {len(all_violations)} violation(s) in src/",
              file=sys.stderr)
        return 1
    print(f"lint: {len(files)} files clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
