#!/usr/bin/env python3
"""hgdb-analyze: project-specific semantic analyzer for the hgdb runtime.

Checker families (see checkers.py and model.json):

  blocking-under-lock   blocking syscalls / sleeps / cv-waits reachable
                        while a CheckedMutex is held
  callback-under-lock   user-supplied callables invoked under a lock
  exhaustiveness        wire enums and metric names vs their README tables

Driven by build/compile_commands.json (CMAKE_EXPORT_COMPILE_COMMANDS is
always on in this repo); falls back to globbing src/ when the build tree
is absent, so the analyzer runs identically in CI and pre-build.

The front end is a dependency-free Python tokenizer + scope scanner
(cpp_model.py) rather than libclang: the container toolchain ships no
clang, and the seeded-violation corpus under tests/analysis pins the
subset of C++ it must understand. It runs as a blocking CI job and as a
ctest (`analysis.src`, `analysis.selftest`).

Exit codes: 0 clean, 1 findings (or self-test failure), 2 usage error.

Suppression syntax, on the finding's line or the line above:

    // hgdb-analyze: suppress(<checker>) -- <justification>

A suppression without a justification is itself a finding, and
tools/lint.py caps suppression comments at zero in src/session and
src/rpc — true positives there get fixed, not waived.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import re
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import checkers as checkers_mod  # noqa: E402
import cpp_model  # noqa: E402

EXPECT_RE = re.compile(r"//\s*EXPECT-(FINDING|SUPPRESSED):\s*([\w\-]+)")


def repo_root_default() -> str:
    return os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))


def load_contracts(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f)


def source_files(root: str, compile_commands: str) -> list[str]:
    src = os.path.join(root, "src")
    files: set[str] = set()
    if os.path.exists(compile_commands):
        with open(compile_commands, "r", encoding="utf-8") as f:
            for entry in json.load(f):
                path = entry.get("file", "")
                if not os.path.isabs(path):
                    path = os.path.join(entry.get("directory", ""), path)
                path = os.path.normpath(path)
                if path.startswith(src + os.sep):
                    files.add(path)
    else:
        files.update(glob.glob(os.path.join(src, "**", "*.cc"),
                               recursive=True))
    # headers carry the class definitions, member types, annotations and
    # inline bodies — always parse them all
    files.update(glob.glob(os.path.join(src, "**", "*.h"), recursive=True))
    return sorted(files)


def build_model(root: str, files: list[str]) -> cpp_model.CodeModel:
    header = os.path.join(root, "src", "common", "checked_mutex.h")
    ranks = cpp_model.load_mutex_ranks(header)
    # headers first so class layouts exist before .cc bodies are scanned
    ordered = [f for f in files if f.endswith(".h")] + \
              [f for f in files if not f.endswith(".h")]
    return cpp_model.build_model(ordered, ranks)


def report(findings: list, fmt: str, show_suppressed: bool) -> None:
    unsuppressed = [f for f in findings if not f.suppressed]
    suppressed = [f for f in findings if f.suppressed]
    if fmt == "json":
        payload = {
            "findings": [vars(f) for f in unsuppressed],
            "suppressed": [vars(f) for f in suppressed],
        }
        print(json.dumps(payload, indent=2))
        return
    for f in unsuppressed:
        print(f.render())
    if show_suppressed:
        for f in suppressed:
            print(f"{f.file}:{f.line}: [suppressed:{f.checker}] "
                  f"{f.justification}")
    print(f"hgdb-analyze: {len(unsuppressed)} finding(s), "
          f"{len(suppressed)} suppressed")


# ---------------------------------------------------------------------------
# self-test over the seeded-violation corpus
# ---------------------------------------------------------------------------


def parse_expectations(path: str) -> list[tuple[int, str, str]]:
    """(line, kind, checker) for every EXPECT marker in a fixture."""
    out = []
    with open(path, "r", encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            m = EXPECT_RE.search(line)
            if m:
                out.append((lineno, m.group(1), m.group(2)))
    return out


def self_test(root: str, corpus: str, contracts: dict) -> int:
    failures: list[str] = []

    # -- lock checkers over the bad/good snippet corpus ---------------------
    fixture_files = sorted(
        glob.glob(os.path.join(corpus, "blocking", "*.cc"))
        + glob.glob(os.path.join(corpus, "callback", "*.cc")))
    if not fixture_files:
        print(f"self-test: no fixtures under {corpus}", file=sys.stderr)
        return 2
    model = build_model(root, fixture_files)
    findings = []
    findings.extend(checkers_mod.BlockingChecker(model, contracts).run())
    findings.extend(checkers_mod.CallbackChecker(model, contracts).run())
    findings = checkers_mod.apply_suppressions(findings, model, root)
    for f in findings:
        if not os.path.isabs(f.file):
            f.file = os.path.join(root, f.file)

    by_file: dict[str, list] = {}
    for f in findings:
        by_file.setdefault(os.path.abspath(f.file), []).append(f)

    total_expect = 0
    for path in fixture_files:
        expectations = parse_expectations(path)
        file_findings = by_file.get(os.path.abspath(path), [])
        matched = set()
        for line, kind, checker in expectations:
            total_expect += 1
            want_suppressed = kind == "SUPPRESSED"
            hit = None
            for f in file_findings:
                if f.checker == checker and f.line in (line, line + 1) \
                        and f.suppressed == want_suppressed:
                    hit = f
                    break
            if hit is None:
                failures.append(
                    f"{path}:{line}: expected {kind.lower()} "
                    f"[{checker}] finding, analyzer reported none")
            else:
                matched.add(id(hit))
        for f in file_findings:
            if id(f) not in matched and f.checker != "suppression-syntax":
                failures.append(
                    f"{f.file}:{f.line}: unexpected [{f.checker}] finding "
                    f"(parser false positive): {f.message}")
        if not expectations and file_findings:
            pass  # already reported above as unexpected

    # -- exhaustiveness over the mini-repo fixture --------------------------
    mini = os.path.join(corpus, "exhaustiveness")
    expect_json = os.path.join(mini, "expect.json")
    if os.path.exists(expect_json):
        with open(expect_json, "r", encoding="utf-8") as f:
            spec = json.load(f)
        mini_contracts = dict(contracts)
        mini_contracts["exhaustiveness"] = spec["config"]
        mini_files = sorted(
            glob.glob(os.path.join(mini, "src", "**", "*.cc"),
                      recursive=True)
            + glob.glob(os.path.join(mini, "src", "**", "*.h"),
                        recursive=True))
        mini_model = build_model(root, mini_files)
        mini_findings = checkers_mod.ExhaustivenessChecker(
            mini_model, mini_contracts, mini).run()
        messages = [f.message for f in mini_findings]
        for want in spec["expect_messages"]:
            total_expect += 1
            if not any(want in msg for msg in messages):
                failures.append(
                    f"{expect_json}: expected a finding containing "
                    f"{want!r}; got {messages}")
        if len(mini_findings) != len(spec["expect_messages"]):
            failures.append(
                f"{expect_json}: expected exactly "
                f"{len(spec['expect_messages'])} findings, analyzer "
                f"reported {len(mini_findings)}: {messages}")

    if failures:
        for line in failures:
            print(f"SELF-TEST FAIL: {line}")
        print(f"hgdb-analyze self-test: {len(failures)} failure(s) "
              f"({total_expect} expectations)")
        return 1
    print(f"hgdb-analyze self-test: all {total_expect} expectations "
          f"matched, no parser false positives")
    return 0


# ---------------------------------------------------------------------------


def main() -> int:
    parser = argparse.ArgumentParser(prog="hgdb-analyze",
                                     description=__doc__.splitlines()[0])
    parser.add_argument("--repo-root", default=repo_root_default())
    parser.add_argument("--compile-commands", default=None,
                        help="path to compile_commands.json "
                             "(default: <root>/build/compile_commands.json)")
    parser.add_argument("--model", default=None,
                        help="contract file (default: model.json next to "
                             "this script)")
    parser.add_argument("--checker", action="append", default=None,
                        choices=["blocking-under-lock", "callback-under-lock",
                                 "exhaustiveness"],
                        help="run only the named checker(s)")
    parser.add_argument("--report", default="text", choices=["text", "json"])
    parser.add_argument("--show-suppressed", action="store_true",
                        help="list suppressed findings in the text report")
    parser.add_argument("--self-test", metavar="DIR", default=None,
                        help="run the seeded-violation corpus instead of "
                             "analyzing src/")
    args = parser.parse_args()

    root = os.path.abspath(args.repo_root)
    model_path = args.model or os.path.join(
        os.path.dirname(os.path.abspath(__file__)), "model.json")
    try:
        contracts = load_contracts(model_path)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"hgdb-analyze: cannot load {model_path}: {exc}",
              file=sys.stderr)
        return 2

    if args.self_test:
        return self_test(root, os.path.abspath(args.self_test), contracts)

    compile_commands = args.compile_commands or os.path.join(
        root, "build", "compile_commands.json")
    files = source_files(root, compile_commands)
    if not files:
        print("hgdb-analyze: no source files found", file=sys.stderr)
        return 2
    model = build_model(root, files)
    findings = checkers_mod.run_all(model, contracts, root, args.checker)
    report(findings, args.report, args.show_suppressed)
    return 1 if any(not f.suppressed for f in findings) else 0


if __name__ == "__main__":
    sys.exit(main())
