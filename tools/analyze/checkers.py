"""Checker families for hgdb-analyze.

Three families, all driven by the CodeModel from cpp_model.py and the
project contract file model.json:

  blocking-under-lock   a path from a call site that holds a CheckedMutex
                        to a blocking primitive (socket send/recv, file
                        read/write, sleep, condition-variable wait that
                        does not release every held lock).
  callback-under-lock   invocation of a user-supplied callable (EventSink
                        sinks, std::function members/locals/params) while
                        any lock is held, unless the lock bracket or the
                        callable's contract is allowlisted in model.json.
  exhaustiveness        wire enums and metric-name literals cross-checked
                        against the README tables and the equivalence
                        tests that document them.

Findings carry a witness chain (who called whom down to the primitive) so
a report reads as an explanation, not a coordinate.
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass, field
from typing import Optional

from cpp_model import CallSite, CodeModel, FunctionInfo, HeldLock

CV_WAIT_LEAVES = {"wait", "wait_for", "wait_until"}


@dataclass
class Finding:
    checker: str
    file: str
    line: int
    message: str
    witness: list[str] = field(default_factory=list)
    suppressed: bool = False
    justification: str = ""

    def render(self) -> str:
        text = f"{self.file}:{self.line}: [{self.checker}] {self.message}"
        for step in self.witness:
            text += f"\n    via {step}"
        return text


# ---------------------------------------------------------------------------
# resolution helpers
# ---------------------------------------------------------------------------


def strip_type(type_text: str) -> str:
    """`std::unique_ptr<rpc::Channel>*&` -> `Channel`."""
    t = type_text.replace("const", " ").replace("*", " ").replace("&", " ")
    t = t.strip()
    m = re.match(r"(?:std\s*::\s*)?(?:unique_ptr|shared_ptr|optional)\s*<(.*)>\s*$", t)
    if m:
        t = m.group(1).strip()
    # drop namespace qualifiers, keep the final type name
    t = t.split("<")[0]
    parts = [p.strip() for p in re.split(r"::", t) if p.strip()]
    return parts[-1] if parts else ""


class Resolver:
    def __init__(self, model: CodeModel, contracts: dict):
        self.model = model
        self.contracts = contracts
        # derived-class map for virtual dispatch
        self.derived: dict[str, list[str]] = {}
        for cls in model.classes.values():
            for base in cls.bases:
                self.derived.setdefault(base, []).append(cls.name)

    def type_of(self, fn: FunctionInfo, name: str) -> str:
        if name in fn.locals:
            return fn.locals[name]
        if name in fn.params:
            return fn.params[name]
        cls = self.model.classes.get(fn.cls)
        if cls and name in cls.members:
            return cls.members[name]
        return ""

    def receiver_class(self, fn: FunctionInfo, site: CallSite) -> str:
        if site.receiver_kind == "member-or-local":
            # `a.b.c` chains: resolve the first hop, then members
            hops = re.split(r"\.|->", site.receiver)
            hops = [h for h in hops if h]
            current = self.type_of(fn, hops[0]) if hops else ""
            cname = strip_type(current)
            for hop in hops[1:]:
                cls = self.model.classes.get(cname)
                if cls is None or hop not in cls.members:
                    cname = ""
                    break
                cname = strip_type(cls.members[hop])
            if cname:
                return cname
            # range-for / structured-binding receivers have no tracked
            # declaration; fall back to a unique member name across all
            # classes (e.g. `target.sink` -> DeliveryTarget::sink)
            if hops:
                types = {strip_type(cls.members[hops[-1]])
                         for cls in self.model.classes.values()
                         if hops[-1] in cls.members}
                if len(types) == 1:
                    return types.pop()
            return ""
        if site.receiver_kind == "qualified":
            return site.qualifier.split("::")[-1]
        return ""

    def callees(self, fn: FunctionInfo, site: CallSite) -> list[FunctionInfo]:
        """Function definitions a call site may reach (virtual-aware)."""
        model = self.model
        if site.receiver_kind in ("member-or-local", "qualified", "expr"):
            cname = self.receiver_class(fn, site)
            if cname:
                out = []
                seen = {cname}
                queue = [cname]
                while queue:  # the class and everything derived from it
                    c = queue.pop()
                    out.extend(model.functions_named(f"{c}::{site.leaf}"))
                    for d in self.derived.get(c, []):
                        if d not in seen:
                            seen.add(d)
                            queue.append(d)
                if out:
                    return out
            # unresolvable receiver: unique-name fallback
            named = model.methods_named(site.leaf)
            keys = {f.key for f in named}
            if len(keys) == 1:
                return named
            return []
        if site.receiver_kind == "global":
            return []  # raw libc call, handled as a primitive
        # unqualified call: same class first, then free function
        if fn.cls:
            own = model.functions_named(f"{fn.cls}::{site.leaf}")
            if own:
                return own
        free = [f for f in model.methods_named(site.leaf) if not f.cls]
        return free

    def mutex_label(self, fn: FunctionInfo, expr: str) -> str:
        """Resolve a guard/REQUIRES mutex expression to its label string."""
        name = re.split(r"\.|->", expr)[-1].strip()
        name = name.split("(")[0]
        # owning class first
        cls = self.model.classes.get(fn.cls)
        if cls and name in cls.mutexes:
            return cls.mutexes[name].label or name
        for decl in self.model.mutex_decls:
            if decl.name == name:
                return decl.label or name
        return f"<unresolved:{name}>"


# ---------------------------------------------------------------------------
# blocking-under-lock
# ---------------------------------------------------------------------------


class BlockingChecker:
    name = "blocking-under-lock"

    def __init__(self, model: CodeModel, contracts: dict):
        self.model = model
        self.resolver = Resolver(model, contracts)
        self.primitives = set(contracts["blocking_primitives"]["libc"])
        self.sleep_names = set(contracts["blocking_primitives"]["sleep"])
        self.nonblocking_arg_tokens = set(
            contracts["blocking_primitives"]["nonblocking_arg_tokens"])
        self.io_lock_allowlist = {
            entry["label"] for entry in contracts["io_lock_allowlist"]}
        self.nonblocking_functions = {
            entry["function"]
            for entry in contracts.get("nonblocking_functions", [])}
        # bounded fork-join barriers: they do block, but only on work the
        # caller itself scheduled — exempt from may-block propagation
        self.nonblocking_functions |= {
            entry["function"]
            for entry in contracts.get("bounded_join_functions", [])}
        self.may_block: dict[str, bool] = {}
        self.block_reason: dict[str, str] = {}

    # -- primitive classification -------------------------------------------

    def direct_block_reason(self, fn: FunctionInfo,
                            site: CallSite) -> Optional[str]:
        """Non-None when the call site itself is a blocking primitive."""
        if any(tok in site.args for tok in self.nonblocking_arg_tokens):
            return None
        # `send`/`read` also appear as project method names — only the
        # global (::-qualified) spelling is the raw syscall.
        if site.leaf in self.primitives and site.receiver_kind == "global":
            return f"::{site.leaf}()"
        if site.leaf in self.sleep_names:
            if site.qualifier.endswith("this_thread") or not site.receiver:
                return f"std::this_thread::{site.leaf}()"
        if site.leaf in CV_WAIT_LEAVES and self.is_cv_wait(fn, site):
            return f"condition_variable {site.leaf}()"
        return None

    def is_cv_wait(self, fn: FunctionInfo, site: CallSite) -> bool:
        if site.receiver_kind not in ("member-or-local", ""):
            return False
        rtype = self.resolver.type_of(fn, re.split(r"\.|->",
                                                   site.receiver)[0]) \
            if site.receiver else ""
        if "condition_variable" in rtype:
            return True
        # fallback: `cv.wait(lock)` where the first argument is a guard
        first_arg = site.args.split(",")[0].strip() if site.args else ""
        return bool(site.receiver) and first_arg in fn.locals and \
            fn.locals[first_arg] in ("UniqueLock", "LockGuard")

    # -- may-block fixpoint --------------------------------------------------

    def compute_fixpoint(self) -> None:
        for key, fn in self.model.functions.items():
            self.may_block[key] = False
            if f"{fn.key}" in self.nonblocking_functions:
                continue
            for site in fn.calls:
                if site.in_lambda:
                    continue  # runs later, in its caller's context
                reason = self.direct_block_reason(fn, site)
                if reason is not None and not self.cv_wait_fully_releases(
                        fn, site):
                    self.may_block[key] = True
                    self.block_reason[key] = \
                        f"{fn.key} ({os.path.basename(fn.file)}:" \
                        f"{site.line}) -> {reason}"
                    break
                if reason is not None:
                    # a cv wait that releases everything still blocks the
                    # *caller* if the caller holds other locks
                    self.may_block[key] = True
                    self.block_reason[key] = \
                        f"{fn.key} ({os.path.basename(fn.file)}:" \
                        f"{site.line}) -> {reason}"
                    break
        changed = True
        keys = {k: fn for k, fn in self.model.functions.items()}
        while changed:
            changed = False
            for key, fn in keys.items():
                if self.may_block[key] or fn.key in self.nonblocking_functions:
                    continue
                for site in fn.calls:
                    if site.in_lambda:
                        continue
                    if any(tok in site.args
                           for tok in self.nonblocking_arg_tokens):
                        continue
                    for callee in self.resolver.callees(fn, site):
                        ckey = f"{callee.file}:{callee.line}:{callee.key}"
                        if self.may_block.get(ckey):
                            self.may_block[key] = True
                            self.block_reason[key] = (
                                f"{fn.key} ({os.path.basename(fn.file)}:"
                                f"{site.line}) -> "
                                + self.block_reason.get(ckey, callee.key))
                            changed = True
                            break
                    if self.may_block[key]:
                        break
        # std::function invocation is the callback checker's domain; here
        # an unresolvable callable contributes nothing.

    def cv_wait_fully_releases(self, fn: FunctionInfo,
                               site: CallSite) -> bool:
        """`cv.wait(lock)` releases `lock`'s mutex for the wait's duration;
        the wait is only a blocking-under-lock hazard for *other* locks."""
        if site.leaf not in CV_WAIT_LEAVES:
            return False
        first_arg = site.args.split(",")[0].strip() if site.args else ""
        if not first_arg:
            return False  # argless wait: nothing released
        remaining = [h for h in site.held if h.guard_var != first_arg]
        return len(remaining) == 0

    # -- the check -----------------------------------------------------------

    def held_labels(self, fn: FunctionInfo,
                    site: CallSite) -> list[tuple[str, str]]:
        """(label, origin) for every lock held at the site, with the io
        allowlist applied and cv-released guards removed."""
        out = []
        held: list[HeldLock] = list(site.held)
        if not site.in_lambda:
            for expr in fn.requires:
                held.append(HeldLock(expr=expr, guard_var="", via="requires",
                                     line=fn.line))
            cls = self.model.classes.get(fn.cls)
            if cls:
                for expr in cls.prototype_requires.get(fn.name, []):
                    held.append(HeldLock(expr=expr, guard_var="",
                                         via="requires", line=fn.line))
        released = ""
        if site.leaf in CV_WAIT_LEAVES and site.args:
            released = site.args.split(",")[0].strip()
        for h in held:
            if released and h.guard_var == released:
                continue
            label = self.resolver.mutex_label(fn, h.expr)
            if label in self.io_lock_allowlist:
                continue
            out.append((label, h.via))
        return out

    def run(self) -> list[Finding]:
        self.compute_fixpoint()
        findings: list[Finding] = []
        for key, fn in self.model.functions.items():
            if fn.key in self.nonblocking_functions:
                continue
            for site in fn.calls:
                if site.in_lambda:
                    continue
                labels = self.held_labels(fn, site)
                if not labels:
                    continue
                reason = self.direct_block_reason(fn, site)
                witness: list[str] = []
                if reason is None:
                    for callee in self.resolver.callees(fn, site):
                        ckey = f"{callee.file}:{callee.line}:{callee.key}"
                        if self.may_block.get(ckey):
                            reason = f"call to {callee.key}, which may block"
                            witness = [self.block_reason.get(ckey, "")]
                            break
                if reason is None:
                    continue
                label_text = ", ".join(f'"{lbl}" (via {via})'
                                       for lbl, via in labels)
                findings.append(Finding(
                    checker=self.name, file=fn.file, line=site.line,
                    message=(f"{fn.key} reaches blocking {reason} while "
                             f"holding {label_text}"),
                    witness=[w for w in witness if w]))
        return findings


# ---------------------------------------------------------------------------
# callback-under-lock
# ---------------------------------------------------------------------------


class CallbackChecker:
    name = "callback-under-lock"

    def __init__(self, model: CodeModel, contracts: dict):
        self.model = model
        self.resolver = Resolver(model, contracts)
        self.sink_methods = set(contracts["callback_checker"]["sink_methods"])
        self.sink_classes = set(contracts["callback_checker"]["sink_classes"])
        self.bracket_allowlist = {
            entry["label"]
            for entry in contracts["callback_checker"]["lock_allowlist"]}
        self.contract_exempt = {
            (entry["callable"], entry["under_label"])
            for entry in contracts["callback_checker"]["callable_contracts"]}

    def is_user_callable(self, fn: FunctionInfo,
                         site: CallSite) -> Optional[str]:
        """Returns a description when the call invokes user-supplied code."""
        # sink->deliver(...) on an EventSink (or derived)
        if site.leaf in self.sink_methods and site.receiver:
            cname = self.resolver.receiver_class(fn, site)
            if cname in self.sink_classes or self.derives_from_sink(cname):
                return f"{cname or 'sink'}::{site.leaf} (EventSink)"
        # std::function member / local / param invoked directly or as the
        # last hop of a member chain
        callable_name = site.leaf if not site.receiver else site.leaf
        holder: str = ""
        hops = [h for h in re.split(r"\.|->", site.receiver) if h]
        if site.receiver_kind == "member-or-local" and hops:
            cname = self.resolver.type_of(fn, hops[0])
            cname = strip_type(cname)
            for hop in hops[1:]:
                cls = self.model.classes.get(cname)
                if cls is None or hop not in cls.members:
                    cname = ""
                    break
                cname = strip_type(cls.members[hop])
            cls = self.model.classes.get(cname)
            if cls and site.leaf in cls.members and \
                    "function" in cls.members[site.leaf]:
                holder = f"{cname}::{site.leaf}"
        elif site.receiver_kind == "" and not site.qualifier:
            ftype = self.resolver.type_of(fn, site.leaf)
            if "function" in ftype and "<" in ftype:
                holder = callable_name
        if holder:
            return f"std::function {holder}"
        return None

    def derives_from_sink(self, cname: str) -> bool:
        seen = set()
        queue = [cname]
        while queue:
            c = queue.pop()
            if c in self.sink_classes:
                return True
            if c in seen:
                continue
            seen.add(c)
            cls = self.model.classes.get(c)
            if cls:
                queue.extend(cls.bases)
        return False

    def run(self) -> list[Finding]:
        findings: list[Finding] = []
        for fn in self.model.functions.values():
            for site in fn.calls:
                if site.in_lambda:
                    continue
                desc = self.is_user_callable(fn, site)
                if desc is None:
                    continue
                held = list(site.held)
                if not site.in_lambda:
                    for expr in fn.requires:
                        held.append(HeldLock(expr=expr, guard_var="",
                                             via="requires", line=fn.line))
                    cls = self.model.classes.get(fn.cls)
                    if cls:
                        for expr in cls.prototype_requires.get(fn.name, []):
                            held.append(HeldLock(
                                expr=expr, guard_var="", via="requires",
                                line=fn.line))
                labels = []
                for h in held:
                    label = self.resolver.mutex_label(fn, h.expr)
                    if label in self.bracket_allowlist:
                        continue
                    callable_key = desc.split()[-1] if "std::function" in desc \
                        else site.leaf
                    if (callable_key, label) in self.contract_exempt or \
                            (site.leaf, label) in self.contract_exempt:
                        continue
                    labels.append((label, h.via))
                if not labels:
                    continue
                label_text = ", ".join(f'"{lbl}" (via {via})'
                                       for lbl, via in labels)
                findings.append(Finding(
                    checker=self.name, file=fn.file, line=site.line,
                    message=(f"{fn.key} invokes user-supplied callable "
                             f"{desc} while holding {label_text}")))
        return findings


# ---------------------------------------------------------------------------
# exhaustiveness
# ---------------------------------------------------------------------------


def _read(path: str) -> str:
    with open(path, "r", encoding="utf-8", errors="replace") as f:
        return f.read()


class ExhaustivenessChecker:
    """Wire enums and metric names cross-checked against their documented
    tables. Operates on raw file text (plus model enums), because the
    artifacts compared are docs and string literals, not code structure."""

    name = "exhaustiveness"

    def __init__(self, model: CodeModel, contracts: dict, repo_root: str):
        self.model = model
        self.contracts = contracts
        self.root = repo_root

    def run(self) -> list[Finding]:
        out: list[Finding] = []
        out.extend(self.check_error_codes())
        out.extend(self.check_frame_kinds())
        out.extend(self.check_metrics())
        return out

    # -- rpc::ErrorCode vs error_code_name() vs README ----------------------

    def check_error_codes(self) -> list[Finding]:
        findings = []
        cfg = self.contracts["exhaustiveness"]
        enum_values = self.model.enums.get("ErrorCode", [])
        impl_path = os.path.join(self.root, cfg["error_code_impl"])
        impl = _read(impl_path)
        switch_cases = re.findall(
            r"case\s+ErrorCode::(\w+)\s*:\s*return\s+\"([\w\-]+)\"", impl)
        readme = _read(os.path.join(self.root, "README.md"))
        table = self.parse_readme_table(readme, "### Error codes")
        readme_codes = {row[0].strip("`") for row in table}

        case_names = {c[0] for c in switch_cases}
        wire_names = {c[1] for c in switch_cases}
        for value in enum_values:
            if value not in case_names:
                findings.append(Finding(
                    checker=self.name, file=cfg["error_code_impl"], line=1,
                    message=(f"ErrorCode::{value} has no case in "
                             f"error_code_name() — wire name undefined")))
        for name, _ in switch_cases:
            if name not in enum_values:
                findings.append(Finding(
                    checker=self.name, file=cfg["error_code_impl"], line=1,
                    message=(f"error_code_name() names ErrorCode::{name}, "
                             f"absent from the enum")))
        documented_exempt = set(cfg.get("error_codes_undocumented", []))
        for wire in sorted(wire_names - readme_codes - documented_exempt):
            findings.append(Finding(
                checker=self.name, file="README.md", line=1,
                message=(f"error code \"{wire}\" is on the wire but missing "
                         f"from the README error-code table")))
        for wire in sorted(readme_codes - wire_names):
            findings.append(Finding(
                checker=self.name, file="README.md", line=1,
                message=(f"README documents error code \"{wire}\" that no "
                         f"ErrorCode maps to")))
        return findings

    # -- rpc::FrameKind vs decode switch vs equivalence tests ----------------

    def check_frame_kinds(self) -> list[Finding]:
        findings = []
        cfg = self.contracts["exhaustiveness"]
        enum_values = set(self.model.enums.get("FrameKind", []))
        impl = _read(os.path.join(self.root, cfg["frame_kind_impl"]))
        decode_cases = set(re.findall(
            r"case\s+static_cast<uint8_t>\(FrameKind::(\w+)\)", impl))
        test_path = cfg["frame_kind_tests"]
        tests = _read(os.path.join(self.root, test_path))
        tested = set(re.findall(r"FrameKind::(\w+)", tests))
        for value in sorted(enum_values - decode_cases):
            findings.append(Finding(
                checker=self.name, file=cfg["frame_kind_impl"], line=1,
                message=(f"FrameKind::{value} is not handled by the binary "
                         f"decode switch")))
        for value in sorted(enum_values - tested):
            findings.append(Finding(
                checker=self.name, file=test_path, line=1,
                message=(f"FrameKind::{value} has no binary<->JSON "
                         f"equivalence coverage in {test_path}")))
        for value in sorted(decode_cases - enum_values):
            findings.append(Finding(
                checker=self.name, file=cfg["frame_kind_impl"], line=1,
                message=(f"decode switch handles FrameKind::{value}, absent "
                         f"from the enum")))
        return findings

    # -- metric-name literals vs README catalogue ----------------------------

    METRIC_CALL_RE = re.compile(
        r"\.(?:counter|histogram|gauge)\(\s*\"([^\"]+)\"")

    def documented_metrics(self) -> tuple[set[str], set[str]]:
        """(exact names, prefixes) from the README metric catalogue."""
        readme = _read(os.path.join(self.root, "README.md"))
        rows = self.parse_readme_table(readme, "### Metric catalogue")
        exact: set[str] = set()
        prefixes: set[str] = set()
        for row in rows:
            cell = row[0]
            last_full = ""
            for part in cell.split("/"):
                name = part.strip().strip("`").strip()
                if not name:
                    continue
                if name.startswith("."):
                    # `waveform.block_cache.hits` / `.misses` shorthand
                    if last_full:
                        base = last_full.rsplit(".", name.count("."))[0]
                        name = base + name
                else:
                    last_full = name
                if "<" in name:
                    prefixes.add(name.split("<")[0])
                else:
                    exact.add(name)
        return exact, prefixes

    def check_metrics(self) -> list[Finding]:
        findings = []
        exact, prefixes = self.documented_metrics()
        for path in self.model.files:
            rel = os.path.relpath(path, self.root)
            if not rel.startswith("src"):
                continue
            text = _read(path)
            for lineno, line in enumerate(text.splitlines(), 1):
                for m in self.METRIC_CALL_RE.finditer(line):
                    name = m.group(1)
                    if name in exact:
                        continue
                    if name.endswith(".") and any(
                            name == p or name.startswith(p) or
                            p.startswith(name) for p in prefixes):
                        continue  # concatenation prefix of a templated row
                    if any(name.startswith(p) for p in prefixes):
                        continue
                    findings.append(Finding(
                        checker=self.name, file=rel, line=lineno,
                        message=(f"metric \"{name}\" is registered here but "
                                 f"missing from the README metric "
                                 f"catalogue")))
        return findings

    # -- README helpers ------------------------------------------------------

    @staticmethod
    def parse_readme_table(readme: str, heading: str) -> list[list[str]]:
        idx = readme.find(heading)
        if idx < 0:
            return []
        rows = []
        in_table = False
        for line in readme[idx:].splitlines():
            stripped = line.strip()
            if stripped.startswith("|"):
                cells = [c.strip() for c in stripped.strip("|").split("|")]
                if all(set(c) <= {"-", " ", ":"} for c in cells):
                    continue  # separator row
                if not in_table:
                    in_table = True
                    continue  # header row
                rows.append(cells)
            elif in_table:
                break
        return rows


# ---------------------------------------------------------------------------
# suppression application
# ---------------------------------------------------------------------------


def apply_suppressions(findings: list[Finding],
                       model: CodeModel,
                       repo_root: str) -> list[Finding]:
    """Marks findings covered by a `// hgdb-analyze: suppress(...)` comment
    on the same line or the line above. A suppression without a
    justification does not count and is itself reported."""
    extra: list[Finding] = []
    for s in model.suppressions:
        if not s.justification:
            extra.append(Finding(
                checker="suppression-syntax",
                file=os.path.relpath(s.file, repo_root), line=s.line,
                message=("suppression without a justification — use "
                         "`// hgdb-analyze: suppress(<checker>) -- <why>`")))
    for f in findings:
        for s in model.suppressions:
            if not s.justification:
                continue
            if f.checker not in s.checkers:
                continue
            s_file = os.path.relpath(s.file, repo_root) \
                if os.path.isabs(s.file) else s.file
            f_file = os.path.relpath(f.file, repo_root) \
                if os.path.isabs(f.file) else f.file
            if s_file != f_file:
                continue
            if s.line in (f.line, f.line - 1):
                f.suppressed = True
                f.justification = s.justification
                s.used = True
    return findings + extra


def run_all(model: CodeModel, contracts: dict, repo_root: str,
            checkers: Optional[list[str]] = None) -> list[Finding]:
    findings: list[Finding] = []
    enabled = set(checkers) if checkers else {
        "blocking-under-lock", "callback-under-lock", "exhaustiveness"}
    if "blocking-under-lock" in enabled:
        findings.extend(BlockingChecker(model, contracts).run())
    if "callback-under-lock" in enabled:
        findings.extend(CallbackChecker(model, contracts).run())
    if "exhaustiveness" in enabled:
        findings.extend(
            ExhaustivenessChecker(model, contracts, repo_root).run())
    for f in findings:
        if os.path.isabs(f.file):
            f.file = os.path.relpath(f.file, repo_root)
    return apply_suppressions(findings, model, repo_root)
