"""C++ code model for hgdb-analyze.

A dependency-free front end that turns the project's C++ sources into a
semantic model the checkers can traverse: function definitions with their
call sites, the lock scopes (LockGuard / UniqueLock / HGDB_REQUIRES)
active at each call, class member types for receiver resolution, the
CheckedMutex rank table, enums, and suppression comments.

This is deliberately not a full C++ parser. It is a tokenizer plus a
scope-tracking scanner tuned to this repository's style (enforced by
clang-format and tools/lint.py): one class per brace block, annotated
mutex types from common/checked_mutex.h, guard objects declared as
`common::LockGuard name(mutex_expr)`. The seeded-violation corpus under
tests/analysis pins down exactly what the model must understand; a parser
regression fails those fixtures like any code regression.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Optional

# ---------------------------------------------------------------------------
# tokenizer
# ---------------------------------------------------------------------------

TOKEN_RE = re.compile(
    r"""
      (?P<ws>\s+)
    | (?P<raw>R"(?P<delim>[^ ()\\\n]*)\((?:.|\n)*?\)(?P=delim)")
    | (?P<comment>//[^\n]*|/\*(?:.|\n)*?\*/)
    | (?P<string>"(?:[^"\\\n]|\\.)*"|'(?:[^'\\\n]|\\.)*')
    | (?P<number>\.?[0-9](?:[\w.']|[eEpP][+-])*)
    | (?P<ident>[A-Za-z_]\w*)
    | (?P<punct>::|->|\+\+|--|<<=|>>=|<=|>=|==|!=|&&|\|\||[-+*/%^&|!~<>]=
        |<<|>>|\.\.\.|[-+*/%^&|!~=?:;,.()\[\]{}<>\#@\\])
    """,
    re.VERBOSE,
)


@dataclass
class Token:
    kind: str  # ws | comment | string | number | ident | punct | raw
    text: str
    line: int


def tokenize(text: str) -> tuple[list[Token], list[Token]]:
    """Returns (significant tokens, comment tokens)."""
    tokens: list[Token] = []
    comments: list[Token] = []
    line = 1
    pos = 0
    n = len(text)
    while pos < n:
        match = TOKEN_RE.match(text, pos)
        if not match:  # unknown byte: skip it
            if text[pos] == "\n":
                line += 1
            pos += 1
            continue
        kind = match.lastgroup if match.lastgroup != "raw" else "string"
        if match.lastgroup == "delim":
            kind = "string"
        chunk = match.group(0)
        if kind == "comment":
            comments.append(Token(kind, chunk, line))
        elif kind != "ws":
            # Preprocessor directives: swallow to end of line (with
            # continuations) so macros don't confuse the scope scanner.
            if chunk == "#":
                end = pos
                while end < n:
                    nl = text.find("\n", end)
                    if nl < 0:
                        end = n
                        break
                    if text[nl - 1] == "\\":
                        end = nl + 1
                        continue
                    end = nl
                    break
                line += text.count("\n", pos, end)
                pos = end
                continue
            if kind == "punct" and chunk == ">>":
                # split the shift so nested template closers (`set<pair<..>>`)
                # balance angle-depth tracking; shifts are rare in the
                # positions where angle depth matters (declarations)
                tokens.append(Token(kind, ">", line))
                tokens.append(Token(kind, ">", line))
            else:
                tokens.append(Token(kind, chunk, line))
        line += chunk.count("\n")
        pos = match.end()
    return tokens, comments


# ---------------------------------------------------------------------------
# model data types
# ---------------------------------------------------------------------------


@dataclass
class MutexDecl:
    owner: str  # class short name, or "<local>" / "<file>"
    name: str  # member / variable name
    alias: str  # e.g. SessionsMutex (or CheckedMutex<...>)
    label: str  # the constructor's string argument, e.g. "session::sessions"
    rank: Optional[int]
    file: str
    line: int


@dataclass
class HeldLock:
    """A lock held at a call site, before checker-side resolution."""

    expr: str  # raw mutex expression, e.g. "mutex_" or "connection.state_mutex"
    guard_var: str  # guard object name ("" for HGDB_REQUIRES seeding)
    via: str  # "guard" | "requires"
    line: int  # acquisition line


@dataclass
class CallSite:
    leaf: str  # final callee name
    receiver: str  # receiver expression ("" for free calls)
    receiver_kind: str  # "member-or-local" | "qualified" | "global" | "expr" | ""
    qualifier: str  # for qualified calls: "std::this_thread", "dap::FrameCodec"
    line: int
    args: str  # flattened top-level argument text
    held: list[HeldLock]
    in_lambda: bool


@dataclass
class FunctionInfo:
    qualname: str  # context-qualified, e.g. hgdb::rpc::EventWriter::enqueue
    key: str  # Class::name or name (resolution key)
    cls: str  # owning class short name, "" for free functions
    name: str
    file: str
    line: int
    requires: list[str] = field(default_factory=list)  # HGDB_REQUIRES exprs
    calls: list[CallSite] = field(default_factory=list)
    params: dict[str, str] = field(default_factory=dict)
    locals: dict[str, str] = field(default_factory=dict)


@dataclass
class ClassInfo:
    name: str
    qualname: str
    bases: list[str] = field(default_factory=list)
    members: dict[str, str] = field(default_factory=dict)  # name -> type text
    mutexes: dict[str, MutexDecl] = field(default_factory=dict)
    # function-name -> HGDB_REQUIRES exprs taken from in-class prototypes
    # (out-of-line definitions do not repeat the annotation)
    prototype_requires: dict[str, list[str]] = field(default_factory=dict)
    file: str = ""
    line: int = 0


@dataclass
class Suppression:
    file: str
    line: int
    checkers: list[str]
    justification: str
    used: bool = False


@dataclass
class CodeModel:
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    by_method: dict[str, list[str]] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    aliases: dict[str, str] = field(default_factory=dict)  # using X = rhs
    enums: dict[str, list[str]] = field(default_factory=dict)
    mutex_ranks: dict[str, int] = field(default_factory=dict)  # alias -> rank
    mutex_decls: list[MutexDecl] = field(default_factory=list)
    suppressions: list[Suppression] = field(default_factory=list)
    files: list[str] = field(default_factory=list)

    def add_function(self, fn: FunctionInfo) -> None:
        # Later definitions win (headers are parsed before sources, and a
        # re-parse of the same file replaces in place).
        self.functions[f"{fn.file}:{fn.line}:{fn.key}"] = fn
        self.by_method.setdefault(fn.name, []).append(f"{fn.file}:{fn.line}:{fn.key}")

    def functions_named(self, key: str) -> list[FunctionInfo]:
        """All definitions whose Class::name (or free name) matches."""
        out = []
        for fn in self.functions.values():
            if fn.key == key:
                out.append(fn)
        return out

    def methods_named(self, name: str) -> list[FunctionInfo]:
        return [self.functions[k] for k in self.by_method.get(name, [])]


# ---------------------------------------------------------------------------
# parsing helpers
# ---------------------------------------------------------------------------

KEYWORDS_NOT_CALLS = {
    "if", "for", "while", "switch", "return", "sizeof", "catch", "throw",
    "alignof", "decltype", "static_assert", "new", "delete", "case", "else",
    "do", "noexcept", "assert",
}

CAST_KEYWORDS = {"static_cast", "dynamic_cast", "const_cast",
                 "reinterpret_cast"}

SPECIFIER_TOKENS = {"const", "noexcept", "override", "final", "mutable",
                    "constexpr", "inline", "explicit", "virtual", "static",
                    "volatile"}

GUARD_TYPES = {"LockGuard", "UniqueLock"}

TYPE_START_EXCLUDE = {
    "return", "if", "for", "while", "switch", "case", "break", "continue",
    "throw", "delete", "else", "do", "goto", "using", "typedef", "public",
    "private", "protected", "new", "try", "catch",
}

SUPPRESS_RE = re.compile(
    r"hgdb-analyze:\s*suppress\(([\w\-, ]+)\)\s*(?:--\s*(.*))?")


def _skip_balanced_back(tokens: list[Token], j: int, close: str,
                        open_: str) -> int:
    """j points at `close`; returns index of matching `open_`."""
    depth = 0
    while j >= 0:
        t = tokens[j].text
        if t == close:
            depth += 1
        elif t == open_:
            depth -= 1
            if depth == 0:
                return j
        j -= 1
    return 0


def _skip_balanced_fwd(tokens: list[Token], i: int, open_: str,
                       close: str) -> int:
    """i points at `open_`; returns index just past matching `close`."""
    depth = 0
    n = len(tokens)
    while i < n:
        t = tokens[i].text
        if t == open_:
            depth += 1
        elif t == close:
            depth -= 1
            if depth == 0:
                return i + 1
        i += 1
    return n


class FileParser:
    """Parses one file's tokens into the shared CodeModel."""

    def __init__(self, path: str, tokens: list[Token], model: CodeModel):
        self.path = path
        self.toks = tokens
        self.model = model

    # -- declarations --------------------------------------------------------

    def parse(self) -> None:
        self.parse_scope(0, len(self.toks), [], [])

    def parse_scope(self, i: int, end: int, namespaces: list[str],
                    classes: list[ClassInfo]) -> int:
        while i < end and self.toks[i].text != "}":
            i = self.parse_declaration(i, end, namespaces, classes)
        return i + 1  # past '}'

    def parse_declaration(self, i: int, end: int, namespaces: list[str],
                          classes: list[ClassInfo]) -> int:
        toks0 = self.toks
        # strip access-specifier labels so `private: struct X {` classifies
        # X's block correctly
        while i + 1 < end and toks0[i].text in ("public", "private",
                                                "protected") and \
                toks0[i + 1].text == ":":
            i += 2
        if i >= end or toks0[i].text == "}":
            return i
        decl_start = i
        pdepth = 0
        toks = self.toks
        while i < end:
            t = toks[i].text
            if t in "([":
                pdepth += 1
            elif t in ")]":
                pdepth -= 1
            elif pdepth == 0 and t == ";":
                self.finish_member_decl(decl_start, i, classes)
                return i + 1
            elif pdepth == 0 and t == "{":
                return self.classify_block(decl_start, i, end, namespaces,
                                           classes)
            i += 1
        return end

    def classify_block(self, start: int, brace: int, end: int,
                       namespaces: list[str],
                       classes: list[ClassInfo]) -> int:
        toks = self.toks
        decl = toks[start:brace]
        # strip a leading template<...> introducer
        if decl and decl[0].text == "template":
            j = start
            while j < brace and toks[j].text != "<":
                j += 1
            depth = 0
            while j < brace:
                if toks[j].text == "<":
                    depth += 1
                elif j < brace and toks[j].text == ">":
                    depth -= 1
                    if depth == 0:
                        break
                j += 1
            start = j + 1
            decl = toks[start:brace]
        if not decl:
            # bare block
            return self.parse_scope(brace + 1, end, namespaces, classes)
        head = decl[0].text
        if head == "namespace":
            names = [t.text for t in decl[1:] if t.kind == "ident"]
            i = self.parse_scope(brace + 1, end, namespaces + names, classes)
            return i
        if head == "extern":
            return self.parse_scope(brace + 1, end, namespaces, classes)
        if head == "enum":
            return self.parse_enum(decl, brace, end)
        if head in ("class", "struct", "union") and self.is_class_head(decl):
            return self.parse_class(decl, brace, end, namespaces, classes)
        # function definition or brace-initialised member
        if self.looks_like_function(decl):
            return self.parse_function(start, brace, end, namespaces, classes)
        # brace-initialised member: consume the initialiser, keep reading
        # until the terminating ';'
        i = _skip_balanced_fwd(toks, brace, "{", "}")
        pdepth = 0
        while i < end:
            t = toks[i].text
            if t in "([{":
                pdepth += 1
            elif t in ")]}":
                pdepth -= 1
            elif pdepth == 0 and t == ";":
                self.finish_member_decl(start, i, classes, init_brace=brace)
                return i + 1
            i += 1
        return end

    def is_class_head(self, decl: list[Token]) -> bool:
        # `class X final : public Y` — a class head never contains '(' at
        # top level ('struct Foo bar(...)' would be a function).
        depth = 0
        for t in decl:
            if t.text == "(":
                return False
            if t.text == "<":
                depth += 1
            elif t.text == ">":
                depth -= 1
        return True

    def looks_like_function(self, decl: list[Token]) -> bool:
        """True when the '{' terminating `decl` opens a function body."""
        j = len(decl) - 1
        toks = decl
        # skip trailing specifiers, macro annotations and a ctor init list
        while j >= 0:
            t = toks[j].text
            if toks[j].kind == "ident" and (t in SPECIFIER_TOKENS
                                            or t.startswith("HGDB_")):
                j -= 1
                continue
            if t == ")":
                open_idx = _skip_balanced_back(toks, j, ")", "(")
                prev = open_idx - 1
                if prev >= 0 and toks[prev].kind == "ident" and \
                        toks[prev].text.startswith("HGDB_"):
                    j = prev - 1  # macro annotation group
                    continue
                return True  # parameter list (or last init-list entry after
                # which only `{` follows — both mean "function")
            if t == "}":  # brace init in a ctor init list, e.g. b_{2}
                j = _skip_balanced_back(toks, j, "}", "{") - 1
                continue
            if t in (",", ":"):
                j -= 1
                continue
            if toks[j].kind in ("ident", "number", "string"):
                # part of an init-list argument or a member name; look for a
                # ')' further left only when a ':' init list is plausible
                j -= 1
                continue
            if t in (">", "<", "::", "&", "*", "]", "["):
                j -= 1
                continue
            return False
        return False

    def parse_enum(self, decl: list[Token], brace: int, end: int) -> int:
        idents = [t.text for t in decl if t.kind == "ident"
                  and t.text not in ("enum", "class", "struct")]
        name = idents[0] if idents else "<anon>"
        close = _skip_balanced_fwd(self.toks, brace, "{", "}")
        values = []
        depth = 0
        expect = True
        for t in self.toks[brace + 1:close - 1]:
            if t.text in "([{<":
                depth += 1
            elif t.text in ")]}>":
                depth -= 1
            elif depth == 0 and t.text == ",":
                expect = True
            elif depth == 0 and expect and t.kind == "ident":
                values.append(t.text)
                expect = False
        self.model.enums[name] = values
        i = close
        if i < end and self.toks[i].text == ";":
            i += 1
        return i

    def parse_class(self, decl: list[Token], brace: int, end: int,
                    namespaces: list[str],
                    classes: list[ClassInfo]) -> int:
        name = ""
        bases: list[str] = []
        j = 1
        while j < len(decl):
            t = decl[j]
            if t.kind == "ident" and t.text not in SPECIFIER_TOKENS and \
                    not t.text.startswith("HGDB_") and not t.text.startswith("["):
                name = t.text
                j += 1
                break
            j += 1
        # bases: identifier chains after ':'
        seen_colon = False
        chain: list[str] = []
        for t in decl[j:]:
            if t.text == ":":
                seen_colon = True
                continue
            if not seen_colon:
                continue
            if t.kind == "ident" and t.text not in ("public", "private",
                                                    "protected", "virtual"):
                chain.append(t.text)
            elif t.text == "::":
                continue
            elif t.text == ",":
                if chain:
                    bases.append(chain[-1])
                chain = []
        if chain:
            bases.append(chain[-1])
        info = self.model.classes.get(name)
        if info is None:
            info = ClassInfo(name=name,
                             qualname="::".join(namespaces + [name]),
                             file=self.path, line=decl[0].line)
            self.model.classes[name] = info
        info.bases = bases or info.bases
        i = self.parse_scope(brace + 1, end, namespaces, classes + [info])
        if i < end and self.toks[i].text == ";":
            i += 1
        return i

    # -- member declarations -------------------------------------------------

    def finish_member_decl(self, start: int, semi: int,
                           classes: list[ClassInfo],
                           init_brace: Optional[int] = None) -> None:
        toks = self.toks[start:semi]
        if not toks:
            return
        head = toks[0].text
        if head == "using":
            # using X = rhs;
            if len(toks) >= 3 and toks[2].text == "=":
                self.model.aliases[toks[1].text] = " ".join(
                    t.text for t in toks[3:])
            return
        if head in ("friend", "typedef", "public", "private", "protected",
                    "template", "enum", "class", "struct"):
            return
        cls = classes[-1] if classes else None
        # in-class function prototype: record HGDB_REQUIRES for the
        # out-of-line definition
        texts = [t.text for t in toks]
        if cls is not None and "(" in texts:
            req = self.extract_requires(toks)
            fname = self.decl_function_name(toks)
            if fname:
                if req:
                    cls.prototype_requires.setdefault(fname, []).extend(req)
                # `std::function<...> name;` members still fall through below
                if not self.is_data_member(toks):
                    return
        if cls is None:
            # file-scope variable (e.g. a global mutex); only mutexes matter
            self.maybe_record_mutex(toks, None, init_brace, start, semi)
            return
        # data member: name is the last identifier before '=', '{' or
        # HGDB_ macro; type is everything before it
        self.record_data_member(toks, cls, init_brace, start, semi)

    def is_data_member(self, toks: list[Token]) -> bool:
        """Distinguish `std::function<bool(int)> send;` from a prototype."""
        # A data member's '(' tokens all sit inside template angles or a
        # brace/paren initialiser that follows the member name.
        depth = 0
        for t in toks:
            if t.text == "<":
                depth += 1
            elif t.text == ">":
                depth -= 1
            elif t.text == "(" and depth == 0:
                return False
        return True

    def decl_function_name(self, toks: list[Token]) -> str:
        depth = 0
        for idx, t in enumerate(toks):
            if t.text == "<":
                depth += 1
            elif t.text == ">":
                depth -= 1
            elif t.text == "(" and depth == 0:
                j = idx - 1
                if j >= 0 and toks[j].kind == "ident":
                    return toks[j].text
                return ""
        return ""

    def record_data_member(self, toks: list[Token], cls: ClassInfo,
                           init_brace: Optional[int], start: int,
                           semi: int) -> None:
        name_idx = -1
        depth = 0
        for idx, t in enumerate(toks):
            if t.text in "<([":
                depth += 1
            elif t.text in ">)]":
                depth -= 1
            elif depth == 0 and t.text in ("=", "{"):
                break
            elif depth == 0 and t.kind == "ident" and \
                    not t.text.startswith("HGDB_") and \
                    t.text not in SPECIFIER_TOKENS:
                name_idx = idx
        if name_idx <= 0:
            return
        name = toks[name_idx].text
        type_text = " ".join(t.text for t in toks[:name_idx]
                             if t.text not in SPECIFIER_TOKENS)
        cls.members[name] = type_text
        self.maybe_record_mutex(toks, cls, init_brace, start, semi)

    def maybe_record_mutex(self, toks: list[Token], cls: Optional[ClassInfo],
                           init_brace: Optional[int], start: int,
                           semi: int) -> None:
        texts = [t.text for t in toks]
        alias = None
        for t in texts:
            if t in self.model.mutex_ranks or t == "CheckedMutex":
                alias = t
                break
        if alias is None:
            return
        # the declaration's string literal is the mutex label
        label = ""
        for t in self.toks[start:semi + 1]:
            if t.kind == "string" and t.text.startswith('"'):
                label = t.text.strip('"')
                break
        name = ""
        depth = 0
        for idx, t in enumerate(toks):
            if t.text in "<([{":
                depth += 1
            elif t.text in ">)]}":
                depth -= 1
            elif depth == 0 and t.kind == "ident" and \
                    t.text not in SPECIFIER_TOKENS and \
                    not t.text.startswith("HGDB_") and \
                    t.text != alias and t.text not in ("common",):
                name = t.text
        if not name:
            return
        decl = MutexDecl(owner=cls.name if cls else "<file>", name=name,
                         alias=alias, label=label,
                         rank=self.model.mutex_ranks.get(alias),
                         file=self.path, line=toks[0].line)
        self.model.mutex_decls.append(decl)
        if cls is not None:
            cls.mutexes[name] = decl

    def extract_requires(self, toks: list[Token]) -> list[str]:
        out = []
        i = 0
        while i < len(toks):
            if toks[i].kind == "ident" and toks[i].text == "HGDB_REQUIRES" \
                    and i + 1 < len(toks) and toks[i + 1].text == "(":
                j = i + 1
                depth = 0
                expr: list[str] = []
                while j < len(toks):
                    if toks[j].text == "(":
                        depth += 1
                        if depth == 1:
                            j += 1
                            continue
                    elif toks[j].text == ")":
                        depth -= 1
                        if depth == 0:
                            break
                    expr.append(toks[j].text)
                    j += 1
                out.append("".join(expr))
                i = j
            i += 1
        return out

    # -- function bodies -----------------------------------------------------

    def parse_function(self, start: int, brace: int, end: int,
                       namespaces: list[str],
                       classes: list[ClassInfo]) -> int:
        toks = self.toks
        decl = toks[start:brace]
        # locate the parameter-list '(' — the first top-level '(' preceded
        # by an identifier
        depth = 0
        paren = -1
        for idx in range(len(decl)):
            t = decl[idx].text
            if t == "<" and idx > 0 and decl[idx - 1].kind == "ident":
                depth += 1
            elif t == ">" and depth > 0:
                depth -= 1
            elif t == "(" and depth == 0:
                if idx > 0 and (decl[idx - 1].kind == "ident"
                                or decl[idx - 1].text == "~"):
                    paren = idx
                    break
        if paren <= 0:
            return self.parse_scope(brace + 1, end, namespaces, classes)
        # name chain backwards from the '('
        j = paren - 1
        chain: list[str] = []
        while j >= 0:
            t = decl[j]
            if t.kind == "ident" or t.text == "~":
                chain.append(t.text)
                j -= 1
                if j >= 0 and decl[j].text == "::":
                    chain.append("::")
                    j -= 1
                    continue
                break
            break
        chain.reverse()
        parts = [p for p in chain if p != "::"]
        if not parts or parts[-1] == "operator":
            return self.parse_scope(brace + 1, end, namespaces, classes)
        name = parts[-1]
        cls = ""
        if len(parts) >= 2:
            cls = parts[-2]
        elif classes:
            cls = classes[-1].name
        key = f"{cls}::{name}" if cls else name
        fn = FunctionInfo(
            qualname="::".join(namespaces + ([cls] if cls else []) + [name]),
            key=key, cls=cls, name=name, file=self.path,
            line=decl[0].line)
        fn.requires = self.extract_requires(decl)
        # parameters: split at top-level ','
        pend = _skip_balanced_fwd(decl, paren, "(", ")") - 1
        pdepth = 0
        current: list[Token] = []
        params: list[list[Token]] = []
        for t in decl[paren + 1:pend]:
            if t.text in "<([{":
                pdepth += 1
            elif t.text in ">)]}":
                pdepth -= 1
            if pdepth == 0 and t.text == ",":
                params.append(current)
                current = []
            else:
                current.append(t)
        if current:
            params.append(current)
        for p in params:
            idents = [t for t in p if t.kind == "ident"
                      and t.text not in SPECIFIER_TOKENS]
            if len(idents) >= 2:
                pname = idents[-1].text
                ptype = " ".join(t.text for t in p[:-1])
                fn.params[pname] = ptype
        i = self.parse_body(brace, end, fn)
        self.model.add_function(fn)
        return i

    def parse_body(self, brace: int, end: int, fn: FunctionInfo) -> int:
        toks = self.toks
        i = brace + 1
        depth = 1
        guards: list[dict] = []
        lambda_depths: list[tuple[int, list[dict]]] = []
        prev_significant = "{"
        while i < end and depth > 0:
            t = toks[i]
            text = t.text
            if text == "{":
                depth += 1
                i += 1
                prev_significant = text
                continue
            if text == "}":
                depth -= 1
                guards = [g for g in guards if g["depth"] < depth + 1]
                while lambda_depths and depth < lambda_depths[-1][0]:
                    guards = lambda_depths.pop()[1]
                i += 1
                prev_significant = text
                continue
            if text == "[" and prev_significant in (
                    "(", ",", "=", "return", "{", ";", "&&", "||", "?", ":"):
                # lambda introducer: body runs later, under the *caller's*
                # locks, not the locks active at the definition site
                close = _skip_balanced_fwd(toks, i, "[", "]")
                j = close
                if j < end and toks[j].text == "(":
                    j = _skip_balanced_fwd(toks, j, "(", ")")
                while j < end and toks[j].kind == "ident" and (
                        toks[j].text in SPECIFIER_TOKENS
                        or toks[j].text == "->"):
                    j += 1
                # skip a trailing return type
                while j < end and toks[j].text not in ("{", ";", ")", ","):
                    j += 1
                if j < end and toks[j].text == "{":
                    lambda_depths.append((depth + 1, guards))
                    guards = []
                    depth += 1
                    i = j + 1
                    prev_significant = "{"
                    continue
                i = close
                prev_significant = "]"
                continue
            if t.kind == "ident":
                # guard declaration: [const] [common::]LockGuard name(expr)
                if text in GUARD_TYPES and i + 1 < end and \
                        toks[i + 1].kind == "ident" and \
                        i + 2 < end and toks[i + 2].text in ("(", "{"):
                    var = toks[i + 1].text
                    opener = toks[i + 2].text
                    closer = ")" if opener == "(" else "}"
                    close = _skip_balanced_fwd(toks, i + 2, opener, closer)
                    expr = "".join(x.text for x in toks[i + 3:close - 1])
                    guards.append({"var": var, "expr": expr, "depth": depth,
                                   "active": True, "line": t.line})
                    fn.locals[var] = text
                    i = close
                    prev_significant = closer
                    continue
                # guard.unlock() / guard.lock()
                if text in ("unlock", "lock") and i >= 2 and \
                        toks[i - 1].text == "." and \
                        toks[i - 2].kind == "ident" and \
                        i + 1 < end and toks[i + 1].text == "(":
                    var = toks[i - 2].text
                    for g in guards:
                        if g["var"] == var:
                            g["active"] = text == "lock"
                    i += 1
                    prev_significant = text
                    continue
                # local mutex declaration (e.g. static LifecycleMutex m{"x"})
                if text in self.model.mutex_ranks and i + 1 < end and \
                        toks[i + 1].kind == "ident" and i + 2 < end and \
                        toks[i + 2].text in ("(", "{"):
                    var = toks[i + 1].text
                    opener = toks[i + 2].text
                    closer = ")" if opener == "(" else "}"
                    close = _skip_balanced_fwd(toks, i + 2, opener, closer)
                    label = ""
                    for x in toks[i + 2:close]:
                        if x.kind == "string":
                            label = x.text.strip('"')
                            break
                    self.model.mutex_decls.append(MutexDecl(
                        owner="<local>", name=var, alias=text, label=label,
                        rank=self.model.mutex_ranks.get(text),
                        file=self.path, line=t.line))
                    fn.locals[var] = text
                    i = close
                    prev_significant = closer
                    continue
                # local typed declaration: Type[*&] name [=({;]
                if prev_significant in (";", "{", "}") and \
                        text not in TYPE_START_EXCLUDE and \
                        text not in KEYWORDS_NOT_CALLS:
                    consumed = self.try_local_decl(i, end, fn)
                    if consumed > 0:
                        # fall through to normal scanning of the same tokens
                        pass
                # call site: ident followed by '('
                if i + 1 < end and toks[i + 1].text == "(" and \
                        text not in KEYWORDS_NOT_CALLS and \
                        text not in CAST_KEYWORDS and \
                        text not in GUARD_TYPES:
                    site = self.make_call_site(i, end, fn, guards,
                                               bool(lambda_depths))
                    if site is not None:
                        fn.calls.append(site)
            prev_significant = text
            i += 1
        return i

    def try_local_decl(self, i: int, end: int, fn: FunctionInfo) -> int:
        """Best-effort `Type name = ...` / `Type name;` local declaration."""
        toks = self.toks
        j = i
        depth = 0
        type_toks: list[str] = []
        last_ident = ""
        while j < end and j - i < 24:
            t = toks[j]
            if t.text == "<":
                depth += 1
            elif t.text == ">":
                depth -= 1
            elif depth == 0 and t.text in ("=", ";", "{"):
                if last_ident and type_toks[:-1]:
                    fn.locals[last_ident] = " ".join(type_toks[:-1])
                    return j - i
                return 0
            elif depth == 0 and t.text in ("(", ")", ".", "->", ",", "[",
                                           "]"):
                return 0
            if t.kind == "ident":
                if t.text in SPECIFIER_TOKENS:
                    j += 1
                    continue
                last_ident = t.text
            type_toks.append(t.text)
            j += 1
        return 0

    def make_call_site(self, i: int, end: int, fn: FunctionInfo,
                       guards: list[dict],
                       in_lambda: bool) -> Optional[CallSite]:
        toks = self.toks
        leaf = toks[i].text
        # walk the receiver chain backwards
        j = i - 1
        receiver_parts: list[str] = []
        qualifier_parts: list[str] = []
        kind = ""
        while j >= 0:
            sep = toks[j].text
            if sep == "::":
                k = j - 1
                if k >= 0 and toks[k].kind == "ident":
                    qualifier_parts.append(toks[k].text)
                    j = k - 1
                    continue
                kind = "global"  # ::send(
                break
            if sep in (".", "->"):
                k = j - 1
                if k >= 0 and toks[k].text == ")":
                    # method on a call result: unresolvable receiver
                    kind = "expr"
                    break
                if k >= 0 and toks[k].text == "]":
                    kind = "expr"
                    break
                if k >= 0 and toks[k].kind == "ident":
                    receiver_parts.append(sep)
                    receiver_parts.append(toks[k].text)
                    j = k - 1
                    continue
                kind = "expr"
                break
            break
        qualifier_parts.reverse()
        receiver_parts.reverse()
        receiver = "".join(receiver_parts[:-1]) if receiver_parts else ""
        if not kind:
            if qualifier_parts:
                kind = "qualified"
            elif receiver:
                kind = "member-or-local"
        held = [HeldLock(expr=g["expr"], guard_var=g["var"], via="guard",
                         line=g["line"]) for g in guards if g["active"]]
        # argument text (top level only)
        close = _skip_balanced_fwd(toks, i + 1, "(", ")")
        args = " ".join(t.text for t in toks[i + 2:close - 1][:48])
        return CallSite(leaf=leaf, receiver=receiver, receiver_kind=kind,
                        qualifier="::".join(qualifier_parts), line=toks[i].line,
                        args=args, held=held, in_lambda=in_lambda)


# ---------------------------------------------------------------------------
# entry points
# ---------------------------------------------------------------------------


def load_mutex_ranks(checked_mutex_header: str) -> dict[str, int]:
    """alias -> rank, parsed from common/checked_mutex.h."""
    with open(checked_mutex_header, "r", encoding="utf-8") as f:
        text = f.read()
    rank_values = {}
    for m in re.finditer(r"(k\w+)\s*=\s*(\d+)", text):
        rank_values[m.group(1)] = int(m.group(2))
    ranks = {}
    for m in re.finditer(
            r"using\s+(\w+)\s*=\s*CheckedMutex<LockRank::(k\w+)>", text):
        if m.group(2) in rank_values:
            ranks[m.group(1)] = rank_values[m.group(2)]
    return ranks


def parse_suppressions(path: str, comments: list[Token],
                       model: CodeModel) -> None:
    for c in comments:
        m = SUPPRESS_RE.search(c.text)
        if m:
            checkers = [x.strip() for x in m.group(1).split(",") if x.strip()]
            model.suppressions.append(Suppression(
                file=path, line=c.line, checkers=checkers,
                justification=(m.group(2) or "").strip()))


def build_model(paths: list[str], mutex_ranks: dict[str, int]) -> CodeModel:
    model = CodeModel()
    model.mutex_ranks = dict(mutex_ranks)
    for path in paths:
        try:
            with open(path, "r", encoding="utf-8", errors="replace") as f:
                text = f.read()
        except OSError:
            continue
        tokens, comments = tokenize(text)
        parse_suppressions(path, comments, model)
        FileParser(path, tokens, model).parse()
        model.files.append(path)
    return model
