#!/usr/bin/env python3
"""Gate a bench JSON report against its committed baseline.

Compares the tracked ratios of a fresh bench run against the matching
file under bench/baselines/ and fails (exit 1) when any ratio dropped
more than --max-drop (default 30%) below the baseline value. Tracked
ratios are in-process comparisons of the same two measurements (speedups,
size savings, backend-vs-backend seek ratios), so they are far more
stable across runner hardware than absolute timings — which is why the
gate tracks them and not the raw numbers.

Two report shapes are understood:
  - fig5 (BENCH_fig5.json): condition_eval.*.speedup + hot_speedup;
  - any report carrying a top-level "gates" object of name -> ratio
    (BENCH_waveform.json: open_vs_parse_speedup, v3_size_savings,
    mmap_vs_buffered_seek; BENCH_fanout.json: binary_fanout_speedup).

Reports may also carry a top-level "ceilings" object of name -> absolute
upper bound (e.g. a p99 latency in ms). Ceilings gate in the opposite
direction and with no drop budget: the run fails when the current value
exceeds the committed baseline value. Use them for quantities where
"bigger" is strictly worse and the committed bound is already generous.

Usage:
  check_bench_regression.py CURRENT.json BASELINE.json [--max-drop 0.30]
"""

import argparse
import json
import sys


def tracked_speedups(report):
    """(name, value) pairs of the ratios the gate protects."""
    out = []
    for scenario, data in sorted(report.get("condition_eval", {}).items()):
        if isinstance(data, dict) and "speedup" in data:
            out.append((f"condition_eval.{scenario}.speedup",
                        float(data["speedup"])))
    if "hot_speedup" in report:
        out.append(("hot_speedup", float(report["hot_speedup"])))
    for name, value in sorted(report.get("gates", {}).items()):
        if isinstance(value, (int, float)):
            out.append((f"gates.{name}", float(value)))
    return out


def tracked_ceilings(report):
    """(name, value) pairs of the absolute upper bounds the gate protects."""
    out = []
    for name, value in sorted(report.get("ceilings", {}).items()):
        if isinstance(value, (int, float)):
            out.append((f"ceilings.{name}", float(value)))
    return out


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current", help="freshly produced BENCH_fig5.json")
    parser.add_argument("baseline", help="committed baseline JSON")
    parser.add_argument("--max-drop", type=float, default=0.30,
                        help="maximum allowed fractional drop below the "
                             "baseline (default 0.30 = 30%%)")
    args = parser.parse_args()

    with open(args.current) as f:
        current = json.load(f)
    with open(args.baseline) as f:
        baseline = json.load(f)

    baseline_values = dict(tracked_speedups(baseline))
    current_values = dict(tracked_speedups(current))
    if not baseline_values:
        print("error: baseline has no tracked speedups", file=sys.stderr)
        return 2

    failed = False
    for name, base in sorted(baseline_values.items()):
        if name not in current_values:
            print(f"FAIL {name}: missing from the current report")
            failed = True
            continue
        now = current_values[name]
        floor = base * (1.0 - args.max_drop)
        status = "ok" if now >= floor else "FAIL"
        print(f"{status:>4} {name}: current {now:.2f}x vs baseline "
              f"{base:.2f}x (floor {floor:.2f}x)")
        if now < floor:
            failed = True

    baseline_ceilings = dict(tracked_ceilings(baseline))
    current_ceilings = dict(tracked_ceilings(current))
    for name, bound in sorted(baseline_ceilings.items()):
        if name not in current_ceilings:
            print(f"FAIL {name}: missing from the current report")
            failed = True
            continue
        now = current_ceilings[name]
        status = "ok" if now <= bound else "FAIL"
        print(f"{status:>4} {name}: current {now:.3f} vs ceiling {bound:.3f}")
        if now > bound:
            failed = True

    if failed:
        print(f"\nbench regression: a speedup dropped more than "
              f"{args.max_drop:.0%} below bench/baselines/ or a ceiling "
              f"was exceeded", file=sys.stderr)
        return 1
    print("\nall tracked speedups and ceilings within the regression budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
